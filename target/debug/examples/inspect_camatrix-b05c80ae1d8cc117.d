/root/repo/target/debug/examples/inspect_camatrix-b05c80ae1d8cc117.d: examples/inspect_camatrix.rs

/root/repo/target/debug/examples/inspect_camatrix-b05c80ae1d8cc117: examples/inspect_camatrix.rs

examples/inspect_camatrix.rs:
