/root/repo/target/debug/examples/inspect_camatrix-b7c6d184b5b08691.d: examples/inspect_camatrix.rs

/root/repo/target/debug/examples/inspect_camatrix-b7c6d184b5b08691: examples/inspect_camatrix.rs

examples/inspect_camatrix.rs:
