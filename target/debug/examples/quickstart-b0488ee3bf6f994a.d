/root/repo/target/debug/examples/quickstart-b0488ee3bf6f994a.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-b0488ee3bf6f994a.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
