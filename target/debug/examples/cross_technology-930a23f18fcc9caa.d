/root/repo/target/debug/examples/cross_technology-930a23f18fcc9caa.d: examples/cross_technology.rs

/root/repo/target/debug/examples/cross_technology-930a23f18fcc9caa: examples/cross_technology.rs

examples/cross_technology.rs:
