/root/repo/target/debug/examples/quickstart-02087f3d09be0eec.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-02087f3d09be0eec: examples/quickstart.rs

examples/quickstart.rs:
