/root/repo/target/debug/examples/diagnose_return-b1080e04a961c0c9.d: examples/diagnose_return.rs

/root/repo/target/debug/examples/diagnose_return-b1080e04a961c0c9: examples/diagnose_return.rs

examples/diagnose_return.rs:
