/root/repo/target/debug/examples/cross_technology-63925b75c348dacd.d: examples/cross_technology.rs

/root/repo/target/debug/examples/cross_technology-63925b75c348dacd: examples/cross_technology.rs

examples/cross_technology.rs:
