/root/repo/target/debug/examples/parallel_engine-799f290ec5e84cf4.d: examples/parallel_engine.rs

/root/repo/target/debug/examples/parallel_engine-799f290ec5e84cf4: examples/parallel_engine.rs

examples/parallel_engine.rs:
