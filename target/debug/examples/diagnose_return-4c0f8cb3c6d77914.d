/root/repo/target/debug/examples/diagnose_return-4c0f8cb3c6d77914.d: examples/diagnose_return.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose_return-4c0f8cb3c6d77914.rmeta: examples/diagnose_return.rs Cargo.toml

examples/diagnose_return.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
