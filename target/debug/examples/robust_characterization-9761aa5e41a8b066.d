/root/repo/target/debug/examples/robust_characterization-9761aa5e41a8b066.d: examples/robust_characterization.rs

/root/repo/target/debug/examples/robust_characterization-9761aa5e41a8b066: examples/robust_characterization.rs

examples/robust_characterization.rs:
