/root/repo/target/debug/examples/diagnose_return-808d8ceb3123f9e4.d: examples/diagnose_return.rs

/root/repo/target/debug/examples/diagnose_return-808d8ceb3123f9e4: examples/diagnose_return.rs

examples/diagnose_return.rs:
