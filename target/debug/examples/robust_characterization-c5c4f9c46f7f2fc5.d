/root/repo/target/debug/examples/robust_characterization-c5c4f9c46f7f2fc5.d: examples/robust_characterization.rs

/root/repo/target/debug/examples/robust_characterization-c5c4f9c46f7f2fc5: examples/robust_characterization.rs

examples/robust_characterization.rs:
