/root/repo/target/debug/examples/cross_technology-2150b59805506096.d: examples/cross_technology.rs Cargo.toml

/root/repo/target/debug/examples/libcross_technology-2150b59805506096.rmeta: examples/cross_technology.rs Cargo.toml

examples/cross_technology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
