/root/repo/target/debug/examples/parallel_engine-3eac19feebe74a99.d: examples/parallel_engine.rs

/root/repo/target/debug/examples/parallel_engine-3eac19feebe74a99: examples/parallel_engine.rs

examples/parallel_engine.rs:
