/root/repo/target/debug/examples/robust_characterization-0975692649b235ab.d: examples/robust_characterization.rs Cargo.toml

/root/repo/target/debug/examples/librobust_characterization-0975692649b235ab.rmeta: examples/robust_characterization.rs Cargo.toml

examples/robust_characterization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
