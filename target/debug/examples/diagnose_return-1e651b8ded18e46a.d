/root/repo/target/debug/examples/diagnose_return-1e651b8ded18e46a.d: examples/diagnose_return.rs

/root/repo/target/debug/examples/diagnose_return-1e651b8ded18e46a: examples/diagnose_return.rs

examples/diagnose_return.rs:
