/root/repo/target/debug/examples/hybrid_generation-1fb2275788ba7e68.d: examples/hybrid_generation.rs

/root/repo/target/debug/examples/hybrid_generation-1fb2275788ba7e68: examples/hybrid_generation.rs

examples/hybrid_generation.rs:
