/root/repo/target/debug/examples/inspect_camatrix-a0140e5cc9d9c59e.d: examples/inspect_camatrix.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_camatrix-a0140e5cc9d9c59e.rmeta: examples/inspect_camatrix.rs Cargo.toml

examples/inspect_camatrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
