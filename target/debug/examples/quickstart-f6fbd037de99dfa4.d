/root/repo/target/debug/examples/quickstart-f6fbd037de99dfa4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f6fbd037de99dfa4: examples/quickstart.rs

examples/quickstart.rs:
