/root/repo/target/debug/examples/hybrid_generation-be45ded99d755b44.d: examples/hybrid_generation.rs

/root/repo/target/debug/examples/hybrid_generation-be45ded99d755b44: examples/hybrid_generation.rs

examples/hybrid_generation.rs:
