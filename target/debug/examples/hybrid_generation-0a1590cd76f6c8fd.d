/root/repo/target/debug/examples/hybrid_generation-0a1590cd76f6c8fd.d: examples/hybrid_generation.rs Cargo.toml

/root/repo/target/debug/examples/libhybrid_generation-0a1590cd76f6c8fd.rmeta: examples/hybrid_generation.rs Cargo.toml

examples/hybrid_generation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
