/root/repo/target/debug/examples/session_resume-b6ce865d450bd076.d: examples/session_resume.rs Cargo.toml

/root/repo/target/debug/examples/libsession_resume-b6ce865d450bd076.rmeta: examples/session_resume.rs Cargo.toml

examples/session_resume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
