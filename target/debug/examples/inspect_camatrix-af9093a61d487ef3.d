/root/repo/target/debug/examples/inspect_camatrix-af9093a61d487ef3.d: examples/inspect_camatrix.rs

/root/repo/target/debug/examples/inspect_camatrix-af9093a61d487ef3: examples/inspect_camatrix.rs

examples/inspect_camatrix.rs:
