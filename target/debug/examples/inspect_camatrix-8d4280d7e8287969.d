/root/repo/target/debug/examples/inspect_camatrix-8d4280d7e8287969.d: examples/inspect_camatrix.rs Cargo.toml

/root/repo/target/debug/examples/libinspect_camatrix-8d4280d7e8287969.rmeta: examples/inspect_camatrix.rs Cargo.toml

examples/inspect_camatrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
