/root/repo/target/debug/examples/quickstart-efc595a7005206b9.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-efc595a7005206b9.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
