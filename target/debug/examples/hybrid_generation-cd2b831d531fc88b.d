/root/repo/target/debug/examples/hybrid_generation-cd2b831d531fc88b.d: examples/hybrid_generation.rs

/root/repo/target/debug/examples/hybrid_generation-cd2b831d531fc88b: examples/hybrid_generation.rs

examples/hybrid_generation.rs:
