/root/repo/target/debug/examples/quickstart-e5079594ea2ddf53.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e5079594ea2ddf53: examples/quickstart.rs

examples/quickstart.rs:
