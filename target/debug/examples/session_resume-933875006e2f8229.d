/root/repo/target/debug/examples/session_resume-933875006e2f8229.d: examples/session_resume.rs

/root/repo/target/debug/examples/session_resume-933875006e2f8229: examples/session_resume.rs

examples/session_resume.rs:
