/root/repo/target/debug/examples/robust_characterization-60486887261e9e22.d: examples/robust_characterization.rs

/root/repo/target/debug/examples/robust_characterization-60486887261e9e22: examples/robust_characterization.rs

examples/robust_characterization.rs:
