/root/repo/target/debug/examples/parallel_engine-6bc1f1beb0f6bb82.d: examples/parallel_engine.rs Cargo.toml

/root/repo/target/debug/examples/libparallel_engine-6bc1f1beb0f6bb82.rmeta: examples/parallel_engine.rs Cargo.toml

examples/parallel_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
