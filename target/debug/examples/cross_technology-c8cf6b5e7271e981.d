/root/repo/target/debug/examples/cross_technology-c8cf6b5e7271e981.d: examples/cross_technology.rs

/root/repo/target/debug/examples/cross_technology-c8cf6b5e7271e981: examples/cross_technology.rs

examples/cross_technology.rs:
