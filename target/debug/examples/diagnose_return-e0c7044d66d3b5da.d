/root/repo/target/debug/examples/diagnose_return-e0c7044d66d3b5da.d: examples/diagnose_return.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose_return-e0c7044d66d3b5da.rmeta: examples/diagnose_return.rs Cargo.toml

examples/diagnose_return.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
