/root/repo/target/debug/examples/diagnose_return-45f9ebd6e72b2db8.d: examples/diagnose_return.rs Cargo.toml

/root/repo/target/debug/examples/libdiagnose_return-45f9ebd6e72b2db8.rmeta: examples/diagnose_return.rs Cargo.toml

examples/diagnose_return.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
