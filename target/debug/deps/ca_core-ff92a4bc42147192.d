/root/repo/target/debug/deps/ca_core-ff92a4bc42147192.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/debug/deps/libca_core-ff92a4bc42147192.rlib: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/debug/deps/libca_core-ff92a4bc42147192.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
