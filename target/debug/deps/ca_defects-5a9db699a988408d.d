/root/repo/target/debug/deps/ca_defects-5a9db699a988408d.d: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/debug/deps/libca_defects-5a9db699a988408d.rlib: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/debug/deps/libca_defects-5a9db699a988408d.rmeta: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

crates/defects/src/lib.rs:
crates/defects/src/classes.rs:
crates/defects/src/diagnosis.rs:
crates/defects/src/io.rs:
crates/defects/src/model.rs:
crates/defects/src/patterns.rs:
crates/defects/src/table.rs:
crates/defects/src/universe.rs:
