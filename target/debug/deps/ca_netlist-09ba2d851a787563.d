/root/repo/target/debug/deps/ca_netlist-09ba2d851a787563.d: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

/root/repo/target/debug/deps/libca_netlist-09ba2d851a787563.rlib: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

/root/repo/target/debug/deps/libca_netlist-09ba2d851a787563.rmeta: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

crates/netlist/src/lib.rs:
crates/netlist/src/corrupt.rs:
crates/netlist/src/error.rs:
crates/netlist/src/expr.rs:
crates/netlist/src/library.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/model.rs:
crates/netlist/src/spice.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/writer.rs:
