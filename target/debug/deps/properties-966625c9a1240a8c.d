/root/repo/target/debug/deps/properties-966625c9a1240a8c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-966625c9a1240a8c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
