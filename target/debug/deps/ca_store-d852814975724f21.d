/root/repo/target/debug/deps/ca_store-d852814975724f21.d: crates/store/src/lib.rs crates/store/src/corrupt.rs Cargo.toml

/root/repo/target/debug/deps/libca_store-d852814975724f21.rmeta: crates/store/src/lib.rs crates/store/src/corrupt.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/corrupt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
