/root/repo/target/debug/deps/cell_aware-077c8202c63208d1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcell_aware-077c8202c63208d1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
