/root/repo/target/debug/deps/cell_aware-65302701570a1a12.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcell_aware-65302701570a1a12.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
