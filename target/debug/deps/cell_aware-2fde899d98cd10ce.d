/root/repo/target/debug/deps/cell_aware-2fde899d98cd10ce.d: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-2fde899d98cd10ce.rlib: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-2fde899d98cd10ce.rmeta: src/lib.rs

src/lib.rs:
