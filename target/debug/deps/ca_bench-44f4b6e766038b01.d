/root/repo/target/debug/deps/ca_bench-44f4b6e766038b01.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libca_bench-44f4b6e766038b01.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libca_bench-44f4b6e766038b01.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
