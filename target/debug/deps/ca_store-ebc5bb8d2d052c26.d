/root/repo/target/debug/deps/ca_store-ebc5bb8d2d052c26.d: crates/store/src/lib.rs crates/store/src/corrupt.rs

/root/repo/target/debug/deps/libca_store-ebc5bb8d2d052c26.rlib: crates/store/src/lib.rs crates/store/src/corrupt.rs

/root/repo/target/debug/deps/libca_store-ebc5bb8d2d052c26.rmeta: crates/store/src/lib.rs crates/store/src/corrupt.rs

crates/store/src/lib.rs:
crates/store/src/corrupt.rs:
