/root/repo/target/debug/deps/crash_recovery-c972e450b95718f3.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-c972e450b95718f3: tests/crash_recovery.rs

tests/crash_recovery.rs:
