/root/repo/target/debug/deps/ca_bench-07bde3ea678aa432.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/ca_bench-07bde3ea678aa432: crates/bench/src/main.rs

crates/bench/src/main.rs:
