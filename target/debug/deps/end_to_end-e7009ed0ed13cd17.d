/root/repo/target/debug/deps/end_to_end-e7009ed0ed13cd17.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-e7009ed0ed13cd17: tests/end_to_end.rs

tests/end_to_end.rs:
