/root/repo/target/debug/deps/ca_sim-bdf8b2c485f1ade1.d: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs Cargo.toml

/root/repo/target/debug/deps/libca_sim-bdf8b2c485f1ade1.rmeta: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/budget.rs:
crates/sim/src/injection.rs:
crates/sim/src/simulator.rs:
crates/sim/src/solver.rs:
crates/sim/src/values.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
