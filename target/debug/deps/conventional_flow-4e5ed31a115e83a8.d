/root/repo/target/debug/deps/conventional_flow-4e5ed31a115e83a8.d: crates/bench/benches/conventional_flow.rs Cargo.toml

/root/repo/target/debug/deps/libconventional_flow-4e5ed31a115e83a8.rmeta: crates/bench/benches/conventional_flow.rs Cargo.toml

crates/bench/benches/conventional_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
