/root/repo/target/debug/deps/robustness-93849e58960dcaaf.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-93849e58960dcaaf: tests/robustness.rs

tests/robustness.rs:
