/root/repo/target/debug/deps/model_consumers-222e80079cc3265a.d: tests/model_consumers.rs

/root/repo/target/debug/deps/model_consumers-222e80079cc3265a: tests/model_consumers.rs

tests/model_consumers.rs:
