/root/repo/target/debug/deps/cell_aware-4dde3178138cfea8.d: src/lib.rs

/root/repo/target/debug/deps/cell_aware-4dde3178138cfea8: src/lib.rs

src/lib.rs:
