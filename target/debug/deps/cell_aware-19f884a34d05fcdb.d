/root/repo/target/debug/deps/cell_aware-19f884a34d05fcdb.d: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-19f884a34d05fcdb.rlib: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-19f884a34d05fcdb.rmeta: src/lib.rs

src/lib.rs:
