/root/repo/target/debug/deps/ca_store-984697ff14d14328.d: crates/store/src/lib.rs crates/store/src/corrupt.rs

/root/repo/target/debug/deps/ca_store-984697ff14d14328: crates/store/src/lib.rs crates/store/src/corrupt.rs

crates/store/src/lib.rs:
crates/store/src/corrupt.rs:
