/root/repo/target/debug/deps/ca_core-38c41b806f82dbfb.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs Cargo.toml

/root/repo/target/debug/deps/libca_core-38c41b806f82dbfb.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
