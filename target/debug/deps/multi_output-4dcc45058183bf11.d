/root/repo/target/debug/deps/multi_output-4dcc45058183bf11.d: tests/multi_output.rs

/root/repo/target/debug/deps/multi_output-4dcc45058183bf11: tests/multi_output.rs

tests/multi_output.rs:
