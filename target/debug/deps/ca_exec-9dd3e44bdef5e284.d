/root/repo/target/debug/deps/ca_exec-9dd3e44bdef5e284.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/ca_exec-9dd3e44bdef5e284: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
