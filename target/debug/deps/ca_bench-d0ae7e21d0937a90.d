/root/repo/target/debug/deps/ca_bench-d0ae7e21d0937a90.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libca_bench-d0ae7e21d0937a90.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/libca_bench-d0ae7e21d0937a90.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/perf.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
