/root/repo/target/debug/deps/ca_bench-b1e2ffdabab1e932.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/ca_bench-b1e2ffdabab1e932: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
