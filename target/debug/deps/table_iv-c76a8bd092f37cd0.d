/root/repo/target/debug/deps/table_iv-c76a8bd092f37cd0.d: crates/bench/benches/table_iv.rs Cargo.toml

/root/repo/target/debug/deps/libtable_iv-c76a8bd092f37cd0.rmeta: crates/bench/benches/table_iv.rs Cargo.toml

crates/bench/benches/table_iv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
