/root/repo/target/debug/deps/persistence_flow-6bd68ed8c20f036a.d: tests/persistence_flow.rs

/root/repo/target/debug/deps/persistence_flow-6bd68ed8c20f036a: tests/persistence_flow.rs

tests/persistence_flow.rs:
