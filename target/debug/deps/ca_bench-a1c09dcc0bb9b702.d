/root/repo/target/debug/deps/ca_bench-a1c09dcc0bb9b702.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/ca_bench-a1c09dcc0bb9b702: crates/bench/src/main.rs

crates/bench/src/main.rs:
