/root/repo/target/debug/deps/ca_exec-f59aacbc0b891f32.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libca_exec-f59aacbc0b891f32.rlib: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libca_exec-f59aacbc0b891f32.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
