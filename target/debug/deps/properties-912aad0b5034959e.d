/root/repo/target/debug/deps/properties-912aad0b5034959e.d: tests/properties.rs

/root/repo/target/debug/deps/properties-912aad0b5034959e: tests/properties.rs

tests/properties.rs:
