/root/repo/target/debug/deps/parallel_cache-e67a4c2d083d2ce9.d: tests/parallel_cache.rs

/root/repo/target/debug/deps/parallel_cache-e67a4c2d083d2ce9: tests/parallel_cache.rs

tests/parallel_cache.rs:
