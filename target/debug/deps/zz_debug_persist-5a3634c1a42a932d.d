/root/repo/target/debug/deps/zz_debug_persist-5a3634c1a42a932d.d: tests/zz_debug_persist.rs

/root/repo/target/debug/deps/zz_debug_persist-5a3634c1a42a932d: tests/zz_debug_persist.rs

tests/zz_debug_persist.rs:
