/root/repo/target/debug/deps/table_iv-3c34f13c6dbc45ff.d: crates/bench/benches/table_iv.rs Cargo.toml

/root/repo/target/debug/deps/libtable_iv-3c34f13c6dbc45ff.rmeta: crates/bench/benches/table_iv.rs Cargo.toml

crates/bench/benches/table_iv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
