/root/repo/target/debug/deps/ca_sim-0eae87a74f7d2230.d: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

/root/repo/target/debug/deps/ca_sim-0eae87a74f7d2230: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

crates/sim/src/lib.rs:
crates/sim/src/budget.rs:
crates/sim/src/injection.rs:
crates/sim/src/simulator.rs:
crates/sim/src/solver.rs:
crates/sim/src/values.rs:
