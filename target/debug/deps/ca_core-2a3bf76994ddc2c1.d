/root/repo/target/debug/deps/ca_core-2a3bf76994ddc2c1.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

/root/repo/target/debug/deps/ca_core-2a3bf76994ddc2c1: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
crates/core/src/session.rs:
