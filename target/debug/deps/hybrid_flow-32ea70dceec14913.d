/root/repo/target/debug/deps/hybrid_flow-32ea70dceec14913.d: crates/bench/benches/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-32ea70dceec14913.rmeta: crates/bench/benches/hybrid_flow.rs Cargo.toml

crates/bench/benches/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
