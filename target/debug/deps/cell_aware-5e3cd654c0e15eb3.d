/root/repo/target/debug/deps/cell_aware-5e3cd654c0e15eb3.d: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-5e3cd654c0e15eb3.rlib: src/lib.rs

/root/repo/target/debug/deps/libcell_aware-5e3cd654c0e15eb3.rmeta: src/lib.rs

src/lib.rs:
