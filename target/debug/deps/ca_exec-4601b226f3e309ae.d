/root/repo/target/debug/deps/ca_exec-4601b226f3e309ae.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libca_exec-4601b226f3e309ae.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
