/root/repo/target/debug/deps/multi_output-4ad5315a661924d7.d: tests/multi_output.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_output-4ad5315a661924d7.rmeta: tests/multi_output.rs Cargo.toml

tests/multi_output.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
