/root/repo/target/debug/deps/parallel_cache-0ef7125f6cb5101b.d: tests/parallel_cache.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_cache-0ef7125f6cb5101b.rmeta: tests/parallel_cache.rs Cargo.toml

tests/parallel_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
