/root/repo/target/debug/deps/forest-1e70f32a06a1b57f.d: crates/bench/benches/forest.rs Cargo.toml

/root/repo/target/debug/deps/libforest-1e70f32a06a1b57f.rmeta: crates/bench/benches/forest.rs Cargo.toml

crates/bench/benches/forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
