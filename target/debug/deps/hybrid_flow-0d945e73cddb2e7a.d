/root/repo/target/debug/deps/hybrid_flow-0d945e73cddb2e7a.d: tests/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-0d945e73cddb2e7a.rmeta: tests/hybrid_flow.rs Cargo.toml

tests/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
