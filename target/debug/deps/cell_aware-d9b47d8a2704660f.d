/root/repo/target/debug/deps/cell_aware-d9b47d8a2704660f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcell_aware-d9b47d8a2704660f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
