/root/repo/target/debug/deps/ca_ml-7dca49ca7e4cbaf9.d: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/debug/deps/libca_ml-7dca49ca7e4cbaf9.rlib: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/debug/deps/libca_ml-7dca49ca7e4cbaf9.rmeta: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

crates/ml/src/lib.rs:
crates/ml/src/baselines.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/metrics.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
crates/ml/src/validate.rs:
