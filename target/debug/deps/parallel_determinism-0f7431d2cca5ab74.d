/root/repo/target/debug/deps/parallel_determinism-0f7431d2cca5ab74.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-0f7431d2cca5ab74: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
