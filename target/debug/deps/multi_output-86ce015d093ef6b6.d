/root/repo/target/debug/deps/multi_output-86ce015d093ef6b6.d: tests/multi_output.rs

/root/repo/target/debug/deps/multi_output-86ce015d093ef6b6: tests/multi_output.rs

tests/multi_output.rs:
