/root/repo/target/debug/deps/persistence_flow-0bc49bd6fb498f8d.d: tests/persistence_flow.rs Cargo.toml

/root/repo/target/debug/deps/libpersistence_flow-0bc49bd6fb498f8d.rmeta: tests/persistence_flow.rs Cargo.toml

tests/persistence_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
