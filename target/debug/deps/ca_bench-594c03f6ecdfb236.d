/root/repo/target/debug/deps/ca_bench-594c03f6ecdfb236.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/ca_bench-594c03f6ecdfb236: crates/bench/src/main.rs

crates/bench/src/main.rs:
