/root/repo/target/debug/deps/properties-702d6349d82a705d.d: tests/properties.rs

/root/repo/target/debug/deps/properties-702d6349d82a705d: tests/properties.rs

tests/properties.rs:
