/root/repo/target/debug/deps/ca_bench-2823e0db057d6e42.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libca_bench-2823e0db057d6e42.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/perf.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
