/root/repo/target/debug/deps/ca_netlist-cce3025ee344fbe5.d: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

/root/repo/target/debug/deps/ca_netlist-cce3025ee344fbe5: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

crates/netlist/src/lib.rs:
crates/netlist/src/corrupt.rs:
crates/netlist/src/error.rs:
crates/netlist/src/expr.rs:
crates/netlist/src/library.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/model.rs:
crates/netlist/src/spice.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/writer.rs:
