/root/repo/target/debug/deps/ca_bench-b7a7441d0e548883.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/ca_bench-b7a7441d0e548883: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/perf.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
