/root/repo/target/debug/deps/ca_core-9505b7dcf7910880.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/debug/deps/ca_core-9505b7dcf7910880: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
