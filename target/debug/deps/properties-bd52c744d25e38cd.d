/root/repo/target/debug/deps/properties-bd52c744d25e38cd.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bd52c744d25e38cd.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
