/root/repo/target/debug/deps/parallel_cache-d916e8f853199423.d: tests/parallel_cache.rs

/root/repo/target/debug/deps/parallel_cache-d916e8f853199423: tests/parallel_cache.rs

tests/parallel_cache.rs:
