/root/repo/target/debug/deps/cell_aware-317ff6084d8b8ee4.d: src/lib.rs

/root/repo/target/debug/deps/cell_aware-317ff6084d8b8ee4: src/lib.rs

src/lib.rs:
