/root/repo/target/debug/deps/forest-9141b2e97586c79f.d: crates/bench/benches/forest.rs Cargo.toml

/root/repo/target/debug/deps/libforest-9141b2e97586c79f.rmeta: crates/bench/benches/forest.rs Cargo.toml

crates/bench/benches/forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
