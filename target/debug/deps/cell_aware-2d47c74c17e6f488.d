/root/repo/target/debug/deps/cell_aware-2d47c74c17e6f488.d: src/lib.rs

/root/repo/target/debug/deps/cell_aware-2d47c74c17e6f488: src/lib.rs

src/lib.rs:
