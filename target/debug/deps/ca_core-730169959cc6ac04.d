/root/repo/target/debug/deps/ca_core-730169959cc6ac04.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libca_core-730169959cc6ac04.rlib: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

/root/repo/target/debug/deps/libca_core-730169959cc6ac04.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
crates/core/src/session.rs:
