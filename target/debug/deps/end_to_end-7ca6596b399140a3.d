/root/repo/target/debug/deps/end_to_end-7ca6596b399140a3.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-7ca6596b399140a3: tests/end_to_end.rs

tests/end_to_end.rs:
