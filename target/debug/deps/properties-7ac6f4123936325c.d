/root/repo/target/debug/deps/properties-7ac6f4123936325c.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7ac6f4123936325c.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
