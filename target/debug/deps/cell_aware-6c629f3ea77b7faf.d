/root/repo/target/debug/deps/cell_aware-6c629f3ea77b7faf.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcell_aware-6c629f3ea77b7faf.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
