/root/repo/target/debug/deps/ca_defects-b1c7032207d1f748.d: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/debug/deps/ca_defects-b1c7032207d1f748: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

crates/defects/src/lib.rs:
crates/defects/src/classes.rs:
crates/defects/src/diagnosis.rs:
crates/defects/src/io.rs:
crates/defects/src/model.rs:
crates/defects/src/patterns.rs:
crates/defects/src/table.rs:
crates/defects/src/universe.rs:
