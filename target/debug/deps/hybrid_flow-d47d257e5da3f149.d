/root/repo/target/debug/deps/hybrid_flow-d47d257e5da3f149.d: tests/hybrid_flow.rs

/root/repo/target/debug/deps/hybrid_flow-d47d257e5da3f149: tests/hybrid_flow.rs

tests/hybrid_flow.rs:
