/root/repo/target/debug/deps/hybrid_flow-09b499330f242bc7.d: crates/bench/benches/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-09b499330f242bc7.rmeta: crates/bench/benches/hybrid_flow.rs Cargo.toml

crates/bench/benches/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
