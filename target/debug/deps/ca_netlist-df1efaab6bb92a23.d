/root/repo/target/debug/deps/ca_netlist-df1efaab6bb92a23.d: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libca_netlist-df1efaab6bb92a23.rmeta: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/corrupt.rs:
crates/netlist/src/error.rs:
crates/netlist/src/expr.rs:
crates/netlist/src/library.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/model.rs:
crates/netlist/src/spice.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
