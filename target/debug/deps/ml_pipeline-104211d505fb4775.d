/root/repo/target/debug/deps/ml_pipeline-104211d505fb4775.d: tests/ml_pipeline.rs

/root/repo/target/debug/deps/ml_pipeline-104211d505fb4775: tests/ml_pipeline.rs

tests/ml_pipeline.rs:
