/root/repo/target/debug/deps/ca_rng-fc54147845fd8edb.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libca_rng-fc54147845fd8edb.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
