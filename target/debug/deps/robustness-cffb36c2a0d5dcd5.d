/root/repo/target/debug/deps/robustness-cffb36c2a0d5dcd5.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-cffb36c2a0d5dcd5.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
