/root/repo/target/debug/deps/robustness-4959d9f348d95e44.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-4959d9f348d95e44.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
