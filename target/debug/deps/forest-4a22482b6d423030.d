/root/repo/target/debug/deps/forest-4a22482b6d423030.d: crates/bench/benches/forest.rs Cargo.toml

/root/repo/target/debug/deps/libforest-4a22482b6d423030.rmeta: crates/bench/benches/forest.rs Cargo.toml

crates/bench/benches/forest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
