/root/repo/target/debug/deps/ca_exec-045d60ac8e98e938.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libca_exec-045d60ac8e98e938.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
