/root/repo/target/debug/deps/robustness-8b591d01b1dddcfa.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-8b591d01b1dddcfa: tests/robustness.rs

tests/robustness.rs:
