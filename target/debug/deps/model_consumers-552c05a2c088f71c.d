/root/repo/target/debug/deps/model_consumers-552c05a2c088f71c.d: tests/model_consumers.rs

/root/repo/target/debug/deps/model_consumers-552c05a2c088f71c: tests/model_consumers.rs

tests/model_consumers.rs:
