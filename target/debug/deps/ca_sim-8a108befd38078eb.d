/root/repo/target/debug/deps/ca_sim-8a108befd38078eb.d: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

/root/repo/target/debug/deps/libca_sim-8a108befd38078eb.rlib: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

/root/repo/target/debug/deps/libca_sim-8a108befd38078eb.rmeta: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

crates/sim/src/lib.rs:
crates/sim/src/budget.rs:
crates/sim/src/injection.rs:
crates/sim/src/simulator.rs:
crates/sim/src/solver.rs:
crates/sim/src/values.rs:
