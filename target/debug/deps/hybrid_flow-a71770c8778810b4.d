/root/repo/target/debug/deps/hybrid_flow-a71770c8778810b4.d: tests/hybrid_flow.rs

/root/repo/target/debug/deps/hybrid_flow-a71770c8778810b4: tests/hybrid_flow.rs

tests/hybrid_flow.rs:
