/root/repo/target/debug/deps/persistence_flow-6c3944c5eb9f82b4.d: tests/persistence_flow.rs

/root/repo/target/debug/deps/persistence_flow-6c3944c5eb9f82b4: tests/persistence_flow.rs

tests/persistence_flow.rs:
