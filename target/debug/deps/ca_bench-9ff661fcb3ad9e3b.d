/root/repo/target/debug/deps/ca_bench-9ff661fcb3ad9e3b.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/debug/deps/ca_bench-9ff661fcb3ad9e3b: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/perf.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
