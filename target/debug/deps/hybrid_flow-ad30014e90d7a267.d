/root/repo/target/debug/deps/hybrid_flow-ad30014e90d7a267.d: tests/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-ad30014e90d7a267.rmeta: tests/hybrid_flow.rs Cargo.toml

tests/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
