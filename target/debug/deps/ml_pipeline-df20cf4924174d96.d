/root/repo/target/debug/deps/ml_pipeline-df20cf4924174d96.d: tests/ml_pipeline.rs

/root/repo/target/debug/deps/ml_pipeline-df20cf4924174d96: tests/ml_pipeline.rs

tests/ml_pipeline.rs:
