/root/repo/target/debug/deps/persistence_flow-984184bd07b8655f.d: tests/persistence_flow.rs

/root/repo/target/debug/deps/persistence_flow-984184bd07b8655f: tests/persistence_flow.rs

tests/persistence_flow.rs:
