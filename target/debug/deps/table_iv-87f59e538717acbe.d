/root/repo/target/debug/deps/table_iv-87f59e538717acbe.d: crates/bench/benches/table_iv.rs Cargo.toml

/root/repo/target/debug/deps/libtable_iv-87f59e538717acbe.rmeta: crates/bench/benches/table_iv.rs Cargo.toml

crates/bench/benches/table_iv.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
