/root/repo/target/debug/deps/ca_bench-3d7ce36ea6fe8f5f.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libca_bench-3d7ce36ea6fe8f5f.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
