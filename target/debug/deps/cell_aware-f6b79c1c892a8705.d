/root/repo/target/debug/deps/cell_aware-f6b79c1c892a8705.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcell_aware-f6b79c1c892a8705.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
