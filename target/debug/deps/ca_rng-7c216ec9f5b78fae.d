/root/repo/target/debug/deps/ca_rng-7c216ec9f5b78fae.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libca_rng-7c216ec9f5b78fae.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
