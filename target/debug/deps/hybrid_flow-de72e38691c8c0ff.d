/root/repo/target/debug/deps/hybrid_flow-de72e38691c8c0ff.d: crates/bench/benches/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-de72e38691c8c0ff.rmeta: crates/bench/benches/hybrid_flow.rs Cargo.toml

crates/bench/benches/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
