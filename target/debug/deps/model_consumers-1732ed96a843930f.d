/root/repo/target/debug/deps/model_consumers-1732ed96a843930f.d: tests/model_consumers.rs

/root/repo/target/debug/deps/model_consumers-1732ed96a843930f: tests/model_consumers.rs

tests/model_consumers.rs:
