/root/repo/target/debug/deps/camatrix_creation-394cb7c9f35b8bab.d: crates/bench/benches/camatrix_creation.rs Cargo.toml

/root/repo/target/debug/deps/libcamatrix_creation-394cb7c9f35b8bab.rmeta: crates/bench/benches/camatrix_creation.rs Cargo.toml

crates/bench/benches/camatrix_creation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
