/root/repo/target/debug/deps/properties-cedfaabb36bcd865.d: tests/properties.rs

/root/repo/target/debug/deps/properties-cedfaabb36bcd865: tests/properties.rs

tests/properties.rs:
