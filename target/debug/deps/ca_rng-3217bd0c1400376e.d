/root/repo/target/debug/deps/ca_rng-3217bd0c1400376e.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/ca_rng-3217bd0c1400376e: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
