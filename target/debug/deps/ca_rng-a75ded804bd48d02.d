/root/repo/target/debug/deps/ca_rng-a75ded804bd48d02.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libca_rng-a75ded804bd48d02.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libca_rng-a75ded804bd48d02.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
