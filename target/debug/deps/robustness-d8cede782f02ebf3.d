/root/repo/target/debug/deps/robustness-d8cede782f02ebf3.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-d8cede782f02ebf3: tests/robustness.rs

tests/robustness.rs:
