/root/repo/target/debug/deps/ml_pipeline-10be6928418308b6.d: tests/ml_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libml_pipeline-10be6928418308b6.rmeta: tests/ml_pipeline.rs Cargo.toml

tests/ml_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
