/root/repo/target/debug/deps/ca_ml-54fe992eda1dc35b.d: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs Cargo.toml

/root/repo/target/debug/deps/libca_ml-54fe992eda1dc35b.rmeta: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs Cargo.toml

crates/ml/src/lib.rs:
crates/ml/src/baselines.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/metrics.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
crates/ml/src/validate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
