/root/repo/target/debug/deps/ca_bench-399d2c2bdd50cc33.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libca_bench-399d2c2bdd50cc33.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
