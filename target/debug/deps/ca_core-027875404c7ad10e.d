/root/repo/target/debug/deps/ca_core-027875404c7ad10e.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/debug/deps/libca_core-027875404c7ad10e.rlib: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/debug/deps/libca_core-027875404c7ad10e.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
