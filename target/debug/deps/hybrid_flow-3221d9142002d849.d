/root/repo/target/debug/deps/hybrid_flow-3221d9142002d849.d: tests/hybrid_flow.rs

/root/repo/target/debug/deps/hybrid_flow-3221d9142002d849: tests/hybrid_flow.rs

tests/hybrid_flow.rs:
