/root/repo/target/debug/deps/ca_bench-7f42d020ce494384.d: crates/bench/src/main.rs

/root/repo/target/debug/deps/ca_bench-7f42d020ce494384: crates/bench/src/main.rs

crates/bench/src/main.rs:
