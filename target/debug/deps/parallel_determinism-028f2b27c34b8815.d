/root/repo/target/debug/deps/parallel_determinism-028f2b27c34b8815.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-028f2b27c34b8815: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
