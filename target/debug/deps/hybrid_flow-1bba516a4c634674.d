/root/repo/target/debug/deps/hybrid_flow-1bba516a4c634674.d: tests/hybrid_flow.rs Cargo.toml

/root/repo/target/debug/deps/libhybrid_flow-1bba516a4c634674.rmeta: tests/hybrid_flow.rs Cargo.toml

tests/hybrid_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
