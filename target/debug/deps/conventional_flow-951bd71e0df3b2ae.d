/root/repo/target/debug/deps/conventional_flow-951bd71e0df3b2ae.d: crates/bench/benches/conventional_flow.rs Cargo.toml

/root/repo/target/debug/deps/libconventional_flow-951bd71e0df3b2ae.rmeta: crates/bench/benches/conventional_flow.rs Cargo.toml

crates/bench/benches/conventional_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
