/root/repo/target/debug/deps/robustness-7f75a6c25baf996a.d: tests/robustness.rs Cargo.toml

/root/repo/target/debug/deps/librobustness-7f75a6c25baf996a.rmeta: tests/robustness.rs Cargo.toml

tests/robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
