/root/repo/target/debug/deps/parallel_determinism-f899d10d7886489a.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_determinism-f899d10d7886489a.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
