/root/repo/target/debug/deps/model_consumers-83643a050a6a58b1.d: tests/model_consumers.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_consumers-83643a050a6a58b1.rmeta: tests/model_consumers.rs Cargo.toml

tests/model_consumers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
