/root/repo/target/debug/deps/crash_recovery-cb2ea2ca83eb8898.d: tests/crash_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_recovery-cb2ea2ca83eb8898.rmeta: tests/crash_recovery.rs Cargo.toml

tests/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
