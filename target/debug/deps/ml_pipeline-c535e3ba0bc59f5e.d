/root/repo/target/debug/deps/ml_pipeline-c535e3ba0bc59f5e.d: tests/ml_pipeline.rs

/root/repo/target/debug/deps/ml_pipeline-c535e3ba0bc59f5e: tests/ml_pipeline.rs

tests/ml_pipeline.rs:
