/root/repo/target/debug/deps/ca_ml-ff2f980039c2393b.d: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/debug/deps/libca_ml-ff2f980039c2393b.rlib: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/debug/deps/libca_ml-ff2f980039c2393b.rmeta: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

crates/ml/src/lib.rs:
crates/ml/src/baselines.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/metrics.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
crates/ml/src/validate.rs:
