/root/repo/target/debug/deps/ca_ml-8dea6a086206da22.d: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/debug/deps/ca_ml-8dea6a086206da22: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

crates/ml/src/lib.rs:
crates/ml/src/baselines.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/metrics.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
crates/ml/src/validate.rs:
