/root/repo/target/debug/deps/multi_output-e85e67d3074addf1.d: tests/multi_output.rs

/root/repo/target/debug/deps/multi_output-e85e67d3074addf1: tests/multi_output.rs

tests/multi_output.rs:
