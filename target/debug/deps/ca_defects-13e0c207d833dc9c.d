/root/repo/target/debug/deps/ca_defects-13e0c207d833dc9c.d: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/debug/deps/ca_defects-13e0c207d833dc9c: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

crates/defects/src/lib.rs:
crates/defects/src/classes.rs:
crates/defects/src/diagnosis.rs:
crates/defects/src/io.rs:
crates/defects/src/model.rs:
crates/defects/src/patterns.rs:
crates/defects/src/table.rs:
crates/defects/src/universe.rs:
