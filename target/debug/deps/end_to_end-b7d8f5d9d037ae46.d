/root/repo/target/debug/deps/end_to_end-b7d8f5d9d037ae46.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-b7d8f5d9d037ae46: tests/end_to_end.rs

tests/end_to_end.rs:
