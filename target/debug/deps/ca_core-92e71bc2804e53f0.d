/root/repo/target/debug/deps/ca_core-92e71bc2804e53f0.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libca_core-92e71bc2804e53f0.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
crates/core/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
