/root/repo/target/debug/deps/ca_defects-19138776f1248071.d: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs Cargo.toml

/root/repo/target/debug/deps/libca_defects-19138776f1248071.rmeta: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs Cargo.toml

crates/defects/src/lib.rs:
crates/defects/src/classes.rs:
crates/defects/src/diagnosis.rs:
crates/defects/src/io.rs:
crates/defects/src/model.rs:
crates/defects/src/patterns.rs:
crates/defects/src/table.rs:
crates/defects/src/universe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
