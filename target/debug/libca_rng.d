/root/repo/target/debug/libca_rng.rlib: /root/repo/crates/rng/src/lib.rs
