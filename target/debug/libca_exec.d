/root/repo/target/debug/libca_exec.rlib: /root/repo/crates/exec/src/lib.rs
