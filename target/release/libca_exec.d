/root/repo/target/release/libca_exec.rlib: /root/repo/crates/exec/src/lib.rs
