/root/repo/target/release/libca_store.rlib: /root/repo/crates/rng/src/lib.rs /root/repo/crates/store/src/corrupt.rs /root/repo/crates/store/src/lib.rs
