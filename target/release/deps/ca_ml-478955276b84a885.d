/root/repo/target/release/deps/ca_ml-478955276b84a885.d: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/release/deps/libca_ml-478955276b84a885.rlib: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

/root/repo/target/release/deps/libca_ml-478955276b84a885.rmeta: crates/ml/src/lib.rs crates/ml/src/baselines.rs crates/ml/src/data.rs crates/ml/src/forest.rs crates/ml/src/metrics.rs crates/ml/src/naive_bayes.rs crates/ml/src/tree.rs crates/ml/src/validate.rs

crates/ml/src/lib.rs:
crates/ml/src/baselines.rs:
crates/ml/src/data.rs:
crates/ml/src/forest.rs:
crates/ml/src/metrics.rs:
crates/ml/src/naive_bayes.rs:
crates/ml/src/tree.rs:
crates/ml/src/validate.rs:
