/root/repo/target/release/deps/cell_aware-51b239e55b06928f.d: src/lib.rs

/root/repo/target/release/deps/libcell_aware-51b239e55b06928f.rlib: src/lib.rs

/root/repo/target/release/deps/libcell_aware-51b239e55b06928f.rmeta: src/lib.rs

src/lib.rs:
