/root/repo/target/release/deps/cell_aware-d0b15c8c9ec4ca0c.d: src/lib.rs

/root/repo/target/release/deps/libcell_aware-d0b15c8c9ec4ca0c.rlib: src/lib.rs

/root/repo/target/release/deps/libcell_aware-d0b15c8c9ec4ca0c.rmeta: src/lib.rs

src/lib.rs:
