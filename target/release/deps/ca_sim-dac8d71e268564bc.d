/root/repo/target/release/deps/ca_sim-dac8d71e268564bc.d: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

/root/repo/target/release/deps/libca_sim-dac8d71e268564bc.rlib: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

/root/repo/target/release/deps/libca_sim-dac8d71e268564bc.rmeta: crates/sim/src/lib.rs crates/sim/src/budget.rs crates/sim/src/injection.rs crates/sim/src/simulator.rs crates/sim/src/solver.rs crates/sim/src/values.rs

crates/sim/src/lib.rs:
crates/sim/src/budget.rs:
crates/sim/src/injection.rs:
crates/sim/src/simulator.rs:
crates/sim/src/solver.rs:
crates/sim/src/values.rs:
