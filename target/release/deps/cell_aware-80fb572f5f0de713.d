/root/repo/target/release/deps/cell_aware-80fb572f5f0de713.d: src/lib.rs

/root/repo/target/release/deps/libcell_aware-80fb572f5f0de713.rlib: src/lib.rs

/root/repo/target/release/deps/libcell_aware-80fb572f5f0de713.rmeta: src/lib.rs

src/lib.rs:
