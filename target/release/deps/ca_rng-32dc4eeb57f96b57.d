/root/repo/target/release/deps/ca_rng-32dc4eeb57f96b57.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libca_rng-32dc4eeb57f96b57.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libca_rng-32dc4eeb57f96b57.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
