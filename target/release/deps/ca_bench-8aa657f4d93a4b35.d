/root/repo/target/release/deps/ca_bench-8aa657f4d93a4b35.d: crates/bench/src/main.rs

/root/repo/target/release/deps/ca_bench-8aa657f4d93a4b35: crates/bench/src/main.rs

crates/bench/src/main.rs:
