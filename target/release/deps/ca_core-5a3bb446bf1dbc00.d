/root/repo/target/release/deps/ca_core-5a3bb446bf1dbc00.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

/root/repo/target/release/deps/libca_core-5a3bb446bf1dbc00.rlib: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

/root/repo/target/release/deps/libca_core-5a3bb446bf1dbc00.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs crates/core/src/session.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
crates/core/src/session.rs:
