/root/repo/target/release/deps/ca_bench-c6d8352026e6ca1a.d: crates/bench/src/main.rs

/root/repo/target/release/deps/ca_bench-c6d8352026e6ca1a: crates/bench/src/main.rs

crates/bench/src/main.rs:
