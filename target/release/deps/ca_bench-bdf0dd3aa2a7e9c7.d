/root/repo/target/release/deps/ca_bench-bdf0dd3aa2a7e9c7.d: crates/bench/src/main.rs

/root/repo/target/release/deps/ca_bench-bdf0dd3aa2a7e9c7: crates/bench/src/main.rs

crates/bench/src/main.rs:
