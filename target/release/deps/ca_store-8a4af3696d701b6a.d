/root/repo/target/release/deps/ca_store-8a4af3696d701b6a.d: crates/store/src/lib.rs crates/store/src/corrupt.rs

/root/repo/target/release/deps/libca_store-8a4af3696d701b6a.rlib: crates/store/src/lib.rs crates/store/src/corrupt.rs

/root/repo/target/release/deps/libca_store-8a4af3696d701b6a.rmeta: crates/store/src/lib.rs crates/store/src/corrupt.rs

crates/store/src/lib.rs:
crates/store/src/corrupt.rs:
