/root/repo/target/release/deps/ca_bench-01eba09499d6b725.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libca_bench-01eba09499d6b725.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libca_bench-01eba09499d6b725.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
