/root/repo/target/release/deps/ca_core-ff78c1abfd13a406.d: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/release/deps/libca_core-ff78c1abfd13a406.rlib: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

/root/repo/target/release/deps/libca_core-ff78c1abfd13a406.rmeta: crates/core/src/lib.rs crates/core/src/activation.rs crates/core/src/cache.rs crates/core/src/canonical.rs crates/core/src/charlib.rs crates/core/src/cost.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/matrix.rs crates/core/src/robust.rs

crates/core/src/lib.rs:
crates/core/src/activation.rs:
crates/core/src/cache.rs:
crates/core/src/canonical.rs:
crates/core/src/charlib.rs:
crates/core/src/cost.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/matrix.rs:
crates/core/src/robust.rs:
