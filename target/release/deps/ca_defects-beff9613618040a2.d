/root/repo/target/release/deps/ca_defects-beff9613618040a2.d: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/release/deps/libca_defects-beff9613618040a2.rlib: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

/root/repo/target/release/deps/libca_defects-beff9613618040a2.rmeta: crates/defects/src/lib.rs crates/defects/src/classes.rs crates/defects/src/diagnosis.rs crates/defects/src/io.rs crates/defects/src/model.rs crates/defects/src/patterns.rs crates/defects/src/table.rs crates/defects/src/universe.rs

crates/defects/src/lib.rs:
crates/defects/src/classes.rs:
crates/defects/src/diagnosis.rs:
crates/defects/src/io.rs:
crates/defects/src/model.rs:
crates/defects/src/patterns.rs:
crates/defects/src/table.rs:
crates/defects/src/universe.rs:
