/root/repo/target/release/deps/ca_exec-0522044a14751f23.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/libca_exec-0522044a14751f23.rlib: crates/exec/src/lib.rs

/root/repo/target/release/deps/libca_exec-0522044a14751f23.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
