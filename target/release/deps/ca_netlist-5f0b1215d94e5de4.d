/root/repo/target/release/deps/ca_netlist-5f0b1215d94e5de4.d: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

/root/repo/target/release/deps/libca_netlist-5f0b1215d94e5de4.rlib: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

/root/repo/target/release/deps/libca_netlist-5f0b1215d94e5de4.rmeta: crates/netlist/src/lib.rs crates/netlist/src/corrupt.rs crates/netlist/src/error.rs crates/netlist/src/expr.rs crates/netlist/src/library.rs crates/netlist/src/lint.rs crates/netlist/src/model.rs crates/netlist/src/spice.rs crates/netlist/src/synth.rs crates/netlist/src/writer.rs

crates/netlist/src/lib.rs:
crates/netlist/src/corrupt.rs:
crates/netlist/src/error.rs:
crates/netlist/src/expr.rs:
crates/netlist/src/library.rs:
crates/netlist/src/lint.rs:
crates/netlist/src/model.rs:
crates/netlist/src/spice.rs:
crates/netlist/src/synth.rs:
crates/netlist/src/writer.rs:
