/root/repo/target/release/deps/ca_bench-44b4bc848d483ca4.d: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libca_bench-44b4bc848d483ca4.rlib: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

/root/repo/target/release/deps/libca_bench-44b4bc848d483ca4.rmeta: crates/bench/src/lib.rs crates/bench/src/corpus.rs crates/bench/src/microbench.rs crates/bench/src/perf.rs crates/bench/src/report.rs crates/bench/src/tables.rs

crates/bench/src/lib.rs:
crates/bench/src/corpus.rs:
crates/bench/src/microbench.rs:
crates/bench/src/perf.rs:
crates/bench/src/report.rs:
crates/bench/src/tables.rs:
