/root/repo/target/release/libca_rng.rlib: /root/repo/crates/rng/src/lib.rs
