/root/repo/target/release/examples/robust_characterization-e25b2ad53b0e98c9.d: examples/robust_characterization.rs

/root/repo/target/release/examples/robust_characterization-e25b2ad53b0e98c9: examples/robust_characterization.rs

examples/robust_characterization.rs:
