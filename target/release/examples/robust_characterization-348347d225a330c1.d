/root/repo/target/release/examples/robust_characterization-348347d225a330c1.d: examples/robust_characterization.rs

/root/repo/target/release/examples/robust_characterization-348347d225a330c1: examples/robust_characterization.rs

examples/robust_characterization.rs:
