/root/repo/target/release/examples/robust_characterization-4ab173e55f71b322.d: examples/robust_characterization.rs

/root/repo/target/release/examples/robust_characterization-4ab173e55f71b322: examples/robust_characterization.rs

examples/robust_characterization.rs:
