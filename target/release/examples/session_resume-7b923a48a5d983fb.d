/root/repo/target/release/examples/session_resume-7b923a48a5d983fb.d: examples/session_resume.rs

/root/repo/target/release/examples/session_resume-7b923a48a5d983fb: examples/session_resume.rs

examples/session_resume.rs:
