/root/repo/target/release/examples/parallel_engine-f247a4d588c99d09.d: examples/parallel_engine.rs

/root/repo/target/release/examples/parallel_engine-f247a4d588c99d09: examples/parallel_engine.rs

examples/parallel_engine.rs:
