//! Facade crate for the `cell-aware` workspace.
//!
//! Re-exports every sub-crate so examples and downstream users can depend
//! on a single package. See the README for the architecture overview and
//! DESIGN.md for the paper-to-module map.
//!
//! # Quickstart
//!
//! ```
//! use cell_aware::netlist::spice;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cell = spice::parse_cell(
//!     ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS",
//! )?;
//! assert_eq!(cell.num_inputs(), 1);
//! # Ok(())
//! # }
//! ```

pub use ca_core as core;
pub use ca_defects as defects;
pub use ca_ml as ml;
pub use ca_netlist as netlist;
pub use ca_obs as obs;
pub use ca_serve as serve;
pub use ca_shard as shard;
pub use ca_sim as sim;
pub use ca_store as store;
