#!/usr/bin/env bash
# Hermetic CI gate: build, test, format and lint the whole workspace
# without touching the network. Every dependency is in-tree, so
# `--offline` must always succeed — if it doesn't, someone broke the
# hermetic-build guarantee and this script is the tripwire.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build (release, offline)"
cargo build --release --workspace --offline

# The suite runs at two thread counts: the parallel engine guarantees
# bit-identical results regardless of CA_THREADS, and this is the
# tripwire for that guarantee (see DESIGN.md §7).
echo "==> cargo test (offline, CA_THREADS=1)"
CA_THREADS=1 cargo test -q --workspace --offline

echo "==> cargo test (offline, CA_THREADS=4)"
CA_THREADS=4 cargo test -q --workspace --offline

# The packed engine is only allowed to exist because it is bit-identical
# to the scalar solver (DESIGN.md §12). Run the differential suite at
# both thread counts, then the full suite once with the packed path
# forced off so the scalar reference stays green on its own.
echo "==> packed equivalence (packed vs scalar, CA_THREADS=1)"
CA_THREADS=1 cargo test -q --test packed_equivalence --offline

echo "==> packed equivalence (packed vs scalar, CA_THREADS=4)"
CA_THREADS=4 cargo test -q --test packed_equivalence --offline

echo "==> cargo test (offline, CA_PACKED=0 scalar path)"
CA_PACKED=0 cargo test -q --workspace --offline

# The crash-recovery suite SIGKILLs child runs mid-library and proves the
# session store resumes to byte-identical outputs (DESIGN.md §8). Run it
# explicitly at both thread counts so the kill/resume path — not just the
# in-process tests — is exercised serial and parallel.
echo "==> crash recovery (SIGKILL + resume, CA_THREADS=1)"
CA_THREADS=1 cargo test -q --test crash_recovery --offline

echo "==> crash recovery (SIGKILL + resume, CA_THREADS=4)"
CA_THREADS=4 cargo test -q --test crash_recovery --offline

# The sharded-campaign crash matrix: real worker processes crashed
# mid-journal, hung (heartbeat timeout -> SIGKILL), failing and
# unspawnable, each campaign converging to the single-process golden
# byte-for-byte (DESIGN.md §11). Both thread counts, like the
# crash-recovery gate above.
echo "==> shard supervision (worker crash matrix, CA_THREADS=1)"
CA_THREADS=1 cargo test -q --test shard_supervision --test shard_merge --offline

echo "==> shard supervision (worker crash matrix, CA_THREADS=4)"
CA_THREADS=4 cargo test -q --test shard_supervision --test shard_merge --offline

# The serving layer's robustness matrix: hostile frames, overload
# shedding, queue deadlines, wire-level drain, SIGTERM drain and a
# SIGKILL mid-campaign with byte-identical resume (DESIGN.md §13). Both
# thread counts, like every other crash gate.
echo "==> serve robustness (drain + SIGKILL resume, CA_THREADS=1)"
CA_THREADS=1 cargo test -q -p ca-serve --test serve_robustness --offline

echo "==> serve robustness (drain + SIGKILL resume, CA_THREADS=4)"
CA_THREADS=4 cargo test -q -p ca-serve --test serve_robustness --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --all-targets --workspace --offline -- -D warnings

# The store is the durability layer: keep it at zero clippy debt even if
# the workspace-wide gate is ever loosened.
echo "==> cargo clippy (ca-store, standalone gate)"
cargo clippy -p ca-store --all-targets --offline -- -D warnings

# Observability is always-on in every crate; its own clippy debt would
# spread everywhere, so gate it standalone like the store.
echo "==> cargo clippy (ca-obs, standalone gate)"
cargo clippy -p ca-obs --all-targets --offline -- -D warnings

# The supervisor runs unattended campaigns; a stray unwrap there kills
# a campaign instead of retrying a shard, so it gets the same standalone
# zero-debt gate as the store.
echo "==> cargo clippy (ca-shard, standalone gate)"
cargo clippy -p ca-shard --all-targets --offline -- -D warnings

# The serving daemon runs unattended and speaks to untrusted sockets; a
# panic path or unwrap in it turns hostile input into an outage, so it
# gets the same standalone zero-debt gate as the other always-on crates.
echo "==> cargo clippy (ca-serve, standalone gate)"
cargo clippy -p ca-serve --all-targets --offline -- -D warnings

# The auditor is the machine-checked form of the determinism /
# durability / observability conventions (DESIGN.md §10) plus the
# cross-crate analysis rules D8–D12 (DESIGN.md §15); it must never
# itself carry clippy debt, and the workspace must audit clean with
# warnings denied — suppressions are allowed only at the documented
# (crate, rule) sites, and no --baseline file is passed here: ratchet
# files are for in-flight migrations, merged code audits clean as-is.
echo "==> cargo clippy (ca-audit, standalone gate)"
cargo clippy -p ca-audit --all-targets --offline -- -D warnings

echo "==> ca-audit --deny warn (workspace invariant audit, D1-D12)"
cargo run -q --release --offline -p ca-audit -- --deny warn

# Opt-in Miri smoke over the byte-level codecs: undefined behaviour in
# the store's journal framing would silently corrupt every durability
# guarantee, and UB in the serve wire codec would turn hostile bytes
# into memory corruption instead of structured errors. Miri needs a
# nightly component that hermetic containers may not carry, so the
# gate only runs when asked for.
if [[ "${CA_CI_MIRI:-0}" == "1" ]]; then
    if rustup component list --installed 2>/dev/null | grep -q miri; then
        echo "==> cargo miri test (ca-store journal framing, opt-in)"
        # Only the in-memory record codec: CRC vectors and the decode
        # rejection paths. The file-backed tests need a real filesystem
        # and stay out of the interpreter.
        cargo miri test -p ca-store --lib -- crc32 decode_rejects
        echo "==> cargo miri test (ca-serve protocol codec fuzz, opt-in)"
        # The protocol fuzz suite: exhaustive truncation and bit-flip
        # sweeps over framed requests/responses must yield structured
        # errors, never UB. Socket-backed tests stay out.
        cargo miri test -p ca-serve --lib -- \
            protocol::tests::every_truncation_is_a_structured_error \
            protocol::tests::every_bit_flip_in_a_framed_request_is_contained
    else
        echo "==> CA_CI_MIRI=1 but the miri component is not installed; skipping" >&2
        exit 1
    fi
fi

# Opt-in ThreadSanitizer smoke over the lock-heavy crates: the D8
# lock-order rule proves ordering statically, TSan checks the dynamic
# half (data races) on the real test binaries. Needs the nightly
# toolchain with rust-src for -Zbuild-std, so it only runs when asked.
if [[ "${CA_CI_TSAN:-0}" == "1" ]]; then
    if rustup toolchain list 2>/dev/null | grep -q nightly; then
        echo "==> cargo test with ThreadSanitizer (ca-exec + ca-serve, opt-in)"
        TSAN_TARGET="$(rustc -vV | sed -n 's/^host: //p')"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std --target "$TSAN_TARGET" \
            -p ca-exec -p ca-serve --lib
    else
        echo "==> CA_CI_TSAN=1 but no nightly toolchain is installed; skipping" >&2
        exit 1
    fi
fi

# End-to-end profile gate: the instrumented flow must run, emit
# BENCH_profile.json, and that artifact must validate against schema
# ca-obs-profile/1 with counters from all seven instrumented crates
# (DESIGN.md §9).
echo "==> ca-bench profile --quick (flow profile + schema check)"
cargo run -q --release --offline -p ca-bench -- profile --quick
cargo run -q --release --offline -p ca-bench -- profile-check BENCH_profile.json

# Serve load gate: daemon load-gen over a Unix socket, closed loop for
# latency percentiles and an open loop that must shed with structured
# frames; fails hard unless every served model is byte-identical to the
# batch golden (DESIGN.md §13).
echo "==> ca-bench serve --quick (daemon load-gen + byte-identity)"
cargo run -q --release --offline -p ca-bench -- serve --quick

# Trace round-trip gate: a traced 2-shard campaign (real worker
# processes) plus one served request must stitch into a single Chrome
# trace_event JSON with every parent link resolved and the structural
# edges present — worker under shard_attempt, queue/service under the
# serve request (DESIGN.md §14). The command dies on any violation.
echo "==> ca-bench trace --quick (cross-process trace round-trip)"
cargo run -q --release --offline -p ca-bench -- trace --quick --out TRACE_campaign.json

# Trace overhead gate: tracing is opt-in but must stay cheap enough to
# leave on for a whole campaign. Compare the quick flow profile's
# wall-clock with tracing off vs on; fail if tracing costs >3%. One
# untraced warm-up first so both measured runs hit a warm store path.
echo "==> trace overhead (profile --quick, CA_TRACE on vs off, <3%)"
cargo run -q --release --offline -p ca-bench -- profile --quick >/dev/null
base_s=$( { time -p cargo run -q --release --offline -p ca-bench -- profile --quick >/dev/null; } 2>&1 | awk '/^real/{print $2}')
traced_s=$( { time -p env CA_TRACE=1 cargo run -q --release --offline -p ca-bench -- profile --quick >/dev/null; } 2>&1 | awk '/^real/{print $2}')
echo "    untraced ${base_s}s, traced ${traced_s}s"
awk -v base="$base_s" -v traced="$traced_s" 'BEGIN {
    # Sub-second quick runs jitter by scheduling noise; gate on the
    # ratio but always allow 50 ms of absolute slack.
    if (traced > base * 1.03 && traced - base > 0.05) {
        printf "trace overhead %.1f%% exceeds 3%%\n", (traced / base - 1) * 100
        exit 1
    }
}'

echo "==> OK"
