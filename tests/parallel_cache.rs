//! Memoized characterization must be indistinguishable from cold
//! characterization — bit for bit, cell by cell — on realistic corpora
//! that mix heavy structural duplication with outright damage.

use ca_core::{CharCache, PreparedCell};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::salt_library;
use ca_netlist::{generate_library, LibraryConfig, Technology};

/// A variant-heavy library: skew and VT flavors multiply every template
/// into families of sizing-only siblings, so the cache sees plenty of
/// hits; salting then damages a handful of cells in place.
fn salted_flavored_library() -> (ca_netlist::Library, usize) {
    let mut lib = generate_library(&LibraryConfig {
        skew_variants: true,
        vt_variants: vec![("LVT".into(), 0.9), ("HVT".into(), 1.1)],
        ..LibraryConfig::quick(Technology::C28)
    });
    lib.cells.truncate(60);
    let salted = salt_library(&mut lib, 7, 0xCA5A).len();
    (lib, salted)
}

/// Property: for every cell of a perturbed corpus — healthy or damaged —
/// the cached engine returns exactly what a cold run returns: identical
/// models on success, identical errors on failure.
#[test]
fn memoized_characterization_is_bit_identical_to_cold() {
    let (lib, salted) = salted_flavored_library();
    assert!(salted > 0);
    let options = GenerateOptions::default();
    let cache = CharCache::new();
    let mut outcomes = 0usize;
    for lc in &lib.cells {
        let cold = PreparedCell::characterize(lc.cell.clone(), options);
        let cached = cache.characterize(lc.cell.clone(), options);
        match (cold, cached) {
            (Ok(c), Ok(m)) => {
                assert_eq!(c.model, m.model, "{}: model differs", lc.cell.name());
                assert_eq!(
                    c.universe.len(),
                    m.universe.len(),
                    "{}: universe differs",
                    lc.cell.name()
                );
                outcomes += 1;
            }
            (Err(c), Err(m)) => {
                assert_eq!(
                    c.to_string(),
                    m.to_string(),
                    "{}: error differs",
                    lc.cell.name()
                );
            }
            (cold, cached) => panic!(
                "{}: cold {:?} vs cached {:?} disagree on success",
                lc.cell.name(),
                cold.map(|_| ()),
                cached.map(|_| ())
            ),
        }
    }
    assert!(outcomes > 10, "healthy cells must dominate: {outcomes}");
    let stats = cache.stats();
    assert!(
        stats.hits > 0,
        "flavor families must produce hits: {stats:?}"
    );
    assert_eq!(stats.rejected, 0, "no hash collisions expected: {stats:?}");
}

/// The same property under inter-transistor (net-short) universes, which
/// exercise the net-bijection remap path.
#[test]
fn memoized_inter_transistor_models_match_cold() {
    let mut lib = generate_library(&LibraryConfig {
        skew_variants: true,
        ..LibraryConfig::quick(Technology::C40)
    });
    lib.cells.truncate(24);
    let options = GenerateOptions {
        inter_transistor: true,
        ..GenerateOptions::default()
    };
    let cache = CharCache::new();
    for lc in &lib.cells {
        let cold = PreparedCell::characterize(lc.cell.clone(), options).unwrap();
        let cached = cache.characterize(lc.cell.clone(), options).unwrap();
        assert_eq!(cold.model, cached.model, "{}", lc.cell.name());
    }
    assert!(cache.stats().hits > 0, "{:?}", cache.stats());
}

/// Reusing one cache across repeated runs of the same library serves
/// every later run entirely from memory, still bit-identically.
#[test]
fn warm_cache_serves_a_whole_rerun_from_hits() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    lib.cells.truncate(20);
    let options = GenerateOptions::default();
    let cache = CharCache::new();
    let first: Vec<_> = lib
        .cells
        .iter()
        .map(|lc| cache.characterize(lc.cell.clone(), options).unwrap())
        .collect();
    let after_first = cache.stats();
    let second: Vec<_> = lib
        .cells
        .iter()
        .map(|lc| cache.characterize(lc.cell.clone(), options).unwrap())
        .collect();
    let after_second = cache.stats();
    assert_eq!(
        after_second.misses, after_first.misses,
        "rerun must not simulate: {after_second:?}"
    );
    assert_eq!(
        after_second.hits,
        after_first.hits + lib.cells.len(),
        "{after_second:?}"
    );
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.model, b.model, "{}", a.cell.name());
    }
}
