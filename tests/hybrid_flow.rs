//! Integration tests of the hybrid flow's end-to-end invariants.

use cell_aware::core::{
    CostModel, HybridFlow, HybridOptions, MlFlowParams, PreparedCell, Route, StructuralMatch,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

fn corpus(tech: Technology, take: usize) -> Vec<PreparedCell> {
    generate_library(&LibraryConfig::quick(tech))
        .cells
        .into_iter()
        .take(take)
        .map(|lc| PreparedCell::characterize(lc.cell, GenerateOptions::default()).expect("valid"))
        .collect()
}

#[test]
fn hybrid_models_match_conventional_for_simulated_routes() {
    let train = corpus(Technology::Soi28, 8);
    let mut hybrid = HybridFlow::new(
        &train,
        MlFlowParams::quick(),
        CostModel::paper_calibrated(),
        HybridOptions::default(),
    )
    .expect("trains");
    let eval: Vec<_> = generate_library(&LibraryConfig::quick(Technology::C28))
        .cells
        .into_iter()
        .take(10)
        .map(|lc| lc.cell)
        .collect();
    for cell in eval {
        let reference = cell_aware::core::conventional_flow(&cell, GenerateOptions::default());
        let (model, outcome) = hybrid.generate(cell).expect("valid");
        match outcome.route {
            Route::Simulated => {
                // The simulated route IS the conventional flow.
                assert_eq!(model, reference, "{}", outcome.name);
                assert!(outcome.time_s >= outcome.simulation_time_s);
            }
            Route::Ml(_) => {
                // The ML route must at least produce a structurally
                // compatible model and beat the simulation clock.
                assert_eq!(model.universe.len(), reference.universe.len());
                assert!(outcome.time_s < outcome.simulation_time_s);
                // And be reasonably accurate.
                let accuracy = reference.agreement(&model);
                assert!(accuracy > 0.80, "{}: {accuracy}", outcome.name);
            }
        }
    }
}

#[test]
fn reinforcement_converts_new_structures_to_known() {
    let train = corpus(Technology::Soi28, 6);
    let mut hybrid = HybridFlow::new(
        &train,
        MlFlowParams::quick(),
        CostModel::paper_calibrated(),
        HybridOptions::default(),
    )
    .expect("trains");
    // Find a C28 cell whose structure is new.
    let c28 = generate_library(&LibraryConfig::quick(Technology::C28));
    let newcomer = c28
        .cells
        .iter()
        .map(|lc| lc.cell.clone())
        .find(|cell| {
            let p = PreparedCell::prepare(cell.clone()).expect("valid");
            hybrid.index().classify(&p.canonical) == StructuralMatch::New
        })
        .expect("quick libraries differ somewhere");
    let (_, first) = hybrid.generate(newcomer.clone()).expect("valid");
    assert_eq!(first.route, Route::Simulated);
    // Processing the very same cell again must now route to ML.
    let (_, second) = hybrid.generate(newcomer).expect("valid");
    assert!(
        matches!(second.route, Route::Ml(StructuralMatch::Identical)),
        "got {:?}",
        second.route
    );
    assert!(second.time_s < first.time_s);
}

#[test]
fn report_totals_are_consistent() {
    let train = corpus(Technology::Soi28, 6);
    let mut hybrid = HybridFlow::new(
        &train,
        MlFlowParams::quick(),
        CostModel::paper_calibrated(),
        HybridOptions::default(),
    )
    .expect("trains");
    let eval: Vec<_> = generate_library(&LibraryConfig::quick(Technology::C40))
        .cells
        .into_iter()
        .take(8)
        .map(|lc| lc.cell)
        .collect();
    let n = eval.len();
    let (models, report) = hybrid.run(eval).expect("valid");
    assert_eq!(models.len(), n);
    let (a, b, c) = report.route_counts();
    assert_eq!(a + b + c, n);
    assert!(report.hybrid_time_s() <= report.conventional_time_s() + 1e-9);
    assert!((0.0..=1.0).contains(&report.reduction()));
    let per_cell: f64 = report.outcomes.iter().map(|o| o.time_s).sum();
    assert!((per_cell - report.hybrid_time_s()).abs() < 1e-9);
}
