//! End-to-end integration: synthesis -> simulation -> conventional CA
//! model generation, across the whole function catalog.

use cell_aware::core::conventional_flow;
use cell_aware::defects::{Behavior, GenerateOptions};
use cell_aware::netlist::library::{base_catalog, generate_library, LibraryConfig};
use cell_aware::netlist::synth::{synthesize, DriveStyle, NetlistStyle};
use cell_aware::netlist::{spice, writer, Technology};
use cell_aware::sim::{Simulator, Stimulus, Value};

/// Every catalog function's synthesized netlist computes its reference
/// Boolean function on all static patterns (golden switch-level sim).
#[test]
fn golden_simulation_matches_reference_function() {
    for template in base_catalog() {
        if template.plan.n_inputs > 4 {
            continue; // keep the exhaustive check fast
        }
        let s = synthesize(
            &template.name,
            &template.plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("catalog synthesizes");
        let sim = Simulator::new(&s.cell);
        let n = s.cell.num_inputs();
        let table = s.function.truth_table(n);
        for p in 0..(1u32 << n) {
            let out = sim.output(&Stimulus::static_pattern(n, p));
            assert_eq!(
                out,
                Value::from_bool(table[p as usize]),
                "{} pattern {p:0width$b}",
                template.name,
                width = n
            );
        }
    }
}

/// Dynamic (two-pattern) golden simulation is consistent with the static
/// truth table at both endpoints.
#[test]
fn dynamic_golden_simulation_consistent_with_static() {
    for template in base_catalog().into_iter().filter(|t| t.plan.n_inputs <= 3) {
        let s = synthesize(
            &template.name,
            &template.plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("catalog synthesizes");
        let sim = Simulator::new(&s.cell);
        let n = s.cell.num_inputs();
        let table = s.function.truth_table(n);
        for stim in Stimulus::all(n).iter().filter(|s| !s.is_static()) {
            let result = sim.run(stim);
            let expected = Value::from_bool(table[stim.final_pattern() as usize]);
            assert_eq!(
                result.final_value(s.cell.output()),
                expected,
                "{} {stim}",
                template.name
            );
        }
    }
}

/// The conventional flow produces sane models for an entire quick library:
/// high coverage, both static and dynamic classes, deterministic output.
#[test]
fn conventional_flow_on_full_quick_library() {
    let lib = generate_library(&LibraryConfig::quick(Technology::C40));
    assert!(!lib.is_empty());
    let mut dynamic_seen = false;
    for lc in &lib.cells {
        let model = conventional_flow(&lc.cell, GenerateOptions::default());
        assert_eq!(model.universe.len(), lc.cell.num_transistors() * 6);
        // Drive-1 cells are fully observable at switch level. Higher
        // drives have logically-redundant parallel fingers whose opens
        // are only delay faults (outside a timing-free model), so their
        // coverage is structurally lower — see DESIGN.md.
        let floor = if lc.drive == 1 { 0.85 } else { 0.40 };
        assert!(
            model.coverage() > floor,
            "{} coverage {}",
            lc.cell.name(),
            model.coverage()
        );
        dynamic_seen |= model
            .classes
            .iter()
            .any(|c| c.behavior == Behavior::Dynamic);
    }
    assert!(dynamic_seen, "stuck-open style defects must appear");
}

/// SPICE write -> parse -> write is idempotent for every generated cell
/// (net ids may be renumbered by the parser, the netlist text may not).
#[test]
fn library_round_trips_through_spice() {
    let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    for lc in &lib.cells {
        let text = writer::to_spice(&lc.cell);
        let parsed = spice::parse_cell(&text).expect("writer output parses");
        assert_eq!(
            writer::to_spice(&parsed),
            text,
            "{} not idempotent",
            lc.cell.name()
        );
        assert_eq!(parsed.num_transistors(), lc.cell.num_transistors());
        assert_eq!(parsed.num_inputs(), lc.cell.num_inputs());
    }
}

/// Models are invariant across repeated generation (determinism).
#[test]
fn conventional_flow_is_deterministic() {
    let lib = generate_library(&LibraryConfig::quick(Technology::C28));
    let cell = &lib.cells[0].cell;
    let a = conventional_flow(cell, GenerateOptions::default());
    let b = conventional_flow(cell, GenerateOptions::default());
    assert_eq!(a, b);
}
