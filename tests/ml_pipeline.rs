//! Integration of the ML pipeline: canonicalization across technologies,
//! grouped training, cross-technology prediction quality.

use cell_aware::core::{
    Activation, CanonicalCell, MlFlow, MlFlowParams, PreparedCell, StructureIndex,
};
use cell_aware::defects::GenerateOptions;
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

fn characterize_lib(tech: Technology) -> &'static Vec<(String, PreparedCell)> {
    use std::sync::OnceLock;
    // Characterizing a library is the expensive part of these tests; the
    // corpora are immutable, so build each one once per test binary.
    static SOI: OnceLock<Vec<(String, PreparedCell)>> = OnceLock::new();
    static C28: OnceLock<Vec<(String, PreparedCell)>> = OnceLock::new();
    static C40: OnceLock<Vec<(String, PreparedCell)>> = OnceLock::new();
    let slot = match tech {
        Technology::Soi28 => &SOI,
        Technology::C28 => &C28,
        Technology::C40 => &C40,
    };
    slot.get_or_init(|| {
        generate_library(&LibraryConfig::quick(tech))
            .cells
            .into_iter()
            .map(|lc| {
                let p = PreparedCell::characterize(lc.cell, GenerateOptions::default())
                    .expect("synthesized cells characterize");
                (lc.template, p)
            })
            .collect()
    })
}

/// Shared templates canonize to the same wiring hash in every technology,
/// despite different naming/order/sizing conventions.
#[test]
fn canonical_hashes_are_technology_independent() {
    let soi = characterize_lib(Technology::Soi28);
    let c28 = characterize_lib(Technology::C28);
    // Cell names are `<TECH>_<TEMPLATE>X<drive><variant>`; the part after
    // the first underscore identifies the exact structural variant.
    let variant = |name: &str| name.split_once('_').map(|(_, v)| v.to_string());
    let mut compared = 0;
    for (template, p_soi) in soi.iter() {
        let v_soi = variant(p_soi.cell.name());
        if let Some((_, p_c28)) = c28.iter().find(|(_, p)| variant(p.cell.name()) == v_soi) {
            assert_eq!(
                p_soi.canonical.wiring_hash(),
                p_c28.canonical.wiring_hash(),
                "template {template} variant {v_soi:?}"
            );
            compared += 1;
        }
    }
    assert!(compared >= 10, "only {compared} templates compared");
}

/// Cross-technology prediction: most shared-structure cells predict above
/// 95%, and the overall mean clears 90% (shape of Tables IV.b/IV.c).
#[test]
fn cross_technology_prediction_quality() {
    let soi: Vec<PreparedCell> = characterize_lib(Technology::Soi28)
        .iter()
        .map(|(_, p)| p.clone())
        .collect();
    let flow = MlFlow::train(&soi, MlFlowParams::quick()).expect("corpus non-empty");
    let index = StructureIndex::from_corpus(&soi);
    let c28 = characterize_lib(Technology::C28);
    let mut identical_accs = Vec::new();
    let mut all_accs = Vec::new();
    for (_, prepared) in c28.iter() {
        if !flow.covers(prepared) {
            continue;
        }
        let predicted = flow.predict(prepared).expect("covered");
        let acc = prepared.accuracy_of(&predicted);
        all_accs.push(acc);
        if index.classify(&prepared.canonical) == cell_aware::core::StructuralMatch::Identical {
            identical_accs.push(acc);
        }
    }
    assert!(all_accs.len() >= 20, "evaluated {}", all_accs.len());
    let mean = all_accs.iter().sum::<f64>() / all_accs.len() as f64;
    assert!(mean > 0.90, "mean cross-tech accuracy {mean}");
    // Identical-structure cells predict better than the population —
    // the §V.B correlation.
    let id_mean = identical_accs.iter().sum::<f64>() / identical_accs.len().max(1) as f64;
    assert!(
        id_mean >= mean - 1e-9,
        "identical {id_mean} should be >= population {mean}"
    );
}

/// The canonical builder works on every generated cell of all three
/// technologies, and positions form a permutation.
#[test]
fn canonicalization_covers_all_technologies() {
    for tech in Technology::ALL {
        let lib = generate_library(&LibraryConfig::quick(tech));
        for lc in &lib.cells {
            let activation = Activation::extract(&lc.cell).expect("valid");
            let canonical = CanonicalCell::build(&lc.cell, &activation).expect("canonizable");
            assert_eq!(canonical.order().len(), lc.cell.num_transistors());
        }
    }
}
