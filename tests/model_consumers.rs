//! Integration: downstream consumers (pattern selection, diagnosis, CAM
//! persistence) work identically on simulated and ML-predicted models.

use cell_aware::core::{MlFlow, MlFlowParams, PreparedCell};
use cell_aware::defects::{
    diagnose, from_cam, select_patterns, to_cam, GenerateOptions, Observation,
};
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

fn characterized(tech: Technology, take: usize) -> Vec<PreparedCell> {
    generate_library(&LibraryConfig::quick(tech))
        .cells
        .into_iter()
        .take(take)
        .map(|lc| PreparedCell::characterize(lc.cell, GenerateOptions::default()).expect("valid"))
        .collect()
}

#[test]
fn predicted_models_feed_pattern_selection() {
    let corpus = characterized(Technology::Soi28, 10);
    let flow = MlFlow::train(&corpus, MlFlowParams::quick()).expect("trains");
    let target = &corpus[1];
    let predicted = flow.predict(target).expect("covered");
    let truth = target.model.as_ref().expect("characterized");
    let set_predicted = select_patterns(&predicted);
    let set_truth = select_patterns(truth);
    // Both cover their own detectable classes completely...
    assert!((set_predicted.class_coverage() - 1.0).abs() < 1e-12);
    assert!((set_truth.class_coverage() - 1.0).abs() < 1e-12);
    // ...and when the prediction is accurate, the predicted pattern set
    // achieves high real coverage: apply it against the truth model.
    let covered = truth
        .classes
        .iter()
        .filter(|c| set_predicted.selected.iter().any(|&s| c.row.get(s)))
        .count();
    let detectable = truth
        .classes
        .iter()
        .filter(|c| c.behavior != cell_aware::defects::Behavior::Undetectable)
        .count();
    assert!(
        covered as f64 >= 0.8 * detectable as f64,
        "covered {covered}/{detectable}"
    );
}

#[test]
fn predicted_models_support_diagnosis() {
    let corpus = characterized(Technology::Soi28, 10);
    let flow = MlFlow::train(&corpus, MlFlowParams::quick()).expect("trains");
    let target = &corpus[2];
    let predicted = flow.predict(target).expect("covered");
    // Simulate a failing die using the TRUTH model, diagnose with the
    // PREDICTED model.
    let truth = target.model.as_ref().expect("characterized");
    let class = truth
        .classes
        .iter()
        .position(|c| c.behavior != cell_aware::defects::Behavior::Undetectable)
        .expect("detectable class exists");
    let all: Vec<usize> = (0..truth.stimuli().len()).collect();
    let signature: Vec<Observation> = all
        .iter()
        .map(|&s| Observation {
            stimulus: s,
            failed: truth.classes[class].row.get(s),
        })
        .collect();
    let candidates = diagnose(&predicted, &signature);
    assert!(
        !candidates.is_empty(),
        "an accurate predicted model explains the signature"
    );
}

#[test]
fn cam_persistence_preserves_predicted_models() {
    let corpus = characterized(Technology::Soi28, 6);
    let flow = MlFlow::train(&corpus, MlFlowParams::quick()).expect("trains");
    let target = &corpus[0];
    let predicted = flow.predict(target).expect("covered");
    let text = to_cam(&predicted);
    let reloaded = from_cam(&text, &target.cell).expect("round-trips");
    assert_eq!(predicted, reloaded);
    // Predicted models record zero simulation effort.
    assert_eq!(reloaded.defect_simulations, 0);
}
