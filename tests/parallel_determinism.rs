//! The parallel engine must be a pure performance optimization: every
//! observable output — prepared-cell order, quarantine diagnoses,
//! exported `.cam` bytes — is identical at every thread count.

use ca_core::{
    characterize_library_robust_with, characterize_library_with, export_cam, CharCache, Executor,
    FaultPolicy, RobustOutcome,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::salt_library;
use ca_netlist::{generate_library, Library, LibraryConfig, Technology};
use ca_sim::SimBudget;

fn salted_library() -> Library {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
    lib.cells.truncate(24);
    let salted = salt_library(&mut lib, 5, 7);
    assert_eq!(salted.len(), 5);
    lib
}

fn robust_run(lib: &Library, threads: usize) -> RobustOutcome {
    characterize_library_robust_with(
        lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(threads),
        &CharCache::new(),
    )
    .unwrap()
}

#[test]
fn robust_runs_are_identical_across_thread_counts() {
    let lib = salted_library();
    let serial = robust_run(&lib, 1);
    let parallel = robust_run(&lib, 8);

    // Same prepared cells, in library order.
    let serial_names: Vec<&str> = serial.prepared.iter().map(|p| p.cell.name()).collect();
    let parallel_names: Vec<&str> = parallel.prepared.iter().map(|p| p.cell.name()).collect();
    assert_eq!(serial_names, parallel_names);

    // Same quarantine diagnoses (elapsed times legitimately differ).
    let diagnose = |o: &RobustOutcome| -> Vec<(String, String, String, u32)> {
        o.quarantine
            .entries
            .iter()
            .map(|e| {
                (
                    e.cell.clone(),
                    e.phase.to_string(),
                    e.reason.clone(),
                    e.retries,
                )
            })
            .collect()
    };
    assert_eq!(diagnose(&serial), diagnose(&parallel));
    assert!(!serial.quarantine.is_empty(), "salting must quarantine");
    assert_eq!(
        serial.prepared.len() + serial.quarantine.len(),
        lib.len(),
        "robust invariant"
    );

    // Same exported model bytes.
    assert_eq!(export_cam(&serial.prepared), export_cam(&parallel.prepared));
}

#[test]
fn retry_policy_is_identical_across_thread_counts() {
    let lib = salted_library();
    let budget = SimBudget {
        max_defects: Some(6),
        ..SimBudget::unlimited()
    };
    let run = |threads| {
        characterize_library_robust_with(
            &lib,
            GenerateOptions::default(),
            &budget,
            FaultPolicy::RetryWithReducedBudget(2),
            &Executor::with_threads(threads),
            &CharCache::new(),
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.degraded_count(), parallel.degraded_count());
    assert_eq!(serial.quarantine.len(), parallel.quarantine.len());
    for (a, b) in serial.prepared.iter().zip(&parallel.prepared) {
        assert_eq!(a.cell.name(), b.cell.name());
        assert_eq!(a.model, b.model, "{}", a.cell.name());
    }
}

#[test]
fn plain_characterization_is_identical_across_thread_counts() {
    let lib = {
        let mut lib = generate_library(&LibraryConfig {
            skew_variants: true,
            ..LibraryConfig::quick(Technology::C40)
        });
        lib.cells.truncate(30);
        lib
    };
    let options = GenerateOptions::default();
    let run = |threads| {
        characterize_library_with(
            &lib,
            options,
            &Executor::with_threads(threads),
            &CharCache::new(),
        )
        .unwrap()
    };
    let (serial, serial_summary) = run(1);
    let (parallel, parallel_summary) = run(8);
    assert_eq!(serial_summary, parallel_summary);
    assert_eq!(export_cam(&serial), export_cam(&parallel));
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.cell.name(), b.cell.name());
        assert_eq!(a.model, b.model);
    }
}

#[test]
fn fail_fast_reports_the_first_failure_at_any_thread_count() {
    let lib = salted_library();
    let first_bad = {
        let outcome = robust_run(&lib, 1);
        outcome.quarantine.entries[0].cell.clone()
    };
    for threads in [1, 8] {
        let err = characterize_library_robust_with(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::FailFast,
            &Executor::with_threads(threads),
            &CharCache::new(),
        )
        .unwrap_err();
        assert!(
            err.to_string().contains(&first_bad),
            "threads={threads}: `{err}` should name `{first_bad}`"
        );
    }
}
