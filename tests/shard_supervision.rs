//! Supervision harness: real worker processes, real crashes.
//!
//! The campaign re-spawns this test binary as its worker executable
//! (`shard_worker_entry`, inert without the `CA_SHARD_*` environment).
//! Crash-injection hooks make a worker abort mid-journal (a real
//! SIGABRT, no destructors), hang (heartbeat silence → supervisor
//! SIGKILL) or fail with an exit code, scoped to one shard and an
//! attempt ceiling so retries then succeed. Every scenario must
//! converge to the unsharded single-process golden projection; a shard
//! that keeps failing must quarantine its cells without failing the
//! campaign.
//!
//! The hook environment is process-global and inherited by every
//! spawned worker, so all campaign tests serialize on [`env_lock`].

use ca_core::{
    characterize_library_robust_with_session, export_cam_with, CharCache, Executor, FaultPolicy,
    Quarantine, RobustOutcome, Session,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::{corrupt_cell, Corruption};
use ca_netlist::library::{generate_library, Library, LibraryConfig};
use ca_netlist::Technology;
use ca_shard::spec::{ENV_HALT, ENV_TEST_FAIL, ENV_TEST_HANG};
use ca_shard::supervisor::{
    run_campaign, AttemptOutcome, CampaignConfig, CampaignOutcome, ShardStatus, Spawner,
};
use ca_shard::{shard_of, ShardPlan};
use ca_sim::SimBudget;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

const SHARDS: usize = 3;

/// WORKER ENTRY POINT — inert unless spawned by a supervisor with the
/// `CA_SHARD_*` environment set.
#[test]
fn shard_worker_entry() {
    if let Some(code) = ca_shard::worker::run_from_env() {
        std::process::exit(code);
    }
}

/// Serializes campaign tests: hook env vars leak into every spawned
/// worker, so only one campaign may run at a time in this binary.
fn env_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII hook setter: removes the variable again even on panic.
struct Hook(&'static str);
impl Hook {
    fn set(name: &'static str, value: String) -> Hook {
        std::env::set_var(name, value);
        Hook(name)
    }
}
impl Drop for Hook {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

/// Same library as the crash-recovery harness: small, with one broken
/// cell so quarantine verdicts are part of the converged state.
fn campaign_library() -> Library {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(8);
    lib.cells[2].cell = corrupt_cell(&lib.cells[2].cell, Corruption::FloatingOutput, 3)
        .expect("corruption applies");
    lib
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-shard-sup-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config() -> CampaignConfig {
    let mut config = CampaignConfig::new(SHARDS);
    config.max_attempts = 3;
    config.backoff = ca_obs::Backoff::none();
    config.heartbeat_interval = Duration::from_millis(25);
    config.heartbeat_timeout = Duration::from_secs(60);
    config
}

/// The worker spawner: this test binary, re-invoked so that only
/// `shard_worker_entry` runs (and only acts when the spec env is set).
fn worker_spawner() -> Spawner {
    Spawner::Process {
        program: std::env::current_exe().expect("own test binary"),
        args: vec![
            "shard_worker_entry".into(),
            "--exact".into(),
            "--test-threads=1".into(),
        ],
    }
}

fn golden(lib: &Library, policy: FaultPolicy, dir: &Path) -> RobustOutcome {
    characterize_library_robust_with_session(
        lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        policy,
        &Executor::from_env(),
        &CharCache::new(),
        &Session::open(dir.join("golden.caj")).expect("open golden session"),
    )
    .expect("quarantining policies never error")
}

type CamBytes = Vec<(String, String)>;
type QuarantineKeys = Vec<(String, String, String, u32)>;

fn projection(outcome: &RobustOutcome) -> (CamBytes, QuarantineKeys) {
    (
        export_cam_with(&outcome.prepared, true),
        quarantine_keys(&outcome.quarantine),
    )
}

fn quarantine_keys(q: &Quarantine) -> QuarantineKeys {
    q.entries
        .iter()
        .map(|e| {
            (
                e.cell.clone(),
                e.phase.to_string(),
                e.reason.clone(),
                e.retries,
            )
        })
        .collect()
}

/// The shard with the most cells under the test partition — crash
/// hooks need a victim with enough journal appends to interrupt.
fn victim_shard(lib: &Library) -> usize {
    let plan = ShardPlan::partition(lib, SHARDS);
    (0..SHARDS)
        .max_by_key(|&i| plan.shards[i].len())
        .expect("some shard is populated")
}

/// The supervision record of shard `index` (the report only lists
/// populated shards, so position and index need not coincide).
fn shard_report(campaign: &CampaignOutcome, index: usize) -> &ca_shard::supervisor::ShardReport {
    campaign
        .report
        .shards
        .iter()
        .find(|s| s.index == index)
        .expect("victim shard is populated")
}

fn run(lib: &Library, config: &CampaignConfig, spawner: &Spawner, tag: &str) -> CampaignOutcome {
    let dir = scratch_dir(tag);
    run_campaign(lib, config, spawner, &dir.join("campaign")).expect("campaign runs")
}

#[test]
fn healthy_campaign_converges_to_unsharded_golden() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("healthy");
    let golden = golden(&lib, FaultPolicy::SkipAndReport, &dir);

    let campaign = run(&lib, &config(), &worker_spawner(), "healthy");
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    assert!(campaign.skipped_cells.is_empty());
    assert_eq!(campaign.report.retries, 0, "{}", campaign.report.render());
    assert_eq!(campaign.report.quarantined_shards, 0);
    // Every cell's record (quarantine verdict included) is in the
    // merged store.
    assert_eq!(campaign.report.merge.merged_records, lib.cells.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn worker_crashed_mid_journal_is_retried_and_converges() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("crash");
    let golden = golden(&lib, FaultPolicy::SkipAndReport, &dir);
    let victim = victim_shard(&lib);

    for halt in [1usize, 2] {
        // The victim's worker aborts after `halt` journal appends on
        // attempt 1 (a real SIGABRT — fsynced records survive, nothing
        // else does); the hook expires and attempt 2 resumes.
        let _hook = Hook::set(ENV_HALT, format!("{victim}:{halt}@1"));
        let campaign = run(&lib, &config(), &worker_spawner(), &format!("crash-{halt}"));
        assert_eq!(
            projection(&campaign.outcome),
            projection(&golden),
            "halt={halt} must converge"
        );
        assert!(campaign.skipped_cells.is_empty());
        assert!(campaign.report.retries >= 1, "{}", campaign.report.render());
        let victim_report = shard_report(&campaign, victim);
        assert!(
            victim_report
                .attempts
                .iter()
                .any(|a| matches!(a, AttemptOutcome::Killed)),
            "crash must surface as a signal death: {victim_report:?}"
        );
        assert_eq!(victim_report.status, ShardStatus::Completed);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hung_worker_is_killed_on_heartbeat_timeout_and_retried() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("hang");
    let golden = golden(&lib, FaultPolicy::SkipAndReport, &dir);
    let victim = victim_shard(&lib);

    let mut config = config();
    config.heartbeat_timeout = Duration::from_millis(400);
    let _hook = Hook::set(ENV_TEST_HANG, format!("{victim}:0@1"));
    let campaign = run(&lib, &config, &worker_spawner(), "hang");
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    assert!(
        campaign.report.heartbeat_timeouts >= 1,
        "{}",
        campaign.report.render()
    );
    assert!(shard_report(&campaign, victim)
        .attempts
        .iter()
        .any(|a| matches!(a, AttemptOutcome::HeartbeatTimeout)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistently_failing_shard_quarantines_without_failing_the_campaign() {
    let _guard = env_lock();
    let lib = campaign_library();
    let victim = victim_shard(&lib);

    let mut config = config();
    config.max_attempts = 2;
    // The hook never expires: the shard fails every attempt.
    let _hook = Hook::set(ENV_TEST_FAIL, format!("{victim}:7@99"));
    let campaign = run(&lib, &config, &worker_spawner(), "quarantine");

    let victim_report = shard_report(&campaign, victim);
    assert_eq!(victim_report.status, ShardStatus::Quarantined);
    assert_eq!(
        victim_report.attempts,
        vec![AttemptOutcome::ExitCode(7), AttemptOutcome::ExitCode(7)]
    );
    assert_eq!(campaign.report.quarantined_shards, 1);
    // Exactly the victim shard's cells are skipped, in library order.
    let expect_skipped: Vec<String> = lib
        .cells
        .iter()
        .filter(|lc| shard_of(lc.cell.name(), SHARDS) == victim)
        .map(|lc| lc.cell.name().to_string())
        .collect();
    assert!(!expect_skipped.is_empty());
    assert_eq!(campaign.skipped_cells, expect_skipped);

    // The rest of the library still matches the golden run restricted
    // to the surviving cells.
    let dir = scratch_dir("quarantine-golden");
    let mut rest = lib.clone();
    rest.cells
        .retain(|lc| shard_of(lc.cell.name(), SHARDS) != victim);
    let golden = golden(&rest, FaultPolicy::SkipAndReport, &dir);
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spawn_failure_degrades_to_in_process_and_converges() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("nospawn");
    let golden = golden(&lib, FaultPolicy::SkipAndReport, &dir);

    let spawner = Spawner::Process {
        program: PathBuf::from("/nonexistent/ca-shard-worker"),
        args: Vec::new(),
    };
    let campaign = run(&lib, &config(), &spawner, "nospawn");
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    assert!(
        campaign.report.spawn_failures >= 1,
        "{}",
        campaign.report.render()
    );
    assert!(campaign.report.shards.iter().any(|s| s.degraded()));
    assert_eq!(campaign.report.quarantined_shards, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn explicit_in_process_spawner_converges() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("inproc");
    let golden = golden(&lib, FaultPolicy::SkipAndReport, &dir);

    let campaign = run(&lib, &config(), &Spawner::InProcess, "inproc");
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    assert!(campaign.skipped_cells.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}

/// `final_attempt_retries` makes the last attempt run under
/// `RetryWithReducedBudget`; with `max_attempts = 1` every attempt is
/// final, so the whole campaign must equal the unsharded golden run
/// under that policy (quarantine verdicts carry the retry count).
#[test]
fn final_attempt_budget_degradation_matches_reduced_budget_golden() {
    let _guard = env_lock();
    let lib = campaign_library();
    let dir = scratch_dir("reduced");
    let golden = golden(&lib, FaultPolicy::RetryWithReducedBudget(1), &dir);

    let mut config = config();
    config.max_attempts = 1;
    config.final_attempt_retries = Some(1);
    // Final pass still replays the workers' journaled verdicts; only
    // never-journaled cells would see this policy.
    config.retry_policy = FaultPolicy::RetryWithReducedBudget(1);
    let campaign = run(&lib, &config, &worker_spawner(), "reduced");
    assert_eq!(projection(&campaign.outcome), projection(&golden));
    let _ = std::fs::remove_dir_all(&dir);
}
