//! Crash/corruption-injection harness for durable characterization
//! sessions.
//!
//! The headline test re-spawns this test binary as a child process,
//! points it at a session store, and tells the [`ca_core::Session`] to
//! freeze after the N-th journal append (printing `CA-SESSION-HALT N`).
//! The parent SIGKILLs the frozen child — a real crash, no destructors —
//! then resumes the run in-process against the same store and proves it
//! converges to the uninterrupted run's `.cam` bytes and quarantine
//! verdicts, at 1 and 4 threads and several kill points.
//!
//! The corruption tests damage the store file directly (truncation,
//! bit-flips, garbage appends) with [`ca_store::corrupt`] and prove the
//! recovery path reports the damage, never serves it, and still converges.

use ca_core::{
    characterize_library_robust_with, characterize_library_robust_with_session, export_cam_with,
    CharCache, Executor, FaultPolicy, Quarantine, RobustOutcome, Session,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::{corrupt_cell, salt_library, Corruption};
use ca_netlist::library::{generate_library, Library, LibraryConfig};
use ca_netlist::Technology;
use ca_sim::SimBudget;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Env vars of the parent→child protocol. The child test is a no-op
/// unless `STORE_ENV` is set, so it stays inert in normal suite runs.
const STORE_ENV: &str = "CA_CRASH_STORE";
const HALT_ENV: &str = "CA_CRASH_HALT";
/// Store path for the `profile_child` fingerprint protocol.
const PROFILE_STORE_ENV: &str = "CA_PROFILE_STORE";

/// The library every run (parent, child, reference) characterizes: small
/// enough to be quick, with one deliberately broken cell so quarantine
/// records are part of what must survive the crash.
fn crash_library() -> Library {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(8);
    lib.cells[2].cell = corrupt_cell(&lib.cells[2].cell, Corruption::FloatingOutput, 3)
        .expect("corruption applies");
    lib
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-crash-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs the robust session flow with a fresh cache.
fn run_session(lib: &Library, threads: usize, session: &Session) -> RobustOutcome {
    characterize_library_robust_with_session(
        lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(threads),
        &CharCache::new(),
        session,
    )
    .expect("SkipAndReport never errors")
}

/// The comparable projection of an outcome: `.cam` file bytes (degraded
/// included) and quarantine verdicts minus the elapsed-time field.
type CamBytes = Vec<(String, String)>;
type QuarantineKeys = Vec<(String, String, String, u32)>;

fn projection(outcome: &RobustOutcome) -> (CamBytes, QuarantineKeys) {
    (
        export_cam_with(&outcome.prepared, true),
        quarantine_keys(&outcome.quarantine),
    )
}

fn quarantine_keys(q: &Quarantine) -> QuarantineKeys {
    q.entries
        .iter()
        .map(|e| {
            (
                e.cell.clone(),
                e.phase.to_string(),
                e.reason.clone(),
                e.retries,
            )
        })
        .collect()
}

/// CHILD ENTRY POINT — inert unless spawned by the harness with the
/// protocol env vars set. Runs the session flow against the given store,
/// frozen (and then SIGKILLed by the parent) after `CA_CRASH_HALT`
/// journal appends.
#[test]
fn crash_child() {
    let Ok(store) = std::env::var(STORE_ENV) else {
        return;
    };
    let halt: usize = std::env::var(HALT_ENV)
        .expect("harness sets halt point")
        .parse()
        .expect("halt point is a number");
    let lib = crash_library();
    let session = Session::open(&store).expect("child opens store");
    session.halt_after_journal(halt);
    // Thread count comes from CA_THREADS via the executor's env path.
    let outcome = characterize_library_robust_with_session(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::from_env(),
        &CharCache::new(),
        &session,
    );
    // Reaching here means the halt point exceeded the fresh work — the
    // harness only asks for halts below the library size, so this is a
    // protocol bug worth failing loudly over.
    panic!("child was expected to freeze before finishing: {outcome:?}");
}

/// CHILD ENTRY POINT — inert unless spawned with `CA_PROFILE_STORE`.
/// Runs the session flow wrapped in a [`ca_obs::FlowProfile`] stage and
/// prints the outcome-counter fingerprint between markers. It runs in
/// its own process because stage deltas snapshot the process-global
/// metric registry: sibling tests of this binary would otherwise leak
/// their counts into the stage and poison the byte comparison.
#[test]
fn profile_child() {
    let Ok(store) = std::env::var(PROFILE_STORE_ENV) else {
        return;
    };
    let threads: usize = std::env::var("CA_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let lib = crash_library();
    let session = Session::open(&store).expect("child opens store");
    let mut fp = ca_obs::FlowProfile::new("crash-harness", threads);
    fp.stage("characterize", || run_session(&lib, threads, &session));
    println!("CA-OBS-FPR-BEGIN");
    print!("{}", fp.outcome_fingerprint());
    println!("CA-OBS-FPR-END");
}

/// Spawns `profile_child` against `store` and returns the fingerprint
/// it prints.
fn profile_fingerprint(store: &Path, threads: usize) -> String {
    let exe = std::env::current_exe().expect("own test binary");
    let output = Command::new(exe)
        .args([
            "profile_child",
            "--exact",
            "--test-threads=1",
            "--nocapture",
        ])
        .env(PROFILE_STORE_ENV, store)
        .env("CA_THREADS", threads.to_string())
        .stderr(Stdio::null())
        .output()
        .expect("run profile child");
    assert!(output.status.success(), "profile child must pass");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let begin = stdout
        .find("CA-OBS-FPR-BEGIN")
        .expect("fingerprint begin marker")
        + "CA-OBS-FPR-BEGIN".len();
    let end = stdout
        .find("CA-OBS-FPR-END")
        .expect("fingerprint end marker");
    stdout[begin..end]
        .trim_start_matches(['\r', '\n'])
        .to_string()
}

/// Spawns this test binary as a crash child and returns it plus its
/// stdout reader.
fn spawn_child(
    store: &Path,
    halt: usize,
    threads: usize,
) -> (Child, BufReader<impl std::io::Read>) {
    let exe = std::env::current_exe().expect("own test binary");
    let mut child = Command::new(exe)
        .args(["crash_child", "--exact", "--test-threads=1", "--nocapture"])
        .env(STORE_ENV, store)
        .env(HALT_ENV, halt.to_string())
        .env("CA_THREADS", threads.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn crash child");
    let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    (child, reader)
}

/// Reads the child's stdout until the halt marker, with a watchdog so a
/// misbehaving child can never hang CI.
fn await_halt_marker(reader: BufReader<impl std::io::Read + Send + 'static>, halt: usize) {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            // Under `--nocapture` the marker shares a line with libtest's
            // un-terminated `test crash_child ... ` prefix, so search by
            // substring, not prefix.
            if let Some(at) = line.find("CA-SESSION-HALT") {
                let _ = tx.send(line[at..].to_string());
                return;
            }
        }
        // Dropping tx makes the recv below fail fast on child death.
    });
    let marker = rx
        .recv_timeout(Duration::from_secs(120))
        .expect("child must reach its halt point");
    assert_eq!(marker, format!("CA-SESSION-HALT {halt}"));
}

fn kill_and_reap(mut child: Child) {
    // On unix `kill` is SIGKILL: the frozen child dies mid-run with no
    // destructors, exactly like a crashed or OOM-killed batch.
    child.kill().expect("kill crash child");
    let _ = child.wait();
}

fn crash_resume_converges(threads: usize) {
    let lib = crash_library();
    let dir = scratch_dir(&format!("kill-t{threads}"));

    // Uninterrupted reference: session flow on a fresh store, plus the
    // session-less driver to pin down that sessions never perturb output.
    let ref_store = dir.join("reference.caj");
    let reference = run_session(&lib, threads, &Session::open(&ref_store).expect("open"));
    let plain = characterize_library_robust_with(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(threads),
        &CharCache::new(),
    )
    .expect("SkipAndReport never errors");
    assert_eq!(projection(&reference), projection(&plain));

    for halt in [1, 3] {
        let store = dir.join(format!("killed-at-{halt}.caj"));
        let (child, reader) = spawn_child(&store, halt, threads);
        await_halt_marker(reader, halt);
        kill_and_reap(child);

        // Resume against the orphaned store. Exactly `halt` records were
        // durable when the child died (the halt freezes while *holding*
        // the store lock, so no later append can slip in).
        let session = Session::open(&store).expect("reopen after SIGKILL");
        assert!(
            session.recovery().is_clean(),
            "fsynced appends must survive SIGKILL intact: {}",
            session.recovery().render()
        );
        assert_eq!(session.len(), halt);
        let resumed = run_session(&lib, threads, &session);
        assert_eq!(
            projection(&resumed),
            projection(&reference),
            "resume at halt={halt}, threads={threads} must converge"
        );
        let report = session.report();
        assert_eq!(
            report.reused_complete + report.reused_degraded + report.reused_quarantined,
            halt,
            "every durable record must be reused: {}",
            report.render()
        );
        assert_eq!(report.evicted_stale + report.evicted_invalid, 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_run_resumes_to_identical_outputs_single_thread() {
    crash_resume_converges(1);
}

#[test]
fn sigkilled_run_resumes_to_identical_outputs_four_threads() {
    crash_resume_converges(4);
}

/// DESIGN.md §9: `outcome`-class counters must survive a crash-resume
/// cycle byte-identically — a replayed quarantine verdict or a
/// store-served model counts exactly like the fresh work it replaces.
/// (`work`-class counters legitimately shrink on resume: doing less
/// simulation is the whole point of the session store.)
#[test]
fn outcome_counters_survive_crash_resume() {
    let dir = scratch_dir("fingerprint");

    // Uninterrupted reference run in a pristine child process.
    let reference = profile_fingerprint(&dir.join("reference.caj"), 2);
    for needle in [
        "[characterize]",
        "ca_core.flow.cells=8",
        "ca_core.flow.quarantined=1",
        "ca_core.flow.models_complete",
    ] {
        assert!(
            reference.contains(needle),
            "reference fingerprint must mention {needle}:\n{reference}"
        );
    }

    // Crash a second run mid-journal, then resume it on the orphaned
    // store; the resumed run's outcome counters must match the
    // uninterrupted reference's exactly.
    let store = dir.join("killed.caj");
    let (child, reader) = spawn_child(&store, 3, 2);
    await_halt_marker(reader, 3);
    kill_and_reap(child);
    let resumed = profile_fingerprint(&store, 2);
    assert_eq!(
        reference, resumed,
        "outcome counters must be byte-identical across crash-resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Store-corruptor sweep: after a complete run, damage the store file in
/// every supported way; reopening must report the damage (except for the
/// pure tail-truncation, which is indistinguishable from a clean shorter
/// log) and a re-run must converge without ever serving corrupt bytes.
#[test]
fn corrupted_store_recovers_and_converges() {
    let lib = crash_library();
    let dir = scratch_dir("corrupt");
    let reference = {
        let store = dir.join("reference.caj");
        run_session(&lib, 2, &Session::open(&store).expect("open"))
    };

    let pristine = {
        let store = dir.join("pristine.caj");
        run_session(&lib, 2, &Session::open(&store).expect("open"));
        std::fs::read(&store).expect("read pristine store")
    };
    assert!(pristine.len() > 64, "store must hold real records");

    enum Damage {
        Truncate(u64),
        BitFlip(u64),
        Garbage,
    }
    let cases: Vec<(&str, Damage)> = vec![
        // Mid-frame truncation: torn final record.
        ("truncate-mid", Damage::Truncate(pristine.len() as u64 - 7)),
        // Torn frame header right after the magic.
        ("truncate-head", Damage::Truncate(11)),
        // Bit-flip in the middle of some record's payload.
        ("bitflip-mid", Damage::BitFlip(pristine.len() as u64 / 2)),
        // Bit-flip inside the file magic.
        ("bitflip-magic", Damage::BitFlip(3)),
        // Garbage appended after the last valid frame.
        ("garbage-tail", Damage::Garbage),
    ];

    for (tag, damage) in cases {
        let store = dir.join(format!("{tag}.caj"));
        std::fs::write(&store, &pristine).expect("plant pristine copy");
        let expect_report = match damage {
            Damage::Truncate(at) => {
                ca_store::corrupt::truncate_at(&store, at).expect("truncate");
                // Chopping below the header leaves a torn frame; chopping
                // into the header itself is also always reported.
                true
            }
            Damage::BitFlip(offset) => {
                ca_store::corrupt::bit_flip(&store, offset, 5).expect("bit flip");
                true
            }
            Damage::Garbage => {
                ca_store::corrupt::garbage_append(&store, 0xDA_7A, 33).expect("garbage");
                true
            }
        };
        let session = Session::open(&store).expect("open damaged store");
        assert_eq!(
            !session.recovery().is_clean(),
            expect_report,
            "{tag}: {}",
            session.recovery().render()
        );
        let resumed = run_session(&lib, 2, &session);
        assert_eq!(
            projection(&resumed),
            projection(&reference),
            "{tag}: recovery must converge"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Editing the library between runs must evict exactly the affected
/// records: the salted cells are re-diagnosed against their *new*
/// netlists while untouched cells still resume from the store.
#[test]
fn edited_library_evicts_stale_records_and_reconverges() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(8);
    let dir = scratch_dir("salted");
    let store = dir.join("store.caj");

    let first = run_session(&lib, 2, &Session::open(&store).expect("open"));
    assert!(first.quarantine.is_empty(), "clean library to start");

    // Salt the library in place: those cells' netlists (and canonical
    // hashes / fingerprints) no longer match their journaled records.
    let salted = salt_library(&mut lib, 3, 41);
    assert_eq!(salted.len(), 3);

    let session = Session::open(&store).expect("reopen");
    let resumed = run_session(&lib, 2, &session);
    let report = session.report();
    assert_eq!(
        report.evicted_stale,
        salted.len(),
        "each salted cell must be evicted: {}",
        report.render()
    );
    assert_eq!(report.reused_complete, lib.cells.len() - salted.len());

    // The resumed run on the edited library must match a from-scratch
    // run on it — stale models must never leak through.
    let scratch = characterize_library_robust_with(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(2),
        &CharCache::new(),
    )
    .expect("SkipAndReport never errors");
    assert_eq!(projection(&resumed), projection(&scratch));
    for s in &salted {
        let diagnosed = resumed.quarantine.entry(&s.cell).is_some()
            || resumed
                .prepared
                .iter()
                .any(|p| p.cell.name() == s.cell && p.model.is_some());
        assert!(diagnosed, "salted cell {} must be re-diagnosed", s.cell);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degraded models journal and resume too — served back to their own
/// cell, byte-identical, without re-simulation, and still flagged
/// degraded (the never-a-donor rule holds on the resume path).
#[test]
fn degraded_models_resume_byte_identical() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(5);
    let dir = scratch_dir("degraded");
    let store = dir.join("store.caj");
    let budget = SimBudget {
        max_defects: Some(4),
        ..SimBudget::unlimited()
    };
    let run = |session: &Session| {
        characterize_library_robust_with_session(
            &lib,
            GenerateOptions::default(),
            &budget,
            FaultPolicy::SkipAndReport,
            &Executor::with_threads(2),
            &CharCache::new(),
            session,
        )
        .expect("SkipAndReport never errors")
    };
    let first = run(&Session::open(&store).expect("open"));
    assert_eq!(first.degraded_count(), lib.cells.len());

    let session = Session::open(&store).expect("reopen");
    let resumed = run(&session);
    assert_eq!(resumed.degraded_count(), lib.cells.len());
    let report = session.report();
    assert_eq!(
        report.reused_degraded,
        lib.cells.len(),
        "{}",
        report.render()
    );
    for (a, b) in first.prepared.iter().zip(&resumed.prepared) {
        assert_eq!(a.cell.name(), b.cell.name());
        assert_eq!(a.model, b.model, "{}: resumed model differs", a.cell.name());
    }

    // A different budget is a different campaign: nothing may be reused.
    let other_budget = SimBudget {
        max_defects: Some(2),
        ..SimBudget::unlimited()
    };
    let session = Session::open(&store).expect("reopen under new budget");
    let outcome = characterize_library_robust_with_session(
        &lib,
        GenerateOptions::default(),
        &other_budget,
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(2),
        &CharCache::new(),
        &session,
    )
    .expect("SkipAndReport never errors");
    let report = session.report();
    assert_eq!(
        report.reused_complete + report.reused_degraded + report.reused_quarantined,
        0,
        "budget change must invalidate every record: {}",
        report.render()
    );
    assert_eq!(outcome.prepared.len(), lib.cells.len());
    let _ = std::fs::remove_dir_all(&dir);
}
