//! Differential fuzz: the packed bit-parallel engine vs. the scalar
//! solver (DESIGN.md §12).
//!
//! The packed path is only allowed to exist because it is bit-identical
//! to the interpreted one. These tests drive both engines over a random
//! synthesized corpus, `ca_netlist::corrupt` salted variants of it, and
//! random defect injections, asserting identical `SimResult` values per
//! lane, identical `SolveOutcome` classes, and identical detection
//! rows. Generation is seeded through `ca-rng`, so every run exercises
//! the same inputs (no flakiness).

use ca_rng::{Rng, SplitMix64};
use cell_aware::defects::{DefectUniverse, DetectionTable};
use cell_aware::netlist::synth::{
    synthesize, DriveStyle, NetlistStyle, Stage, StageExpr, StagePlan,
};
use cell_aware::netlist::{corrupt_cell, Cell, Corruption, NetId, Terminal, TransistorId};
use cell_aware::sim::packed::{PackedSim, PackedStimulus};
use cell_aware::sim::{
    detection_row, detection_row_scalar, set_packed_override, CellKernel, DetectionPolicy,
    Injection, SimBudget, Simulator, Stimulus, Value,
};

/// Number of random plans each property is checked against.
const CASES: u64 = 12;

/// Random single-stage pull-down expression over `n_inputs` pins, with
/// bounded depth.
fn random_stage_expr(rng: &mut SplitMix64, n_inputs: u8, depth: usize) -> StageExpr {
    if depth == 0 || rng.gen_index(3) == 0 {
        return StageExpr::pin(rng.gen_index(n_inputs as usize) as u8);
    }
    let arity = 2 + rng.gen_index(2);
    let children: Vec<StageExpr> = (0..arity)
        .map(|_| random_stage_expr(rng, n_inputs, depth - 1))
        .collect();
    if rng.gen_bool() {
        StageExpr::And(children)
    } else {
        StageExpr::Or(children)
    }
}

/// A random valid plan: one inverting stage, optionally buffered, kept
/// small (≤ 20 transistors) so the exhaustive comparisons stay fast.
fn random_plan(rng: &mut SplitMix64) -> StagePlan {
    loop {
        let n = 2 + rng.gen_index(2) as u8;
        let expr = random_stage_expr(rng, n, 2);
        let mut stages = vec![Stage::new(expr)];
        if rng.gen_bool() {
            stages.push(Stage::new(StageExpr::stage(0)));
        }
        let plan = StagePlan::new(n, stages).expect("constructed plans are valid");
        if plan.num_transistors() <= 20 {
            return plan;
        }
    }
}

/// Runs `check` against `CASES` random synthesized cells from a fixed
/// seed stream.
fn for_random_cells(seed: u64, mut check: impl FnMut(Cell)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CASES {
        let plan = random_plan(&mut rng);
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        check(s.cell);
    }
}

/// A random injection drawn from the same shapes the defect universe
/// uses, plus arbitrary net-net shorts.
fn random_injection(rng: &mut SplitMix64, cell: &Cell) -> Injection {
    const TERMS: [Terminal; 3] = [Terminal::Drain, Terminal::Gate, Terminal::Source];
    let n_t = cell.num_transistors();
    let n_n = cell.nets().len();
    match rng.gen_index(3) {
        0 => Injection::Open {
            transistor: TransistorId(rng.gen_index(n_t) as u32),
            terminal: TERMS[rng.gen_index(3)],
        },
        1 => {
            let a = rng.gen_index(3);
            let b = (a + 1 + rng.gen_index(2)) % 3;
            Injection::Short {
                transistor: TransistorId(rng.gen_index(n_t) as u32),
                a: TERMS[a],
                b: TERMS[b],
            }
        }
        _ => {
            let a = rng.gen_index(n_n);
            let b = (a + 1 + rng.gen_index(n_n - 1)) % n_n;
            Injection::NetShort {
                a: NetId(a as u32),
                b: NetId(b as u32),
            }
        }
    }
}

/// Scalar per-phase net values, in the same shape as
/// `BlockResult::lane_phases`.
fn scalar_phases(cell: &Cell, injection: Injection, stimulus: &Stimulus) -> Vec<Vec<Value>> {
    let result = Simulator::with_injection(cell, injection).run(stimulus);
    (0..result.num_phases())
        .map(|p| {
            (0..cell.nets().len())
                .map(|i| result.value(p, NetId(i as u32)))
                .collect()
        })
        .collect()
}

/// Asserts the packed engine reproduces every scalar net value of every
/// phase, for every stimulus lane, under `injection`.
fn assert_lanes_match(cell: &Cell, injection: Injection, stimuli: &[Stimulus]) {
    let kernel = CellKernel::compile(cell).expect("corpus cells are within kernel limits");
    let packed = PackedStimulus::pack(cell.num_inputs(), stimuli);
    let sim = PackedSim::new(&kernel, injection, None);
    let mut si = 0;
    for block in packed.blocks() {
        let result = sim.run_block(block);
        for lane in 0..block.occupancy() {
            assert_eq!(
                result.lane_phases(lane),
                scalar_phases(cell, injection, &stimuli[si]),
                "cell {} injection {injection} stimulus {si}",
                cell.name()
            );
            si += 1;
        }
    }
}

/// Packed detection tables equal scalar ones over the synthesized
/// corpus (full intra-transistor universe, exhaustive stimuli).
#[test]
fn tables_match_on_synth_corpus() {
    for_random_cells(41, |cell| {
        let universe = DefectUniverse::intra_transistor(&cell);
        let stimuli = Stimulus::all(cell.num_inputs());
        let scalar =
            DetectionTable::generate_scalar(&cell, &universe, &stimuli, DetectionPolicy::default());
        let packed =
            DetectionTable::generate_packed(&cell, &universe, &stimuli, DetectionPolicy::default())
                .expect("corpus cells are within kernel limits");
        assert_eq!(packed, scalar, "cell {}", cell.name());
    });
}

/// Packed detection tables equal scalar ones on every corrupted
/// (structurally pathological) variant the corruptor can produce —
/// including oscillator loops, where both engines must force the same
/// `Xd` values at the iteration cap.
#[test]
fn tables_match_on_corrupted_variants() {
    let mut salt = SplitMix64::new(43);
    for_random_cells(42, |cell| {
        for corruption in Corruption::ALL {
            let Ok(bad) = corrupt_cell(&cell, corruption, salt.next_u64()) else {
                continue;
            };
            let universe = DefectUniverse::intra_transistor(&bad);
            let stimuli = Stimulus::all(bad.num_inputs());
            let scalar = DetectionTable::generate_scalar(
                &bad,
                &universe,
                &stimuli,
                DetectionPolicy::default(),
            );
            let packed = DetectionTable::generate_packed(
                &bad,
                &universe,
                &stimuli,
                DetectionPolicy::default(),
            )
            .expect("corrupted corpus cells are within kernel limits");
            assert_eq!(packed, scalar, "{} on {}", corruption.name(), bad.name());
        }
    });
}

/// Per-lane packed values equal scalar `SimResult` values for random
/// injections, across every phase of every stimulus.
#[test]
fn lane_values_match_under_random_injections() {
    let mut inj_rng = SplitMix64::new(45);
    for_random_cells(44, |cell| {
        let stimuli = Stimulus::all(cell.num_inputs());
        assert_lanes_match(&cell, Injection::None, &stimuli);
        for _ in 0..4 {
            assert_lanes_match(&cell, random_injection(&mut inj_rng, &cell), &stimuli);
        }
    });
}

/// The public `detection_row` dispatcher (packed when allowed) agrees
/// with the scalar reference row for random injections.
#[test]
fn detection_rows_match_per_injection() {
    let mut inj_rng = SplitMix64::new(47);
    for_random_cells(46, |cell| {
        let stimuli = Stimulus::all(cell.num_inputs());
        for _ in 0..3 {
            let injection = random_injection(&mut inj_rng, &cell);
            assert_eq!(
                detection_row(&cell, injection, &stimuli, DetectionPolicy::default()),
                detection_row_scalar(&cell, injection, &stimuli, DetectionPolicy::default()),
                "cell {} injection {injection}",
                cell.name()
            );
        }
    });
}

/// Budgeted generation — including `SolveOutcome` error classes under a
/// reduced iteration cap and truncation-degraded runs — is identical
/// with the packed engine forced on and forced off.
#[test]
fn budgeted_outcomes_match_scalar_classes() {
    let budgets = [
        SimBudget::unlimited(),
        SimBudget {
            max_solver_iterations: Some(2),
            ..SimBudget::unlimited()
        },
        SimBudget {
            max_stimuli: Some(5),
            max_defects: Some(7),
            ..SimBudget::unlimited()
        },
    ];
    let mut salt = SplitMix64::new(49);
    for_random_cells(48, |cell| {
        // The oscillator variant exercises the golden-oscillation error
        // path; the pristine cell exercises the success paths.
        let mut cells = vec![cell.clone()];
        if let Ok(bad) = corrupt_cell(&cell, Corruption::OscillatorLoop, salt.next_u64()) {
            cells.push(bad);
        }
        for cell in &cells {
            let universe = DefectUniverse::intra_transistor(cell);
            let stimuli = Stimulus::all(cell.num_inputs());
            for budget in &budgets {
                set_packed_override(Some(false));
                let scalar = DetectionTable::generate_budgeted(
                    cell,
                    &universe,
                    &stimuli,
                    DetectionPolicy::default(),
                    budget,
                );
                set_packed_override(Some(true));
                let packed = DetectionTable::generate_budgeted(
                    cell,
                    &universe,
                    &stimuli,
                    DetectionPolicy::default(),
                    budget,
                );
                set_packed_override(None);
                assert_eq!(packed, scalar, "cell {}", cell.name());
            }
        }
    });
}
