//! End-to-end robustness: a salted (deliberately corrupted) library runs
//! through the fault-tolerant characterization driver, every broken cell
//! lands in quarantine with a deterministic diagnosis, and the healthy
//! rest still exports.

use ca_core::{
    characterize_library_robust, export_cam, export_cam_with, summarize, FailurePhase, FaultPolicy,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::{salt_library, Corruption};
use ca_netlist::library::{generate_library, LibraryConfig};
use ca_netlist::Technology;
use ca_sim::SimBudget;

/// Phase + reason fragment each corruption must be diagnosed with.
fn expected_diagnosis(c: Corruption) -> (FailurePhase, &'static str) {
    match c {
        Corruption::FloatingOutput => (FailurePhase::Lint, "undriven-output"),
        Corruption::DanglingGate => (FailurePhase::Lint, "floating-gate-net"),
        Corruption::ZeroTransistor => (FailurePhase::Lint, "no-transistors"),
        Corruption::MultiOutput => (FailurePhase::Prepare, "single-output"),
        Corruption::OscillatorLoop => (FailurePhase::Golden, "oscillated"),
    }
}

#[test]
fn salted_library_quarantines_exactly_the_corrupted_cells() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
    lib.cells.truncate(20);
    let salted = salt_library(&mut lib, 5, 7);
    assert_eq!(salted.len(), 5, "salting must land all five corruptions");

    let outcome = characterize_library_robust(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
    )
    .unwrap();

    // The acceptance shape: 20 cells in, 5 quarantined, 15 healthy out.
    assert_eq!(
        outcome.quarantine.len(),
        5,
        "{}",
        outcome.quarantine.render()
    );
    assert_eq!(outcome.prepared.len(), 15);
    assert_eq!(outcome.prepared.len() + outcome.quarantine.len(), lib.len());

    // Each corrupted cell is diagnosed in the right phase with the right
    // reason — nothing is lumped into a generic failure bucket.
    for s in &salted {
        let entry = outcome
            .quarantine
            .entry(&s.cell)
            .unwrap_or_else(|| panic!("{} missing from quarantine", s.cell));
        let (phase, fragment) = expected_diagnosis(s.corruption);
        assert_eq!(entry.phase, phase, "{}: {}", s.cell, entry.reason);
        assert!(
            entry.reason.contains(fragment),
            "{} ({}): reason `{}` lacks `{fragment}`",
            s.cell,
            s.corruption,
            entry.reason
        );
        assert_eq!(entry.retries, 0, "structural failures must not retry");
    }

    // No healthy cell was dragged into quarantine.
    for entry in &outcome.quarantine.entries {
        assert!(
            salted.iter().any(|s| s.cell == entry.cell),
            "{}",
            entry.cell
        );
    }

    // The survivors carry full (non-degraded) models and all export.
    assert_eq!(outcome.degraded_count(), 0);
    let exported = export_cam(&outcome.prepared);
    assert_eq!(exported.len(), 15);

    // The summary reflects the robust run.
    let mut summary = summarize(lib.technology.name(), &outcome.prepared);
    summary.quarantined = outcome.quarantine.len();
    assert_eq!(summary.num_cells, 15);
    assert!(summary.mean_coverage > 0.4);
    assert!(summary.render().contains("5 quarantined"));

    // The human-readable report names every quarantined cell.
    let report = outcome.quarantine.render();
    for s in &salted {
        assert!(
            report.contains(&s.cell),
            "report misses {}:\n{report}",
            s.cell
        );
    }
}

#[test]
fn robust_characterization_is_deterministic() {
    let build = || {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
        lib.cells.truncate(20);
        salt_library(&mut lib, 5, 7);
        characterize_library_robust(
            &lib,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::SkipAndReport,
        )
        .unwrap()
    };
    let a = build();
    let b = build();
    let key = |o: &ca_core::RobustOutcome| {
        o.quarantine
            .entries
            .iter()
            .map(|e| (e.cell.clone(), e.phase, e.reason.clone()))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
}

#[test]
fn fail_fast_stops_on_the_first_corrupted_cell() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
    lib.cells.truncate(20);
    salt_library(&mut lib, 5, 7);
    let err = characterize_library_robust(
        &lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::FailFast,
    )
    .unwrap_err();
    // Whatever the first corrupted cell is, the error must carry a
    // cell-specific message rather than a generic one.
    assert!(err.to_string().contains('`'), "{err}");
}

#[test]
fn retry_produces_degraded_models_that_export_only_on_opt_in() {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(4);
    // A zero wall clock exhausts every cell's budget at the golden
    // pre-flight; one retry re-runs with the clock lifted and a reduced
    // (static-only) budget, producing degraded but exportable models.
    let budget = SimBudget {
        wall_clock: Some(std::time::Duration::ZERO),
        ..SimBudget::unlimited()
    };
    let outcome = characterize_library_robust(
        &lib,
        GenerateOptions::default(),
        &budget,
        FaultPolicy::RetryWithReducedBudget(1),
    )
    .unwrap();
    assert!(
        outcome.quarantine.is_empty(),
        "{}",
        outcome.quarantine.render()
    );
    assert_eq!(outcome.prepared.len(), 4);
    assert_eq!(outcome.degraded_count(), 4);

    // Degraded dictionaries are held back by default...
    assert!(export_cam(&outcome.prepared).is_empty());
    // ...but export (marked) when the consumer opts in.
    let opted = export_cam_with(&outcome.prepared, true);
    assert_eq!(opted.len(), 4);
    for (name, text) in &opted {
        assert!(name.ends_with(".cam"));
        assert!(text.contains("degraded"), "{name} lacks the degraded mark");
    }
}
