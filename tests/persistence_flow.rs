//! The paper's premise, literally: "a large database of CA models is
//! available and can be used to train a ML algorithm". This test stores a
//! characterized library as `.cam` documents, reloads it, trains from the
//! reloaded models and checks the flow behaves identically to training
//! from fresh models.

use cell_aware::core::{MlFlow, MlFlowParams, PreparedCell};
use cell_aware::defects::{from_cam, to_cam, GenerateOptions};
use cell_aware::netlist::library::{generate_library, LibraryConfig};
use cell_aware::netlist::Technology;

#[test]
fn training_from_reloaded_cam_database_matches_fresh_training() {
    let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    let cells: Vec<_> = lib.cells.into_iter().take(10).map(|lc| lc.cell).collect();

    // Fresh characterization.
    let fresh: Vec<PreparedCell> = cells
        .iter()
        .map(|c| PreparedCell::characterize(c.clone(), GenerateOptions::default()).expect("valid"))
        .collect();

    // Store the models...
    let database: Vec<String> = fresh
        .iter()
        .map(|p| to_cam(p.model.as_ref().expect("characterized")))
        .collect();

    // ...and rebuild the corpus from netlists + stored models only.
    let reloaded: Vec<PreparedCell> = cells
        .iter()
        .zip(&database)
        .map(|(cell, cam)| {
            let model = from_cam(cam, cell).expect("stored models parse");
            let mut p = PreparedCell::prepare(cell.clone()).expect("valid");
            p.model = Some(model);
            p
        })
        .collect();

    // The reloaded models are bit-identical.
    for (a, b) in fresh.iter().zip(&reloaded) {
        assert_eq!(a.model, b.model, "{}", a.cell.name());
    }

    // Both corpora train to identical predictions.
    let flow_fresh = MlFlow::train(&fresh, MlFlowParams::quick()).expect("trains");
    let flow_reloaded = MlFlow::train(&reloaded, MlFlowParams::quick()).expect("trains");
    for p in &fresh {
        let a = flow_fresh.predict(p).expect("covered");
        let b = flow_reloaded.predict(p).expect("covered");
        assert_eq!(a, b, "{}", p.cell.name());
    }
}
