//! Property tests for the order-independent shard-journal merge.
//!
//! Real shard journals (written by the robust session driver over
//! sub-libraries, quarantine records included) are merged in shuffled
//! orders, with duplicated sources and with deliberate journal damage;
//! the merged store's bytes and the final session pass's `.cam`
//! exports must be invariant throughout.

use ca_core::{
    characterize_library_robust_with_session, export_cam_with, CharCache, Executor, FaultPolicy,
    Quarantine, RobustOutcome, Session,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::{corrupt_cell, Corruption};
use ca_netlist::library::{generate_library, Library, LibraryConfig};
use ca_netlist::Technology;
use ca_rng::SplitMix64;
use ca_shard::{merge_shard_stores, ShardPlan};
use ca_sim::SimBudget;
use std::path::{Path, PathBuf};

/// Small library with one deliberately broken cell, so quarantine
/// records are part of what must merge correctly.
fn merge_library() -> Library {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(8);
    lib.cells[2].cell = corrupt_cell(&lib.cells[2].cell, Corruption::FloatingOutput, 3)
        .expect("corruption applies");
    lib
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-shard-merge-it-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_session(lib: &Library, session: &Session) -> RobustOutcome {
    characterize_library_robust_with_session(
        lib,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
        &Executor::with_threads(2),
        &CharCache::new(),
        session,
    )
    .expect("SkipAndReport never errors")
}

type CamBytes = Vec<(String, String)>;
type QuarantineKeys = Vec<(String, String, String, u32)>;

fn projection(outcome: &RobustOutcome) -> (CamBytes, QuarantineKeys) {
    (
        export_cam_with(&outcome.prepared, true),
        quarantine_keys(&outcome.quarantine),
    )
}

fn quarantine_keys(q: &Quarantine) -> QuarantineKeys {
    q.entries
        .iter()
        .map(|e| {
            (
                e.cell.clone(),
                e.phase.to_string(),
                e.reason.clone(),
                e.retries,
            )
        })
        .collect()
}

/// Writes one journal per shard by running the session driver over each
/// shard sub-library, and returns the journal paths.
fn write_shard_journals(lib: &Library, shards: usize, dir: &Path) -> Vec<PathBuf> {
    let plan = ShardPlan::partition(lib, shards);
    let mut paths = Vec::new();
    for i in 0..shards {
        if plan.shards[i].is_empty() {
            continue;
        }
        let path = dir.join(format!("shard-{i}.caj"));
        let sub = plan.shard_library(lib, i);
        run_session(&sub, &Session::open(&path).expect("open shard journal"));
        paths.push(path);
    }
    paths
}

fn fisher_yates(items: &mut [PathBuf], rng: &mut SplitMix64) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

#[test]
fn merged_bytes_are_invariant_under_source_order_and_duplicates() {
    let lib = merge_library();
    let dir = scratch_dir("shuffle");
    let mut sources = write_shard_journals(&lib, 3, &dir);
    assert!(sources.len() >= 2, "library must spread over shards");

    // A duplicated source: the same shard characterized twice (e.g. a
    // retry that lost the race with its own success) yields identical
    // records under identical tags.
    let dup = dir.join("duplicate-of-first.caj");
    std::fs::copy(&sources[0], &dup).expect("copy journal");
    sources.push(dup);

    let mut rng = SplitMix64::new(0xCA5C_ADE5);
    let mut baseline: Option<Vec<u8>> = None;
    for round in 0..6 {
        fisher_yates(&mut sources, &mut rng);
        let dest = dir.join("merged.caj");
        let report = merge_shard_stores(&sources, &dest).expect("merge");
        assert_eq!(report.merged_records, lib.cells.len());
        assert!(report.duplicates > 0, "duplicated source must be seen");
        let bytes = std::fs::read(&dest).expect("read merged store");
        match &baseline {
            None => baseline = Some(bytes),
            Some(expect) => assert_eq!(&bytes, expect, "round {round} diverged"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn final_pass_over_merged_store_matches_unsharded_golden() {
    let lib = merge_library();
    let dir = scratch_dir("golden");
    let golden = run_session(&lib, &Session::open(dir.join("golden.caj")).expect("open"));

    let sources = write_shard_journals(&lib, 3, &dir);
    let merged = dir.join("merged.caj");
    merge_shard_stores(&sources, &merged).expect("merge");

    let session = Session::open(&merged).expect("open merged store");
    let outcome = run_session(&lib, &session);
    assert_eq!(projection(&outcome), projection(&golden));
    // Every merged record must be *reused*, not recharacterized: the
    // merge preserves the session's certified-donor contract.
    let report = session.report();
    assert_eq!(
        report.reused_complete + report.reused_degraded + report.reused_quarantined,
        lib.cells.len(),
        "{}",
        report.render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_shard_journals_recover_and_still_converge() {
    let lib = merge_library();
    let dir = scratch_dir("damage");
    let golden = run_session(&lib, &Session::open(dir.join("golden.caj")).expect("open"));

    let sources = write_shard_journals(&lib, 3, &dir);
    assert!(sources.len() >= 2);
    // Bit-flip the middle of one journal and tear the tail off another:
    // recovery must truncate the damage, and the final pass must
    // recharacterize exactly what was lost.
    let flipped_len = std::fs::metadata(&sources[0]).expect("stat").len();
    ca_store::corrupt::bit_flip(&sources[0], flipped_len / 2, 5).expect("bit flip");
    let torn_len = std::fs::metadata(&sources[1]).expect("stat").len();
    ca_store::corrupt::truncate_at(&sources[1], torn_len - 7).expect("truncate");

    let merged = dir.join("merged.caj");
    let report = merge_shard_stores(&sources, &merged).expect("merge");
    assert!(
        report.recovered_sources >= 1,
        "damage must be diagnosed: {}",
        report.render()
    );
    assert!(
        report.merged_records < lib.cells.len(),
        "damage must cost records, not corrupt them"
    );

    let outcome = run_session(&lib, &Session::open(&merged).expect("open merged"));
    assert_eq!(
        projection(&outcome),
        projection(&golden),
        "recovery + recharacterization must converge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
