//! Multi-output cells: the conventional flow observes every output pin;
//! the single-response CA-matrix encoding rejects them explicitly.

use cell_aware::core::{CoreError, PreparedCell};
use cell_aware::defects::{CaModel, GenerateOptions};
use cell_aware::netlist::spice;
use cell_aware::sim::{Simulator, Stimulus, Value};

/// A dual-output cell: ZN = NAND2(A,B), ZR = NOR2(A,B).
const DUAL: &str = "\
.SUBCKT DUAL A B ZN ZR VDD VSS
MP0 ZN A VDD VDD pch
MP1 ZN B VDD VDD pch
MN0 ZN A net0 VSS nch
MN1 net0 B VSS VSS nch
MP2 mid A VDD VDD pch
MP3 ZR B mid VDD pch
MN2 ZR A VSS VSS nch
MN3 ZR B VSS VSS nch
.ENDS
";

#[test]
fn golden_simulation_drives_both_outputs() {
    let cell = spice::parse_cell(DUAL).unwrap();
    assert_eq!(cell.outputs().len(), 2);
    let zn = cell.find_net("ZN").unwrap();
    let zr = cell.find_net("ZR").unwrap();
    let sim = Simulator::new(&cell);
    for p in 0..4u32 {
        let result = sim.run(&Stimulus::static_pattern(2, p));
        let a = p & 1 == 1;
        let b = p & 2 == 2;
        assert_eq!(
            result.final_value(zn),
            Value::from_bool(!(a && b)),
            "ZN p={p}"
        );
        assert_eq!(
            result.final_value(zr),
            Value::from_bool(!(a || b)),
            "ZR p={p}"
        );
    }
}

#[test]
fn conventional_flow_observes_every_output() {
    let cell = spice::parse_cell(DUAL).unwrap();
    let model = CaModel::generate(&cell, GenerateOptions::default());
    // Defects on the NOR half are invisible on ZN; full observation must
    // still detect them.
    assert!(
        model.coverage() > 0.95,
        "coverage {} — NOR-half defects must be observed on ZR",
        model.coverage()
    );
    // Cross-check one specific NOR-half defect: MN2 drain open.
    let mn2 = cell.find_transistor("MN2").unwrap();
    let defect = model
        .universe
        .defects()
        .iter()
        .find(|d| {
            matches!(
                d.injection,
                cell_aware::sim::Injection::Open { transistor, .. } if transistor == mn2
            )
        })
        .unwrap();
    assert!(model.row(defect.id).any(), "MN2 open detected via ZR");
}

#[test]
fn ml_encoding_rejects_multi_output_cells() {
    let cell = spice::parse_cell(DUAL).unwrap();
    let err = PreparedCell::prepare(cell).unwrap_err();
    assert!(
        matches!(err, CoreError::Unsupported(_)),
        "expected Unsupported, got {err}"
    );
}
