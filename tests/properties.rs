//! Property-based tests over the core invariants (proptest).

use cell_aware::core::{Activation, CanonicalCell};
use cell_aware::defects::{DetectionTable, DefectUniverse};
use cell_aware::netlist::synth::{
    synthesize, DriveStyle, NetlistStyle, Stage, StageExpr, StagePlan,
};
use cell_aware::netlist::{spice, writer};
use cell_aware::sim::{DetectionPolicy, Simulator, Stimulus, Value};
use proptest::prelude::*;

/// Random single-stage pull-down expressions over up to 4 pins.
fn arb_stage_expr(n_inputs: u8) -> impl Strategy<Value = StageExpr> {
    let leaf = (0..n_inputs).prop_map(StageExpr::pin);
    leaf.prop_recursive(3, 12, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(StageExpr::And),
            prop::collection::vec(inner, 2..4).prop_map(StageExpr::Or),
        ]
    })
}

/// A random valid plan: one inverting stage, optionally buffered.
fn arb_plan() -> impl Strategy<Value = StagePlan> {
    (2u8..=3, any::<bool>())
        .prop_flat_map(|(n, buffered)| {
            arb_stage_expr(n).prop_map(move |expr| {
                let mut stages = vec![Stage::new(expr)];
                if buffered {
                    stages.push(Stage::new(StageExpr::stage(0)));
                }
                StagePlan::new(n, stages).expect("constructed plans are valid")
            })
        })
        .prop_filter("keep cells small", |p| p.num_transistors() <= 20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Golden simulation of any synthesized cell equals its reference
    /// Boolean function on every static pattern.
    #[test]
    fn synthesized_cells_compute_their_function(plan in arb_plan()) {
        let s = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let sim = Simulator::new(&s.cell);
        let n = s.cell.num_inputs();
        let table = s.function.truth_table(n);
        for p in 0..(1u32 << n) {
            let out = sim.output(&Stimulus::static_pattern(n, p));
            prop_assert_eq!(out, Value::from_bool(table[p as usize]));
        }
    }

    /// SPICE write -> parse -> write is idempotent on synthesized cells.
    #[test]
    fn spice_round_trip(plan in arb_plan(), drive in 1u8..=2) {
        let s = synthesize("P", &plan, drive, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let text = writer::to_spice(&s.cell);
        let parsed = spice::parse_cell(&text).expect("writer output parses");
        prop_assert_eq!(writer::to_spice(&parsed), text);
        prop_assert_eq!(parsed.num_transistors(), s.cell.num_transistors());
    }

    /// Canonical renaming is invariant under device order shuffles: the
    /// multiset of (canonical name, activity value) never changes, and
    /// the wiring hash is stable.
    #[test]
    fn canonical_names_invariant_under_shuffle(plan in arb_plan(), seed in 1u64..5000) {
        let base = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let shuffled_style = NetlistStyle { shuffle_seed: Some(seed), ..NetlistStyle::default() };
        let shuffled = synthesize("P", &plan, 1, DriveStyle::SharedNets, &shuffled_style)
            .expect("valid plan synthesizes");
        let canon = |cell: &cell_aware::netlist::Cell| {
            let act = Activation::extract(cell).expect("golden is binary");
            let c = CanonicalCell::build(cell, &act).expect("canonizable");
            let mut sig: Vec<(String, String)> = cell
                .transistor_ids()
                .map(|(id, _)| (c.name(id).to_string(), act.activity_value(id).to_string()))
                .collect();
            sig.sort();
            (c.wiring_hash(), sig)
        };
        let (hash_a, sig_a) = canon(&base.cell);
        let (hash_b, sig_b) = canon(&shuffled.cell);
        prop_assert_eq!(hash_a, hash_b);
        prop_assert_eq!(sig_a, sig_b);
    }

    /// Detection tables are invariant under the order in which stimuli
    /// are simulated (pure function of (cell, defect, stimulus)).
    #[test]
    fn detection_rows_are_pure(plan in arb_plan()) {
        let s = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let universe = DefectUniverse::intra_transistor(&s.cell);
        let a = DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        let b = DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        prop_assert_eq!(a, b);
    }

    /// The `.cam` interchange format round-trips the CA model of any
    /// synthesized cell exactly.
    #[test]
    fn cam_round_trips_any_model(plan in arb_plan()) {
        use cell_aware::defects::{from_cam, to_cam, CaModel, GenerateOptions};
        let s = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let model = CaModel::generate(&s.cell, GenerateOptions::default());
        let text = to_cam(&model);
        let parsed = from_cam(&text, &s.cell).expect("cam round-trips");
        prop_assert_eq!(parsed, model);
    }

    /// Pattern selection covers every detectable class of any model.
    #[test]
    fn pattern_selection_always_covers(plan in arb_plan()) {
        use cell_aware::defects::{select_patterns, CaModel, GenerateOptions};
        let s = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let model = CaModel::generate(&s.cell, GenerateOptions::default());
        let set = select_patterns(&model);
        prop_assert!((set.class_coverage() - 1.0).abs() < 1e-12);
        // And never selects more patterns than there are detectable classes.
        prop_assert!(set.selected.len() <= set.detectable.max(1));
    }

    /// The optimistic policy never detects more than the default, which
    /// never detects more than the pessimistic one (monotonicity).
    #[test]
    fn detection_policies_are_monotone(plan in arb_plan()) {
        let s = synthesize("P", &plan, 1, DriveStyle::SharedNets, &NetlistStyle::default())
            .expect("valid plan synthesizes");
        let universe = DefectUniverse::intra_transistor(&s.cell);
        let optimistic =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::optimistic());
        let default =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        let pessimistic =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::pessimistic());
        for d in universe.defects() {
            for i in 0..optimistic.stimuli().len() {
                prop_assert!(!optimistic.detects(d.id, i) || default.detects(d.id, i));
                prop_assert!(!default.detects(d.id, i) || pessimistic.detects(d.id, i));
            }
        }
    }
}
