//! Property-style tests over the core invariants.
//!
//! Each property is checked against a stream of randomly generated cells;
//! generation is seeded through `ca-rng`, so every run exercises the same
//! inputs (no external property-testing dependency, no flakiness).

use ca_rng::{Rng, SplitMix64};
use cell_aware::core::{Activation, CanonicalCell};
use cell_aware::defects::{DefectUniverse, DetectionTable};
use cell_aware::netlist::synth::{
    synthesize, DriveStyle, NetlistStyle, Stage, StageExpr, StagePlan,
};
use cell_aware::netlist::{spice, writer};
use cell_aware::sim::{DetectionPolicy, Simulator, Stimulus, Value};

/// Number of random plans each property is checked against.
const CASES: u64 = 24;

/// Random single-stage pull-down expression over `n_inputs` pins, with
/// bounded depth.
fn random_stage_expr(rng: &mut SplitMix64, n_inputs: u8, depth: usize) -> StageExpr {
    if depth == 0 || rng.gen_index(3) == 0 {
        return StageExpr::pin(rng.gen_index(n_inputs as usize) as u8);
    }
    let arity = 2 + rng.gen_index(2);
    let children: Vec<StageExpr> = (0..arity)
        .map(|_| random_stage_expr(rng, n_inputs, depth - 1))
        .collect();
    if rng.gen_bool() {
        StageExpr::And(children)
    } else {
        StageExpr::Or(children)
    }
}

/// A random valid plan: one inverting stage, optionally buffered, kept
/// small (≤ 20 transistors) so the exhaustive properties stay fast.
fn random_plan(rng: &mut SplitMix64) -> StagePlan {
    loop {
        let n = 2 + rng.gen_index(2) as u8;
        let expr = random_stage_expr(rng, n, 2);
        let mut stages = vec![Stage::new(expr)];
        if rng.gen_bool() {
            stages.push(Stage::new(StageExpr::stage(0)));
        }
        let plan = StagePlan::new(n, stages).expect("constructed plans are valid");
        if plan.num_transistors() <= 20 {
            return plan;
        }
    }
}

/// Runs `check` against `CASES` random plans from a fixed seed stream.
fn for_random_plans(seed: u64, mut check: impl FnMut(StagePlan)) {
    let mut rng = SplitMix64::new(seed);
    for _ in 0..CASES {
        check(random_plan(&mut rng));
    }
}

/// Golden simulation of any synthesized cell equals its reference
/// Boolean function on every static pattern.
#[test]
fn synthesized_cells_compute_their_function() {
    for_random_plans(1, |plan| {
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let sim = Simulator::new(&s.cell);
        let n = s.cell.num_inputs();
        let table = s.function.truth_table(n);
        for p in 0..(1u32 << n) {
            let out = sim.output(&Stimulus::static_pattern(n, p));
            assert_eq!(out, Value::from_bool(table[p as usize]));
        }
    });
}

/// SPICE write -> parse -> write is idempotent on synthesized cells.
#[test]
fn spice_round_trip() {
    let mut drive_rng = SplitMix64::new(11);
    for_random_plans(2, |plan| {
        let drive = 1 + drive_rng.gen_index(2) as u8;
        let s = synthesize(
            "P",
            &plan,
            drive,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let text = writer::to_spice(&s.cell);
        let parsed = spice::parse_cell(&text).expect("writer output parses");
        assert_eq!(writer::to_spice(&parsed), text);
        assert_eq!(parsed.num_transistors(), s.cell.num_transistors());
    });
}

/// Canonical renaming is invariant under device order shuffles: the
/// multiset of (canonical name, activity value) never changes, and
/// the wiring hash is stable.
#[test]
fn canonical_names_invariant_under_shuffle() {
    let mut seed_rng = SplitMix64::new(13);
    for_random_plans(3, |plan| {
        let seed = 1 + seed_rng.gen_index(4999) as u64;
        let base = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let shuffled_style = NetlistStyle {
            shuffle_seed: Some(seed),
            ..NetlistStyle::default()
        };
        let shuffled = synthesize("P", &plan, 1, DriveStyle::SharedNets, &shuffled_style)
            .expect("valid plan synthesizes");
        let canon = |cell: &cell_aware::netlist::Cell| {
            let act = Activation::extract(cell).expect("golden is binary");
            let c = CanonicalCell::build(cell, &act).expect("canonizable");
            let mut sig: Vec<(String, String)> = cell
                .transistor_ids()
                .map(|(id, _)| (c.name(id).to_string(), act.activity_value(id).to_string()))
                .collect();
            sig.sort();
            (c.wiring_hash(), sig)
        };
        let (hash_a, sig_a) = canon(&base.cell);
        let (hash_b, sig_b) = canon(&shuffled.cell);
        assert_eq!(hash_a, hash_b);
        assert_eq!(sig_a, sig_b);
    });
}

/// Detection tables are invariant under the order in which stimuli
/// are simulated (pure function of (cell, defect, stimulus)).
#[test]
fn detection_rows_are_pure() {
    for_random_plans(4, |plan| {
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let universe = DefectUniverse::intra_transistor(&s.cell);
        let a = DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        let b = DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        assert_eq!(a, b);
    });
}

/// The `.cam` interchange format round-trips the CA model of any
/// synthesized cell exactly.
#[test]
fn cam_round_trips_any_model() {
    use cell_aware::defects::{from_cam, to_cam, CaModel, GenerateOptions};
    for_random_plans(5, |plan| {
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let model = CaModel::generate(&s.cell, GenerateOptions::default());
        let text = to_cam(&model);
        let parsed = from_cam(&text, &s.cell).expect("cam round-trips");
        assert_eq!(parsed, model);
    });
}

/// Pattern selection covers every detectable class of any model.
#[test]
fn pattern_selection_always_covers() {
    use cell_aware::defects::{select_patterns, CaModel, GenerateOptions};
    for_random_plans(6, |plan| {
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let model = CaModel::generate(&s.cell, GenerateOptions::default());
        let set = select_patterns(&model);
        assert!((set.class_coverage() - 1.0).abs() < 1e-12);
        // And never selects more patterns than there are detectable classes.
        assert!(set.selected.len() <= set.detectable.max(1));
    });
}

/// The optimistic policy never detects more than the default, which
/// never detects more than the pessimistic one (monotonicity).
#[test]
fn detection_policies_are_monotone() {
    for_random_plans(7, |plan| {
        let s = synthesize(
            "P",
            &plan,
            1,
            DriveStyle::SharedNets,
            &NetlistStyle::default(),
        )
        .expect("valid plan synthesizes");
        let universe = DefectUniverse::intra_transistor(&s.cell);
        let optimistic =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::optimistic());
        let default =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::default());
        let pessimistic =
            DetectionTable::generate_exhaustive(&s.cell, &universe, DetectionPolicy::pessimistic());
        for d in universe.defects() {
            for i in 0..optimistic.stimuli().len() {
                assert!(!optimistic.detects(d.id, i) || default.detects(d.id, i));
                assert!(!default.detects(d.id, i) || pessimistic.detects(d.id, i));
            }
        }
    });
}
