//! The workspace model: item-level structure recovered from the token
//! stream (DESIGN.md §15).
//!
//! [`FileModel::build`] turns one lexed file into the facts the
//! analysis rules (D8–D12) reason about: functions with body spans and
//! impl context, lock-typed struct fields and statics, enums with
//! per-variant doc text, `const` string arrays, `counter!` /
//! `histogram!` / `timer!` invocation sites, `CA_*` env-var string
//! literals, and `catch_unwind` argument ranges. It is a *recognizer*,
//! not a full parser: it only understands the handful of shapes the
//! rules need, and unknown syntax simply contributes no facts.

use crate::lexer::{self, Tok, TokKind};
use crate::scrub::ScrubbedSource;

/// Which lock-ish type a field or static holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `std::sync::Mutex`.
    Mutex,
    /// `std::sync::RwLock`.
    RwLock,
    /// `std::sync::Condvar` (blocks, but adds no lock class).
    Condvar,
}

/// A struct field of lock type (`state: Mutex<State>`).
#[derive(Debug, Clone)]
pub struct LockField {
    /// The struct that owns the field.
    pub owner: String,
    /// Field name.
    pub field: String,
    /// Lock flavour.
    pub kind: LockKind,
}

/// A `static` item of lock type.
#[derive(Debug, Clone)]
pub struct LockStatic {
    /// Static name.
    pub name: String,
    /// Lock flavour.
    pub kind: LockKind,
    /// 1-based declaration line.
    pub line: usize,
    /// Declared inside `#[cfg(test)]`.
    pub is_test: bool,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Function name.
    pub name: String,
    /// Self type of the enclosing `impl`, if any.
    pub impl_type: Option<String>,
    /// Token index of the name.
    pub name_idx: usize,
    /// `{`/`}` token indices of the body (absent for trait decls).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the name.
    pub line: usize,
    /// 1-based column of the name.
    pub col: usize,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
    /// Whether a parameter is typed `&Mutex<..>` — such helpers
    /// acquire on behalf of their caller, so D8 attributes the lock at
    /// the call site and ignores the helper's own `.lock()`.
    pub mutex_param: bool,
}

/// One enum variant with its doc text.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Concatenated `///` doc lines directly above the variant.
    pub doc: String,
}

/// One enum item.
#[derive(Debug, Clone)]
pub struct EnumModel {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
}

/// A `const NAME: .. = [ "a", "b", .. ]` string-array constant.
#[derive(Debug, Clone)]
pub struct StrArrayConst {
    /// Constant name.
    pub name: String,
    /// Literal values in order.
    pub values: Vec<String>,
    /// 1-based declaration line.
    pub line: usize,
}

/// Which metric macro a site invokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// `counter!(name, Class)`.
    Counter,
    /// `histogram!(name, Class, bounds)`.
    Histogram,
    /// `timer!(name)` — class is implicit.
    Timer,
}

impl MetricKind {
    /// Lower-case label used in the rendered inventory.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Timer => "timer",
        }
    }
}

/// One `counter!` / `histogram!` / `timer!` invocation.
#[derive(Debug, Clone)]
pub struct MetricSite {
    /// Macro flavour.
    pub kind: MetricKind,
    /// Metric name when the first argument is a string literal.
    pub name: Option<String>,
    /// Metric class ident (`Outcome`/`Work`/`Ops`); `None` for timers.
    pub class: Option<String>,
    /// 1-based line of the macro name.
    pub line: usize,
    /// 1-based column of the macro name.
    pub col: usize,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One `CA_*` env-var string literal.
#[derive(Debug, Clone)]
pub struct EnvSite {
    /// The variable name (cooked literal).
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

/// One audited source file, parsed.
pub struct FileModel {
    /// Owning package name.
    pub crate_name: String,
    /// Root-relative path label.
    pub label: String,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// For each bracket token, the index of its partner (`(){}[]`).
    pub match_idx: Vec<Option<usize>>,
    /// Function items.
    pub fns: Vec<FnModel>,
    /// Lock-typed struct fields.
    pub lock_fields: Vec<LockField>,
    /// Lock-typed statics.
    pub lock_statics: Vec<LockStatic>,
    /// Enum items.
    pub enums: Vec<EnumModel>,
    /// String-array constants.
    pub str_consts: Vec<StrArrayConst>,
    /// Metric macro sites.
    pub metric_sites: Vec<MetricSite>,
    /// `CA_*` env-var literals.
    pub env_sites: Vec<EnvSite>,
    /// Token ranges of `catch_unwind(..)` argument lists.
    pub catch_ranges: Vec<(usize, usize)>,
    /// The scrubbed view (pragmas, test mask, marker comments).
    pub scrub: ScrubbedSource,
}

/// Whether tokens `a` then `b` touch in the source (`::`, `=>`, `..`).
pub fn adjacent(a: &Tok, b: &Tok) -> bool {
    a.pos + a.raw_len == b.pos
}

impl FileModel {
    /// Parses `content` as one file of crate `crate_name`.
    pub fn build(crate_name: &str, label: &str, content: &str) -> FileModel {
        let lexed = lexer::lex(content);
        let scrub = ScrubbedSource::from_lexed(content, &lexed);
        let toks = lexed.toks;
        let match_idx = pair_brackets(&toks);
        let mut m = FileModel {
            crate_name: crate_name.to_string(),
            label: label.to_string(),
            toks,
            match_idx,
            fns: Vec::new(),
            lock_fields: Vec::new(),
            lock_statics: Vec::new(),
            enums: Vec::new(),
            str_consts: Vec::new(),
            metric_sites: Vec::new(),
            env_sites: Vec::new(),
            catch_ranges: Vec::new(),
            scrub,
        };
        let docs = doc_lines(&lexed.comments);
        m.scan_items(&docs);
        m.scan_leaf_sites();
        m
    }

    /// Partner index of the bracket token at `i`, or `i` itself when
    /// unmatched (degenerate input).
    pub fn partner(&self, i: usize) -> usize {
        self.match_idx.get(i).copied().flatten().unwrap_or(i)
    }

    /// `::` path separator at token index `i`?
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.toks[i].is_punct(':')
            && self
                .toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct(':') && adjacent(&self.toks[i], n))
    }

    /// `=>` fat arrow starting at token index `i`?
    pub fn is_fat_arrow(&self, i: usize) -> bool {
        self.toks[i].is_punct('=')
            && self
                .toks
                .get(i + 1)
                .is_some_and(|n| n.is_punct('>') && adjacent(&self.toks[i], n))
    }

    /// Item scan: impl regions, fns, structs, statics, enums, consts.
    fn scan_items(&mut self, docs: &std::collections::BTreeMap<usize, String>) {
        // impl regions, innermost-wins, resolved per fn below.
        let mut impls: Vec<(usize, usize, String)> = Vec::new();
        let mut i = 0;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_ident("impl") {
                if let Some((ty, open)) = self.impl_header(i) {
                    impls.push((open, self.partner(open), ty));
                }
            } else if t.is_ident("fn") {
                self.scan_fn(i, &impls);
            } else if t.is_ident("struct") {
                self.scan_struct(i);
            } else if t.is_ident("static") {
                self.scan_static(i);
            } else if t.is_ident("enum") {
                self.scan_enum(i, docs);
            } else if t.is_ident("const") {
                self.scan_const(i);
            }
            i += 1;
        }
    }

    /// Parses an `impl` header at `at`; returns (self type, body `{`).
    fn impl_header(&self, at: usize) -> Option<(String, usize)> {
        let mut i = at + 1;
        // Skip `<..>` generic params (angle depth; `->` cannot occur).
        if self.toks.get(i)?.is_punct('<') {
            let mut depth = 0usize;
            while i < self.toks.len() {
                if self.toks[i].is_punct('<') {
                    depth += 1;
                } else if self.toks[i].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        let (first, mut i) = self.parse_type_path(i)?;
        let mut ty = first;
        // `impl Trait for Type` — the type is the path after `for`.
        while i < self.toks.len() && !self.toks[i].is_punct('{') {
            if self.toks[i].is_ident("for") {
                if let Some((t, j)) = self.parse_type_path(i + 1) {
                    ty = t;
                    i = j;
                    continue;
                }
            }
            if self.toks[i].is_punct(';') {
                return None;
            }
            i += 1;
        }
        if i < self.toks.len() && self.toks[i].is_punct('{') {
            Some((ty, i))
        } else {
            None
        }
    }

    /// Parses a type path starting at `i` (`a::B<..>`), returning the
    /// last segment and the index after the path.
    fn parse_type_path(&self, mut i: usize) -> Option<(String, usize)> {
        // Skip leading `&`, lifetimes, `dyn`, `mut`.
        while let Some(t) = self.toks.get(i) {
            if t.is_punct('&')
                || t.kind == TokKind::Lifetime
                || t.is_ident("dyn")
                || t.is_ident("mut")
            {
                i += 1;
            } else {
                break;
            }
        }
        let mut last: Option<String> = None;
        while let Some(t) = self.toks.get(i) {
            if t.kind == TokKind::Ident && !t.is_ident("for") && !t.is_ident("where") {
                last = Some(t.text.clone());
                i += 1;
                if self.toks.get(i).is_some_and(|_| self.is_path_sep(i)) {
                    i += 2;
                    continue;
                }
                // Trailing generics on the final segment.
                if self.toks.get(i).is_some_and(|n| n.is_punct('<')) {
                    let mut depth = 0usize;
                    while i < self.toks.len() {
                        if self.toks[i].is_punct('<') {
                            depth += 1;
                        } else if self.toks[i].is_punct('>') {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        i += 1;
                    }
                }
                break;
            }
            break;
        }
        last.map(|l| (l, i))
    }

    fn scan_fn(&mut self, at: usize, impls: &[(usize, usize, String)]) {
        let Some(name_tok) = self.toks.get(at + 1) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let (line, col) = (name_tok.line, name_tok.col);
        // Find the parameter list, then the body `{` or a `;`.
        let mut i = at + 2;
        let mut params: Option<(usize, usize)> = None;
        let mut body = None;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('(') && params.is_none() {
                params = Some((i, self.partner(i)));
                i = self.partner(i) + 1;
                continue;
            }
            if t.is_punct('{') {
                body = Some((i, self.partner(i)));
                break;
            }
            if t.is_punct(';') {
                break;
            }
            i += 1;
        }
        let mutex_param = params.is_some_and(|(o, c)| {
            (o..=c).any(|k| self.toks[k].is_ident("Mutex") || self.toks[k].is_ident("RwLock"))
        });
        let impl_type = impls
            .iter()
            .rfind(|(o, c, _)| *o < at && at < *c)
            .map(|(_, _, ty)| ty.clone());
        let is_test = self.scrub.is_test_line(line);
        self.fns.push(FnModel {
            name,
            impl_type,
            name_idx: at + 1,
            body,
            line,
            col,
            is_test,
            mutex_param,
        });
    }

    fn scan_struct(&mut self, at: usize) {
        let Some(name_tok) = self.toks.get(at + 1) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let owner = name_tok.text.clone();
        // Skip generics, find `{` (tuple structs / unit structs: none).
        let mut i = at + 2;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('{') {
                break;
            }
            if t.is_punct(';') || t.is_punct('(') {
                return;
            }
            i += 1;
        }
        if i >= self.toks.len() {
            return;
        }
        let close = self.partner(i);
        // Fields at depth 1: `name: Type, ...`.
        let mut j = i + 1;
        while j < close {
            // Skip attributes.
            if self.toks[j].is_punct('#') {
                if let Some(n) = self.toks.get(j + 1) {
                    if n.is_punct('[') {
                        j = self.partner(j + 1) + 1;
                        continue;
                    }
                }
            }
            // Field name = last ident before `:` (skips `pub`).
            let start = j;
            let mut colon = None;
            while j < close {
                if self.toks[j].is_punct(':') && !self.is_path_sep(j) {
                    colon = Some(j);
                    break;
                }
                if self.toks[j].is_punct(',') {
                    break;
                }
                j += 1;
            }
            let Some(colon) = colon else {
                j += 1;
                continue;
            };
            let field = (start..colon)
                .rev()
                .find(|&k| self.toks[k].kind == TokKind::Ident)
                .map(|k| self.toks[k].text.clone());
            // Type tokens run to the `,` at depth 1 (skip groups).
            let mut k = colon + 1;
            let mut kind = None;
            while k < close {
                let t = &self.toks[k];
                if t.is_punct(',') {
                    break;
                }
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    k = self.partner(k) + 1;
                    continue;
                }
                kind = kind.or(match t.text.as_str() {
                    "Mutex" => Some(LockKind::Mutex),
                    "RwLock" => Some(LockKind::RwLock),
                    "Condvar" => Some(LockKind::Condvar),
                    _ => None,
                });
                k += 1;
            }
            if let (Some(field), Some(kind)) = (field, kind) {
                self.lock_fields.push(LockField {
                    owner: owner.clone(),
                    field,
                    kind,
                });
            }
            j = k + 1;
        }
    }

    fn scan_static(&mut self, at: usize) {
        let mut i = at + 1;
        if self.toks.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        let Some(name_tok) = self.toks.get(i) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut kind = None;
        let mut j = i + 1;
        while j < self.toks.len() {
            let t = &self.toks[j];
            if t.is_punct(';') || t.is_punct('=') {
                break;
            }
            kind = kind.or(match t.text.as_str() {
                "Mutex" => Some(LockKind::Mutex),
                "RwLock" => Some(LockKind::RwLock),
                "Condvar" => Some(LockKind::Condvar),
                _ => None,
            });
            j += 1;
        }
        if let Some(kind) = kind {
            let is_test = self.scrub.is_test_line(line);
            self.lock_statics.push(LockStatic {
                name,
                kind,
                line,
                is_test,
            });
        }
    }

    fn scan_enum(&mut self, at: usize, docs: &std::collections::BTreeMap<usize, String>) {
        let Some(name_tok) = self.toks.get(at + 1) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let mut i = at + 2;
        while i < self.toks.len() && !self.toks[i].is_punct('{') {
            if self.toks[i].is_punct(';') {
                return;
            }
            i += 1;
        }
        if i >= self.toks.len() {
            return;
        }
        let close = self.partner(i);
        let mut variants = Vec::new();
        let mut j = i + 1;
        while j < close {
            // Skip attributes on the variant.
            if self.toks[j].is_punct('#') {
                if let Some(n) = self.toks.get(j + 1) {
                    if n.is_punct('[') {
                        j = self.partner(j + 1) + 1;
                        continue;
                    }
                }
            }
            if self.toks[j].kind == TokKind::Ident {
                let vtok = &self.toks[j];
                let mut doc_parts: Vec<String> = Vec::new();
                let mut l = vtok.line;
                while l > 1 && docs.contains_key(&(l - 1)) {
                    l -= 1;
                    doc_parts.push(docs[&l].clone());
                }
                doc_parts.reverse();
                variants.push(Variant {
                    name: vtok.text.clone(),
                    line: vtok.line,
                    col: vtok.col,
                    doc: doc_parts.join(" "),
                });
                // Skip payload and discriminant to the next `,`.
                j += 1;
                while j < close {
                    let t = &self.toks[j];
                    if t.is_punct(',') {
                        j += 1;
                        break;
                    }
                    if t.is_punct('(') || t.is_punct('{') || t.is_punct('[') {
                        j = self.partner(j) + 1;
                        continue;
                    }
                    j += 1;
                }
                continue;
            }
            j += 1;
        }
        self.enums.push(EnumModel { name, variants });
    }

    fn scan_const(&mut self, at: usize) {
        let Some(name_tok) = self.toks.get(at + 1) else {
            return;
        };
        if name_tok.kind != TokKind::Ident {
            return;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        // Walk (group-skipping, so the `[..]` of an array *type* is not
        // mistaken for the initializer) to the `=`.
        let mut i = at + 2;
        while i < self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct('=') {
                break;
            }
            if t.is_punct(';') {
                return;
            }
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                i = self.partner(i) + 1;
                continue;
            }
            i += 1;
        }
        let mut j = i + 1;
        while self.toks.get(j).is_some_and(|t| t.is_punct('&')) {
            j += 1;
        }
        let Some(open) = self.toks.get(j) else {
            return;
        };
        if !open.is_punct('[') {
            return;
        }
        let close = self.partner(j);
        let values: Vec<String> = (j + 1..close)
            .filter(|&k| self.toks[k].kind == TokKind::Str)
            .map(|k| self.toks[k].text.clone())
            .collect();
        if !values.is_empty() {
            self.str_consts.push(StrArrayConst { name, values, line });
        }
    }

    /// Leaf-site scan: metric macros, env literals, catch_unwind args.
    fn scan_leaf_sites(&mut self) {
        let mut metric_sites = Vec::new();
        let mut env_sites = Vec::new();
        let mut catch_ranges = Vec::new();
        for i in 0..self.toks.len() {
            let t = &self.toks[i];
            if t.kind == TokKind::Str && is_env_name(&t.text) {
                env_sites.push(EnvSite {
                    name: t.text.clone(),
                    line: t.line,
                    col: t.col,
                    is_test: self.scrub.is_test_line(t.line),
                });
            }
            if t.is_ident("catch_unwind") {
                if let Some(n) = self.toks.get(i + 1) {
                    if n.is_punct('(') {
                        catch_ranges.push((i + 1, self.partner(i + 1)));
                    }
                }
            }
            let kind = match t.text.as_str() {
                "counter" => Some(MetricKind::Counter),
                "histogram" => Some(MetricKind::Histogram),
                "timer" => Some(MetricKind::Timer),
                _ => None,
            };
            let Some(kind) = kind else { continue };
            if t.kind != TokKind::Ident {
                continue;
            }
            let Some(bang) = self.toks.get(i + 1) else {
                continue;
            };
            let Some(open) = self.toks.get(i + 2) else {
                continue;
            };
            if !bang.is_punct('!') || !open.is_punct('(') {
                continue;
            }
            let close = self.partner(i + 2);
            // First argument: a string literal is the metric name.
            let name = self
                .toks
                .get(i + 3)
                .filter(|a| a.kind == TokKind::Str)
                .map(|a| a.text.clone());
            // Second argument: the class ident (counter/histogram).
            let mut class = None;
            if kind != MetricKind::Timer {
                let mut k = i + 3;
                let mut comma = None;
                while k < close {
                    if self.toks[k].is_punct(',') {
                        comma = Some(k);
                        break;
                    }
                    if self.toks[k].is_punct('(') || self.toks[k].is_punct('[') {
                        k = self.partner(k) + 1;
                        continue;
                    }
                    k += 1;
                }
                if let Some(c) = comma {
                    class = (c + 1..close)
                        .take_while(|&k| !self.toks[k].is_punct(','))
                        .find(|&k| self.toks[k].kind == TokKind::Ident)
                        .map(|k| self.toks[k].text.clone());
                }
            }
            metric_sites.push(MetricSite {
                kind,
                name,
                class,
                line: t.line,
                col: t.col,
                is_test: self.scrub.is_test_line(t.line),
            });
        }
        self.metric_sites = metric_sites;
        self.env_sites = env_sites;
        self.catch_ranges = catch_ranges;
    }
}

/// Whether a cooked string literal is a `CA_*` env-var name.
fn is_env_name(s: &str) -> bool {
    s.len() > 3
        && s.starts_with("CA_")
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// Map of 1-based line → stripped `///` doc-comment text.
fn doc_lines(comments: &[lexer::Comment]) -> std::collections::BTreeMap<usize, String> {
    comments
        .iter()
        .filter(|c| c.text.starts_with("///") && !c.text.starts_with("////"))
        .map(|c| (c.line, c.text.trim_start_matches('/').trim().to_string()))
        .collect()
}

/// Pairs `(){}[]` tokens; returns partner index per token.
fn pair_brackets(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut paren = Vec::new();
    let mut brace = Vec::new();
    let mut square = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_bytes().first() {
            Some(b'(') => paren.push(i),
            Some(b'{') => brace.push(i),
            Some(b'[') => square.push(i),
            Some(b')') => {
                if let Some(o) = paren.pop() {
                    out[o] = Some(i);
                    out[i] = Some(o);
                }
            }
            Some(b'}') => {
                if let Some(o) = brace.pop() {
                    out[o] = Some(i);
                    out[i] = Some(o);
                }
            }
            Some(b']') => {
                if let Some(o) = square.pop() {
                    out[o] = Some(i);
                    out[i] = Some(o);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("ca-test", "crates/test/src/lib.rs", src)
    }

    #[test]
    fn fns_get_impl_context_and_bodies() {
        let m = model(
            "struct Engine;\nimpl Engine {\n    fn start(&self) { run(); }\n}\nfn free() {}\nfn decl();\n",
        );
        let start = m.fns.iter().find(|f| f.name == "start").unwrap();
        assert_eq!(start.impl_type.as_deref(), Some("Engine"));
        assert!(start.body.is_some());
        let free = m.fns.iter().find(|f| f.name == "free").unwrap();
        assert_eq!(free.impl_type, None);
        assert!(m
            .fns
            .iter()
            .find(|f| f.name == "decl")
            .unwrap()
            .body
            .is_none());
    }

    #[test]
    fn impl_trait_for_type_resolves_to_type() {
        let m = model("impl fmt::Display for Engine {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(
            m.fns[0].impl_type.as_deref(),
            Some("Engine"),
            "trait impl must attribute fns to the self type"
        );
    }

    #[test]
    fn lock_fields_and_statics() {
        let m = model(
            "struct S {\n    pub state: Mutex<Inner>,\n    changed: Condvar,\n    n: usize,\n}\nstatic REG: Mutex<Tables> = Mutex::new(Tables::new());\n",
        );
        assert_eq!(m.lock_fields.len(), 2);
        assert_eq!(m.lock_fields[0].field, "state");
        assert_eq!(m.lock_fields[0].owner, "S");
        assert_eq!(m.lock_fields[0].kind, LockKind::Mutex);
        assert_eq!(m.lock_fields[1].kind, LockKind::Condvar);
        assert_eq!(m.lock_statics.len(), 1);
        assert_eq!(m.lock_statics[0].name, "REG");
    }

    #[test]
    fn enum_variants_carry_docs() {
        let m = model(
            "pub enum Request {\n    /// Liveness probe (wire v1).\n    Ping,\n    /// Characterize one target (wire v1).\n    Characterize { id: u64 },\n}\n",
        );
        assert_eq!(m.enums.len(), 1);
        let e = &m.enums[0];
        assert_eq!(e.name, "Request");
        assert_eq!(e.variants.len(), 2);
        assert!(e.variants[0].doc.contains("wire v1"));
        assert_eq!(e.variants[1].name, "Characterize");
    }

    #[test]
    fn const_str_arrays_extracted() {
        let m =
            model("pub const PREFIXES: [&str; 2] = [\n    \"ca_exec.\",\n    \"ca_sim.\",\n];\n");
        assert_eq!(m.str_consts.len(), 1);
        assert_eq!(m.str_consts[0].name, "PREFIXES");
        assert_eq!(m.str_consts[0].values, vec!["ca_exec.", "ca_sim."]);
    }

    #[test]
    fn metric_sites_parse_name_and_class() {
        let m = model(
            "fn f() {\n    counter!(\"ca_x.hits\", Outcome).inc();\n    histogram!(\"ca_x.sizes\", Ops, &[1, 2]).observe(n);\n    timer!(\"ca_x.wall\").record(d);\n    counter!(DYNAMIC, Ops).inc();\n}\n",
        );
        assert_eq!(m.metric_sites.len(), 4);
        assert_eq!(m.metric_sites[0].name.as_deref(), Some("ca_x.hits"));
        assert_eq!(m.metric_sites[0].class.as_deref(), Some("Outcome"));
        assert_eq!(m.metric_sites[1].kind, MetricKind::Histogram);
        assert_eq!(m.metric_sites[2].kind, MetricKind::Timer);
        assert_eq!(m.metric_sites[2].class, None);
        assert_eq!(m.metric_sites[3].name, None);
    }

    #[test]
    fn env_sites_match_ca_upper_names() {
        let m = model(
            "fn f() {\n    let a = std::env::var(\"CA_THREADS\");\n    let b = \"CA-SERVE-READY\";\n    let c = \"ca_exec.items\";\n}\n",
        );
        assert_eq!(m.env_sites.len(), 1);
        assert_eq!(m.env_sites[0].name, "CA_THREADS");
    }

    #[test]
    fn catch_unwind_ranges_cover_args() {
        let m = model("fn f() {\n    let r = catch_unwind(AssertUnwindSafe(|| body(x)));\n}\n");
        assert_eq!(m.catch_ranges.len(), 1);
        let (o, c) = m.catch_ranges[0];
        assert!(m.toks[o].is_punct('('));
        assert!(m.toks[c].is_punct(')'));
    }

    #[test]
    fn mutex_param_helpers_flagged() {
        let m = model("fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> { m.lock().unwrap() }\nfn plain(x: usize) {}\n");
        assert!(m.fns[0].mutex_param);
        assert!(!m.fns[1].mutex_param);
    }
}
