//! The rule table: one entry per written invariant (DESIGN.md §10).
//!
//! Rules are deliberately *syntactic*: each names the tokens whose mere
//! presence in scope is the violation. That trades precision for
//! auditability — a rule is one struct literal, and adding one means
//! adding a token list, a scope, and two fixtures. Sites where the
//! token is legitimate carry a `// ca-audit: allow(rule, reason)`
//! pragma, which is itself audited (must parse, must name a known rule,
//! must suppress something).

/// Which crates a rule applies to. Crate names are package names
/// (`ca-core`, …); the facade crate is `cell-aware`.
#[derive(Debug, Clone, Copy)]
pub enum Scope {
    /// Applies only to the named crates.
    Only(&'static [&'static str]),
    /// Applies to every crate except the named ones.
    Except(&'static [&'static str]),
}

impl Scope {
    /// Whether the rule covers `crate_name`.
    pub fn applies(&self, crate_name: &str) -> bool {
        match self {
            Scope::Only(list) => list.contains(&crate_name),
            Scope::Except(list) => !list.contains(&crate_name),
        }
    }
}

/// One audit rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleSpec {
    /// Stable id (`D1`..`D7`).
    pub id: &'static str,
    /// What the rule forbids (used in finding messages).
    pub summary: &'static str,
    /// One-line fix hint.
    pub hint: &'static str,
    /// Forbidden tokens, matched with identifier boundaries after
    /// comments and string literals are scrubbed.
    pub tokens: &'static [&'static str],
    /// Crates in scope.
    pub scope: Scope,
    /// Whether `#[cfg(test)]` regions are scanned too.
    pub include_tests: bool,
}

/// Crates whose outputs are canonical: their bytes are hashed, cached,
/// exported and compared across thread counts and crash-resume.
const CANONICAL: &[&str] = &[
    "ca-core",
    "ca-netlist",
    "ca-defects",
    "ca-sim",
    "ca-store",
    "ca-shard",
    "ca-serve",
];

/// The standard rule set, in rule-id order.
pub fn rules() -> &'static [RuleSpec] {
    &[
        RuleSpec {
            id: "D1",
            summary: "hash-ordered collection in a canonical code path",
            hint: "use BTreeMap/BTreeSet (or collect + sort) so iteration order is canonical",
            tokens: &["HashMap", "HashSet"],
            scope: Scope::Only(CANONICAL),
            include_tests: false,
        },
        RuleSpec {
            id: "D2",
            summary: "ambient clock read outside ca-obs",
            hint: "read time through ca_obs::clock (Stopwatch for telemetry, Deadline for budgets)",
            tokens: &["Instant::now", "SystemTime::now"],
            scope: Scope::Except(&["ca-obs", "ca-bench"]),
            include_tests: false,
        },
        RuleSpec {
            id: "D3",
            summary: "ambient randomness outside ca-rng",
            hint: "draw randomness from a seeded ca_rng generator threaded from the caller",
            tokens: &[
                "thread_rng",
                "from_entropy",
                "rand::random",
                "getrandom",
                "RandomState",
            ],
            scope: Scope::Except(&["ca-rng"]),
            include_tests: false,
        },
        RuleSpec {
            id: "D4",
            summary: "raw filesystem write outside the durability layer",
            hint: "route durable writes through ca_store::write_atomic or Store::append",
            tokens: &["fs::write", "File::create", "OpenOptions"],
            scope: Scope::Except(&[]),
            include_tests: true,
        },
        RuleSpec {
            id: "D5",
            summary: "ad-hoc stdout/stderr in a library crate",
            hint: "emit a structured ca_obs event (warn/info_status) or ca_obs::protocol_marker",
            tokens: &["println!", "print!", "eprintln!", "eprint!", "dbg!"],
            scope: Scope::Except(&["ca-obs", "ca-bench", "ca-audit"]),
            include_tests: false,
        },
        RuleSpec {
            id: "D6",
            summary: "`unsafe` without a `// SAFETY:` comment",
            hint: "document the upheld invariant in a `// SAFETY:` comment directly above",
            tokens: &["unsafe"],
            scope: Scope::Except(&[]),
            include_tests: true,
        },
        RuleSpec {
            id: "D7",
            summary: "partial float comparison feeding canonical ordering",
            hint: "use f32/f64 `total_cmp` so NaN cannot poison a canonical sort",
            tokens: &[".partial_cmp"],
            scope: Scope::Only(&[
                "ca-core",
                "ca-netlist",
                "ca-defects",
                "ca-store",
                "ca-shard",
                "ca-serve",
                "ca-sim",
                "ca-ml",
            ]),
            include_tests: false,
        },
    ]
}

/// One model-driven analysis rule (D8–D12). Unlike [`RuleSpec`], these
/// have no token list: their logic lives in [`crate::checks`]; this
/// table only carries the identity used by `--list-rules` and the
/// pragma validator.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisRule {
    /// Stable id (`D8`..`D12`).
    pub id: &'static str,
    /// What the rule forbids.
    pub summary: &'static str,
    /// One-line fix hint.
    pub hint: &'static str,
}

/// The analysis rule families, in rule-id order.
pub fn analysis_rules() -> &'static [AnalysisRule] {
    &[
        AnalysisRule {
            id: "D8",
            summary: "lock-order hazard: nested acquisition or a cycle in the static order graph",
            hint: "acquire locks in one global order; audit a deliberate nesting with a D8 pragma",
        },
        AnalysisRule {
            id: "D9",
            summary:
                "panic path in a supervised region (serve handlers, shard workers, exec items)",
            hint: "supervise the panic with catch_unwind or annotate `// PANIC-OK: <reason>`",
        },
        AnalysisRule {
            id: "D10",
            summary:
                "protocol drift: wire tag missing an encoder arm, decoder arm, cap or version note",
            hint: "keep encoder, decoder, size cap and wire-version note in lockstep per tag",
        },
        AnalysisRule {
            id: "D11",
            summary: "metric outside the taxonomy, prefix set, or colliding with another signature",
            hint: "name metrics `<crate>.<subsystem>.<event>` under an INSTRUMENTED_PREFIXES entry",
        },
        AnalysisRule {
            id: "D12",
            summary: "env-var drift between `CA_*` reads in code and the README env-var table",
            hint: "keep the README `ca-audit:env-table` rows in lockstep with the code",
        },
    ]
}

/// Every rule id a pragma may name.
pub fn known_rule_ids() -> Vec<&'static str> {
    rules()
        .iter()
        .map(|r| r.id)
        .chain(analysis_rules().iter().map(|r| r.id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_ordered() {
        let ids: Vec<&str> = rules().iter().map(|r| r.id).collect();
        let mut sorted = ids.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn analysis_rules_extend_the_table() {
        let ids: Vec<&str> = analysis_rules().iter().map(|r| r.id).collect();
        assert_eq!(ids, ["D8", "D9", "D10", "D11", "D12"]);
        assert_eq!(known_rule_ids().len(), 12);
        for rule in analysis_rules() {
            assert!(!rule.summary.is_empty(), "{}", rule.id);
            assert!(!rule.hint.is_empty(), "{}", rule.id);
        }
    }

    #[test]
    fn every_rule_has_tokens_and_hint() {
        for rule in rules() {
            assert!(!rule.tokens.is_empty(), "{}", rule.id);
            assert!(!rule.hint.is_empty(), "{}", rule.id);
            assert!(!rule.summary.is_empty(), "{}", rule.id);
        }
    }
}
