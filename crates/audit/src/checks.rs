//! The analysis rule families D8–D12 (DESIGN.md §15).
//!
//! Each check walks the [`crate::model::FileModel`]s of the audited
//! source set and emits findings through [`Ctx`], which routes them
//! past the suppression pragmas and records which pragmas fired.

use crate::lexer::TokKind;
use crate::model::{adjacent, FileModel, LockKind, MetricKind};
use crate::{Finding, Severity};
use std::collections::{BTreeMap, BTreeSet};

/// Shared check context: the parsed files, the optional README, the
/// findings so far and the pragma-usage ledger.
pub struct Ctx<'a> {
    /// Parsed source files.
    pub files: &'a [FileModel],
    /// README `(label, content)` for D12; absent in single-file scans.
    pub readme: Option<(&'a str, &'a str)>,
    /// Findings accumulated by the checks.
    pub findings: Vec<Finding>,
    /// `(file label, pragma line)` pairs that suppressed something.
    pub used: BTreeSet<(String, usize)>,
}

impl<'a> Ctx<'a> {
    /// Emits a finding unless an `allow(rule, ..)` pragma covers it;
    /// returns whether the finding was actually emitted.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        fi: usize,
        line: usize,
        col: usize,
        rule: &'static str,
        severity: Severity,
        message: String,
        hint: &'static str,
    ) -> bool {
        let file = &self.files[fi];
        if let Some(pline) = file.scrub.allow_covering(line, rule) {
            self.used.insert((file.label.clone(), pline));
            return false;
        }
        self.findings.push(Finding {
            file: file.label.clone(),
            line,
            col,
            rule,
            severity,
            message,
            hint,
        });
        true
    }

    /// Emits at a raw label (README rows, cycle summaries) with no
    /// pragma routing.
    #[allow(clippy::too_many_arguments)]
    fn emit_raw(
        &mut self,
        label: &str,
        line: usize,
        col: usize,
        rule: &'static str,
        severity: Severity,
        message: String,
        hint: &'static str,
    ) {
        self.findings.push(Finding {
            file: label.to_string(),
            line,
            col,
            rule,
            severity,
            message,
            hint,
        });
    }
}

/// Runs every analysis rule family.
pub fn run_all(ctx: &mut Ctx<'_>) {
    check_lock_order(ctx);
    check_panic_path(ctx);
    check_protocol_drift(ctx);
    check_metric_inventory(ctx);
    check_env_inventory(ctx);
}

const D8_HINT: &str =
    "acquire locks in one global order; audit a deliberate nesting with `// ca-audit: allow(D8, <why>)`";
const D9_HINT: &str = "supervise the panic with catch_unwind or annotate `// PANIC-OK: <reason>`";
const D10_HINT: &str =
    "keep encoder arm, decoder arm, size cap and wire-version note in lockstep for every tag";
const D11_HINT: &str =
    "name metrics `<crate>.<subsystem>.<event>` under an INSTRUMENTED_PREFIXES entry";
const D12_HINT: &str =
    "keep the README `ca-audit:env-table` rows in lockstep with the `CA_*` reads in code";

// ---------------------------------------------------------------- D8

/// Crates whose locking is supervised by D8.
const D8_CRATES: &[&str] = &["ca-exec", "ca-serve", "ca-obs", "ca-core"];

#[derive(Clone)]
struct Site {
    fi: usize,
    line: usize,
    col: usize,
}

struct Edge {
    from: String,
    to: String,
    site: Site,
    direct: bool,
}

/// Per-crate lock landscape: lock fields/statics and the fn tables.
struct CrateLocks {
    fields: BTreeMap<String, Vec<(String, LockKind)>>,
    statics: BTreeMap<String, LockKind>,
    helpers: BTreeSet<String>,
    fn_names: BTreeSet<String>,
}

impl CrateLocks {
    fn build(files: &[FileModel], crate_name: &str) -> CrateLocks {
        let mut out = CrateLocks {
            fields: BTreeMap::new(),
            statics: BTreeMap::new(),
            helpers: BTreeSet::new(),
            fn_names: BTreeSet::new(),
        };
        for f in files.iter().filter(|f| f.crate_name == crate_name) {
            for lf in &f.lock_fields {
                out.fields
                    .entry(lf.field.clone())
                    .or_default()
                    .push((lf.owner.clone(), lf.kind));
            }
            for ls in &f.lock_statics {
                out.statics.insert(ls.name.clone(), ls.kind);
            }
            for func in &f.fns {
                out.fn_names.insert(func.name.clone());
                if func.mutex_param {
                    out.helpers.insert(func.name.clone());
                }
            }
        }
        out
    }

    /// Resolves an identifier to a lock class (`crate/Owner.field` or
    /// `crate/STATIC`). Condvars resolve to `None` — waiting adds no
    /// lock class.
    fn resolve(&self, crate_name: &str, name: &str, impl_type: Option<&str>) -> Option<String> {
        if let Some(kind) = self.statics.get(name) {
            return match kind {
                LockKind::Condvar => None,
                _ => Some(format!("{crate_name}/{name}")),
            };
        }
        let cands = self.fields.get(name)?;
        let (owner, kind) = cands
            .iter()
            .find(|(o, _)| impl_type == Some(o.as_str()))
            .or_else(|| cands.first())?;
        match kind {
            LockKind::Condvar => None,
            _ => Some(format!("{crate_name}/{owner}.{name}")),
        }
    }
}

struct Guard {
    class: String,
    name: Option<String>,
    depth: usize,
    transient: bool,
}

fn check_lock_order(ctx: &mut Ctx<'_>) {
    let crates: BTreeSet<&str> = ctx
        .files
        .iter()
        .map(|f| f.crate_name.as_str())
        .filter(|c| D8_CRATES.contains(c))
        .collect();
    let mut edges: Vec<Edge> = Vec::new();
    let mut fn_locks: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut fn_callees: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut held_calls: Vec<(String, Vec<String>, String, Site)> = Vec::new();

    for crate_name in &crates {
        let locks = CrateLocks::build(ctx.files, crate_name);
        for fi in 0..ctx.files.len() {
            if ctx.files[fi].crate_name != *crate_name {
                continue;
            }
            for fx in 0..ctx.files[fi].fns.len() {
                let f = &ctx.files[fi].fns[fx];
                if f.is_test || f.mutex_param || f.body.is_none() {
                    continue;
                }
                analyze_fn_locks(
                    ctx,
                    fi,
                    fx,
                    &locks,
                    &mut edges,
                    &mut fn_locks,
                    &mut fn_callees,
                    &mut held_calls,
                );
            }
        }
    }

    // Transitive lock sets over the same-crate, name-matched call
    // graph, then call-derived order edges (cycle evidence only — a
    // call that transitively takes a lock is not a local nesting).
    let mut trans = fn_locks.clone();
    loop {
        let mut changed = false;
        for (key, callees) in &fn_callees {
            for callee in callees {
                let add: Vec<String> = trans
                    .get(&(key.0.clone(), callee.clone()))
                    .map(|s| s.iter().cloned().collect())
                    .unwrap_or_default();
                let entry = trans.entry(key.clone()).or_default();
                for c in add {
                    changed |= entry.insert(c);
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (crate_name, held, callee, site) in &held_calls {
        let Some(callee_locks) = trans.get(&(crate_name.clone(), callee.clone())) else {
            continue;
        };
        for to in callee_locks {
            for from in held {
                if from != to {
                    edges.push(Edge {
                        from: from.clone(),
                        to: to.clone(),
                        site: site.clone(),
                        direct: false,
                    });
                }
            }
        }
    }

    report_lock_cycles(ctx, &edges);
}

/// Walks one fn body, tracking held guards and emitting D8 nesting
/// findings; records order edges and call-graph facts.
#[allow(clippy::too_many_arguments)]
fn analyze_fn_locks(
    ctx: &mut Ctx<'_>,
    fi: usize,
    fx: usize,
    locks: &CrateLocks,
    edges: &mut Vec<Edge>,
    fn_locks: &mut BTreeMap<(String, String), BTreeSet<String>>,
    fn_callees: &mut BTreeMap<(String, String), BTreeSet<String>>,
    held_calls: &mut Vec<(String, Vec<String>, String, Site)>,
) {
    let file = &ctx.files[fi];
    let f = &file.fns[fx];
    let crate_name = file.crate_name.clone();
    let fn_key = (crate_name.clone(), f.name.clone());
    let impl_type = f.impl_type.clone();
    let (bo, bc) = f.body.unwrap_or((0, 0));
    let toks = &file.toks;

    let mut held: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    // Deferred emissions (can't borrow ctx mutably mid-walk).
    let mut nestings: Vec<(Site, String, String, bool)> = Vec::new();
    let mut acquired: BTreeSet<String> = BTreeSet::new();
    let mut callees: BTreeSet<String> = BTreeSet::new();
    let mut while_held: Vec<(Vec<String>, String, Site)> = Vec::new();

    let mut i = bo;
    while i <= bc && i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            i += 1;
            continue;
        }
        if t.is_punct(';') {
            held.retain(|g| !g.transient);
            i += 1;
            continue;
        }
        // `drop(guard)` releases a named guard early.
        if t.is_ident("drop")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident)
            && toks.get(i + 3).is_some_and(|n| n.is_punct(')'))
        {
            let name = toks[i + 2].text.clone();
            held.retain(|g| g.name.as_deref() != Some(name.as_str()));
            i += 4;
            continue;
        }
        // Method acquisition: `recv.lock()` / `recv.read()` / `.write()`.
        if t.is_punct('.') && i > bo {
            let is_acq = toks
                .get(i + 1)
                .is_some_and(|m| m.is_ident("lock") || m.is_ident("read") || m.is_ident("write"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct('('));
            if is_acq && toks[i - 1].kind == TokKind::Ident {
                let recv = &toks[i - 1].text;
                if let Some(class) = locks.resolve(&crate_name, recv, impl_type.as_deref()) {
                    let site_tok = &toks[i + 1];
                    let site = Site {
                        fi,
                        line: site_tok.line,
                        col: site_tok.col,
                    };
                    let call_end = file.partner(i + 2);
                    record_acquisition(
                        file,
                        i,
                        call_end,
                        bo,
                        depth,
                        &class,
                        &site,
                        &mut held,
                        &mut nestings,
                    );
                    acquired.insert(class);
                    i = call_end + 1;
                    continue;
                }
            }
        }
        // Free-fn call: helper acquisition or call-graph edge.
        if t.kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && !(i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_ident("fn")))
        {
            let name = t.text.clone();
            if locks.helpers.contains(&name) {
                let close = file.partner(i + 1);
                if let Some(arg) = first_arg_ident(file, i + 1, close) {
                    if let Some(class) = locks.resolve(&crate_name, &arg, impl_type.as_deref()) {
                        let site = Site {
                            fi,
                            line: t.line,
                            col: t.col,
                        };
                        record_acquisition(
                            file,
                            i,
                            close,
                            bo,
                            depth,
                            &class,
                            &site,
                            &mut held,
                            &mut nestings,
                        );
                        acquired.insert(class);
                    }
                }
            } else if locks.fn_names.contains(&name) && name != f.name {
                callees.insert(name.clone());
                if !held.is_empty() {
                    while_held.push((
                        held.iter().map(|g| g.class.clone()).collect(),
                        name,
                        Site {
                            fi,
                            line: t.line,
                            col: t.col,
                        },
                    ));
                }
            }
        } else if t.kind == TokKind::Ident
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            && locks.fn_names.contains(&t.text)
        {
            // Same-crate method call (name-matched).
            callees.insert(t.text.clone());
            if !held.is_empty() {
                while_held.push((
                    held.iter().map(|g| g.class.clone()).collect(),
                    t.text.clone(),
                    Site {
                        fi,
                        line: t.line,
                        col: t.col,
                    },
                ));
            }
        }
        i += 1;
    }

    for (site, held_class, new_class, reentrant) in nestings {
        let msg = if reentrant {
            format!("re-entrant acquisition: `{new_class}` is already held")
        } else {
            format!("`{new_class}` acquired while `{held_class}` is held")
        };
        let emitted = ctx.emit(
            site.fi,
            site.line,
            site.col,
            "D8",
            Severity::Error,
            msg,
            D8_HINT,
        );
        if !reentrant {
            edges.push(Edge {
                from: held_class,
                to: new_class,
                site,
                direct: true,
            });
            let _ = emitted; // pragma'd nestings still feed the graph
        }
    }
    fn_locks.entry(fn_key.clone()).or_default().extend(acquired);
    fn_callees.entry(fn_key).or_default().extend(callees);
    for (h, c, s) in while_held {
        held_calls.push((crate_name.clone(), h, c, s));
    }
}

/// Registers one acquisition: nesting records against held guards,
/// then the new guard with its binding lifetime.
#[allow(clippy::too_many_arguments)]
fn record_acquisition(
    file: &FileModel,
    acq_idx: usize,
    call_end: usize,
    body_open: usize,
    depth: usize,
    class: &str,
    site: &Site,
    held: &mut Vec<Guard>,
    nestings: &mut Vec<(Site, String, String, bool)>,
) {
    for g in held.iter() {
        nestings.push((
            site.clone(),
            g.class.clone(),
            class.to_string(),
            g.class == class,
        ));
    }
    let (name, until_block) = binding_of(file, acq_idx, call_end, body_open);
    held.push(Guard {
        class: class.to_string(),
        name,
        depth,
        transient: !until_block,
    });
}

/// Determines how long the guard produced at `acq_idx` lives: a plain
/// `let g = <acquire>(.unwrap()/…)?;` binds to end of block; anything
/// else (chained access, expression position) is a temporary that dies
/// at the statement's `;`.
fn binding_of(
    file: &FileModel,
    acq_idx: usize,
    call_end: usize,
    body_open: usize,
) -> (Option<String>, bool) {
    let toks = &file.toks;
    // Statement start: walk back to the previous `;`, `{`, `}` or `=>`.
    let mut s = acq_idx;
    while s > body_open {
        let t = &toks[s - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_punct('>') && s >= 2 && toks[s - 2].is_punct('=') && adjacent(&toks[s - 2], t) {
            break;
        }
        s -= 1;
    }
    if !toks.get(s).is_some_and(|t| t.is_ident("let")) {
        return (None, false);
    }
    let mut j = s + 1;
    if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    let name = toks
        .get(j)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone());
    // Tail after the acquiring call: only error-handling chains and
    // `?` may follow before the `;` for the guard to be block-lived.
    let mut k = call_end + 1;
    loop {
        let Some(t) = toks.get(k) else {
            return (name, false);
        };
        if t.is_punct(';') {
            return (name, true);
        }
        if t.is_punct('?') {
            k += 1;
            continue;
        }
        if t.is_punct('.')
            && toks.get(k + 1).is_some_and(|m| {
                matches!(
                    m.text.as_str(),
                    "unwrap" | "expect" | "unwrap_or_else" | "unwrap_or" | "map_err"
                )
            })
            && toks.get(k + 2).is_some_and(|n| n.is_punct('('))
        {
            k = file.partner(k + 2) + 1;
            continue;
        }
        return (name, false);
    }
}

/// Last identifier of the first argument inside `(open..close)`.
fn first_arg_ident(file: &FileModel, open: usize, close: usize) -> Option<String> {
    let toks = &file.toks;
    let mut last = None;
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.is_punct(',') {
            break;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            k = file.partner(k) + 1;
            continue;
        }
        if t.kind == TokKind::Ident {
            last = Some(t.text.clone());
        }
        k += 1;
    }
    last
}

/// SCC detection over the order graph; one error per non-trivial SCC.
fn report_lock_cycles(ctx: &mut Ctx<'_>, edges: &[Edge]) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    // Kosaraju: order by completion, then assign on the transpose.
    let mut order: Vec<&str> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &n in &nodes {
        if seen.contains(n) {
            continue;
        }
        // Iterative DFS with an explicit done-marker frame.
        let mut stack: Vec<(&str, bool)> = vec![(n, false)];
        while let Some((v, done)) = stack.pop() {
            if done {
                order.push(v);
                continue;
            }
            if !seen.insert(v) {
                continue;
            }
            stack.push((v, true));
            if let Some(next) = adj.get(v) {
                for &w in next {
                    if !seen.contains(w) {
                        stack.push((w, false));
                    }
                }
            }
        }
    }
    let mut radj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        radj.entry(&e.to).or_default().insert(&e.from);
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut n_comp = 0usize;
    for &n in order.iter().rev() {
        if comp.contains_key(n) {
            continue;
        }
        let mut stack = vec![n];
        while let Some(v) = stack.pop() {
            if comp.contains_key(v) {
                continue;
            }
            comp.insert(v, n_comp);
            if let Some(prev) = radj.get(v) {
                for &w in prev {
                    if !comp.contains_key(w) {
                        stack.push(w);
                    }
                }
            }
        }
        n_comp += 1;
    }
    for c in 0..n_comp {
        let members: Vec<&str> = comp
            .iter()
            .filter(|(_, &cc)| cc == c)
            .map(|(&n, _)| n)
            .collect();
        if members.len() < 2 {
            continue;
        }
        // Representative site: the first direct edge inside the SCC
        // (fall back to a derived one), by (file, line, col).
        let mut in_scc: Vec<&Edge> = edges
            .iter()
            .filter(|e| members.contains(&e.from.as_str()) && members.contains(&e.to.as_str()))
            .collect();
        in_scc.sort_by_key(|e| {
            (
                !e.direct,
                ctx.files[e.site.fi].label.clone(),
                e.site.line,
                e.site.col,
            )
        });
        let Some(rep) = in_scc.first() else { continue };
        let label = ctx.files[rep.site.fi].label.clone();
        let (line, col) = (rep.site.line, rep.site.col);
        ctx.emit_raw(
            &label,
            line,
            col,
            "D8",
            Severity::Error,
            format!("lock-order cycle between {}", members.join(" <-> ")),
            D8_HINT,
        );
    }
}

// ---------------------------------------------------------------- D9

/// Crates whose request/worker/item bodies are panic-supervised.
const D9_CRATES: &[&str] = &["ca-serve", "ca-shard", "ca-exec"];

fn check_panic_path(ctx: &mut Ctx<'_>) {
    let mut sites: Vec<(usize, usize, usize, String)> = Vec::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        if !D9_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        for f in &file.fns {
            if f.is_test {
                continue;
            }
            let Some((bo, bc)) = f.body else { continue };
            let toks = &file.toks;
            for i in bo..=bc.min(toks.len().saturating_sub(1)) {
                let t = &toks[i];
                // `.unwrap()` / `.expect(..)`.
                if t.is_punct('.')
                    && toks
                        .get(i + 1)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct('('))
                {
                    let m = &toks[i + 1];
                    if !exempt(file, i + 1, m.line) {
                        sites.push((fi, m.line, m.col, format!("`.{}()` may panic", m.text)));
                    }
                }
                // Slice/array index `x[i]` (ranges are out of scope).
                if t.is_punct('[') && i > bo {
                    let prev = &toks[i - 1];
                    // A keyword before `[` means a slice pattern
                    // (`let [a, b] = ..`), not an index expression.
                    let keyword = matches!(
                        prev.text.as_str(),
                        "let"
                            | "ref"
                            | "mut"
                            | "in"
                            | "if"
                            | "else"
                            | "while"
                            | "for"
                            | "match"
                            | "return"
                            | "move"
                            | "as"
                            | "box"
                            | "break"
                            | "continue"
                    );
                    let indexes = (prev.kind == TokKind::Ident && !keyword)
                        || prev.is_punct(')')
                        || prev.is_punct(']');
                    let close = file.partner(i);
                    if indexes
                        && close > i + 1
                        && !has_top_level_range(file, i, close)
                        && !exempt(file, i, t.line)
                    {
                        sites.push((fi, t.line, t.col, "indexing may panic".to_string()));
                    }
                }
            }
        }
    }
    for (fi, line, col, what) in sites {
        ctx.emit(
            fi,
            line,
            col,
            "D9",
            Severity::Warning,
            format!("{what} in a supervised region"),
            D9_HINT,
        );
    }
}

/// D9 exemptions that don't need the pragma ledger: inside a
/// `catch_unwind(..)` argument, or annotated `// PANIC-OK:`.
fn exempt(file: &FileModel, idx: usize, line: usize) -> bool {
    file.catch_ranges.iter().any(|&(o, c)| o < idx && idx < c) || file.scrub.has_panic_ok(line)
}

/// Whether `(open..close)` contains a `..` at bracket top level.
fn has_top_level_range(file: &FileModel, open: usize, close: usize) -> bool {
    let toks = &file.toks;
    let mut k = open + 1;
    while k < close {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            k = file.partner(k) + 1;
            continue;
        }
        if t.is_punct('.')
            && toks
                .get(k + 1)
                .is_some_and(|n| n.is_punct('.') && adjacent(t, n))
        {
            return true;
        }
        k += 1;
    }
    false
}

// --------------------------------------------------------------- D10

#[derive(Default)]
struct TagSide {
    /// tag -> (variant name if known, site, decoder-guard-has-version).
    tags: BTreeMap<u64, (Option<String>, Site, bool)>,
    /// tag -> every `Head::Variant` path in the decoder arm body. Arm
    /// bodies construct nested enums (field decoders) before the outer
    /// variant, so the real variant is resolved against the encoder's
    /// enum name once both sides are known.
    cands: BTreeMap<u64, Vec<(String, String)>>,
    dups: Vec<(u64, Site)>,
    enum_name: Option<String>,
    has_wildcard: bool,
    fn_site: Option<Site>,
}

fn check_protocol_drift(ctx: &mut Ctx<'_>) {
    // (crate, direction) -> encoder/decoder tag tables.
    let mut enc: BTreeMap<(String, String), TagSide> = BTreeMap::new();
    let mut dec: BTreeMap<(String, String), TagSide> = BTreeMap::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        for f in &file.fns {
            if f.is_test || f.body.is_none() {
                continue;
            }
            let (is_enc, dir) = if let Some(d) = f.name.strip_prefix("encode_") {
                (true, d.to_string())
            } else if let Some(d) = f.name.strip_prefix("decode_") {
                (false, d.to_string())
            } else {
                continue;
            };
            let key = (file.crate_name.clone(), dir);
            let side = if is_enc {
                extract_encoder(file, fi, f.body.unwrap())
            } else {
                extract_decoder(file, fi, f.body.unwrap())
            };
            let Some(mut side) = side else { continue };
            side.fn_site = Some(Site {
                fi,
                line: f.line,
                col: f.col,
            });
            let table = if is_enc { &mut enc } else { &mut dec };
            let entry = table.entry(key).or_default();
            merge_side(entry, side);
        }
    }

    let keys: BTreeSet<(String, String)> = enc.keys().chain(dec.keys()).cloned().collect();
    for key in keys {
        let e = enc.remove(&key).unwrap_or_default();
        let mut d = dec.remove(&key).unwrap_or_default();
        if e.tags.is_empty() && d.tags.is_empty() {
            continue; // length-prefixed codecs with no tag byte (ca-shard)
        }
        resolve_decoder_variants(&mut d, e.enum_name.as_deref());
        let (crate_name, dir) = &key;
        for (tag, site) in e.dups.iter().chain(d.dups.iter()) {
            let s = site.clone();
            ctx.emit(
                s.fi,
                s.line,
                s.col,
                "D10",
                Severity::Error,
                format!("duplicate wire tag {tag} for direction `{dir}`"),
                D10_HINT,
            );
        }
        for (tag, (variant, site, _)) in &e.tags {
            match d.tags.get(tag) {
                None if !d.tags.is_empty() || d.fn_site.is_some() => {
                    let v = variant.clone().unwrap_or_else(|| format!("tag {tag}"));
                    ctx.emit(
                        site.fi,
                        site.line,
                        site.col,
                        "D10",
                        Severity::Error,
                        format!("`{v}` (tag {tag}) is encoded but has no decoder arm"),
                        D10_HINT,
                    );
                }
                Some((dvar, dsite, _)) => {
                    if let (Some(ev), Some(dv)) = (variant, dvar) {
                        if ev != dv {
                            ctx.emit(
                                dsite.fi,
                                dsite.line,
                                dsite.col,
                                "D10",
                                Severity::Error,
                                format!(
                                    "tag {tag} encodes `{ev}` but decodes `{dv}` (direction `{dir}`)"
                                ),
                                D10_HINT,
                            );
                        }
                    }
                }
                None => {}
            }
        }
        for (tag, (variant, site, _)) in &d.tags {
            if !e.tags.contains_key(tag) && (!e.tags.is_empty() || e.fn_site.is_some()) {
                let v = variant.clone().unwrap_or_else(|| format!("tag {tag}"));
                ctx.emit(
                    site.fi,
                    site.line,
                    site.col,
                    "D10",
                    Severity::Error,
                    format!("`{v}` (tag {tag}) is decoded but has no encoder arm"),
                    D10_HINT,
                );
            }
        }
        if let Some(fs) = &d.fn_site {
            if !d.tags.is_empty() && !d.has_wildcard {
                ctx.emit(
                    fs.fi,
                    fs.line,
                    fs.col,
                    "D10",
                    Severity::Error,
                    format!("decoder for `{dir}` has no wildcard arm rejecting unknown tags"),
                    D10_HINT,
                );
            }
        }
        check_caps(
            ctx,
            crate_name,
            dir,
            e.fn_site.as_ref().or(d.fn_site.as_ref()),
        );
        check_wire_docs(ctx, crate_name, dir, &e, &d);
    }
}

/// Fills each decoder tag's variant from its candidate paths: the one
/// whose head matches the encoder's enum, or — for decoder-only
/// directions — the first head that isn't a std wrapper or error type.
fn resolve_decoder_variants(d: &mut TagSide, encoder_enum: Option<&str>) {
    let guessed = encoder_enum.map(str::to_string).or_else(|| {
        d.cands
            .values()
            .flatten()
            .find(|(h, _)| {
                !matches!(h.as_str(), "Ok" | "Err" | "Some" | "None") && !h.ends_with("Error")
            })
            .map(|(h, _)| h.clone())
    });
    let Some(en) = guessed else { return };
    for (tag, info) in d.tags.iter_mut() {
        if info.0.is_none() {
            info.0 = d
                .cands
                .get(tag)
                .and_then(|cs| cs.iter().find(|(h, _)| *h == en).map(|(_, v)| v.clone()));
        }
    }
    d.enum_name.get_or_insert(en);
}

fn merge_side(into: &mut TagSide, from: TagSide) {
    for (tag, v) in from.tags {
        match into.tags.entry(tag) {
            std::collections::btree_map::Entry::Occupied(_) => into.dups.push((tag, v.1.clone())),
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(v);
            }
        }
    }
    for (tag, cs) in from.cands {
        into.cands.entry(tag).or_default().extend(cs);
    }
    into.dups.extend(from.dups);
    into.enum_name = into.enum_name.take().or(from.enum_name);
    into.has_wildcard |= from.has_wildcard;
    into.fn_site = into.fn_site.take().or(from.fn_site);
}

/// A `match` arm: pattern and body token ranges (`[start, end)`).
struct Arm {
    pat: (usize, usize),
    body: (usize, usize),
}

/// Iterates the arms of the match whose brace pair is `(open, close)`.
fn match_arms(file: &FileModel, open: usize, close: usize) -> Vec<Arm> {
    let toks = &file.toks;
    let mut arms = Vec::new();
    let mut i = open + 1;
    while i < close {
        let pat_start = i;
        let mut arrow = None;
        while i < close {
            let t = &toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                i = file.partner(i) + 1;
                continue;
            }
            if file.is_fat_arrow(i) {
                arrow = Some(i);
                break;
            }
            i += 1;
        }
        let Some(arrow) = arrow else { break };
        let body_start = arrow + 2;
        let body_end;
        if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
            body_end = file.partner(body_start) + 1;
            i = body_end;
            if toks.get(i).is_some_and(|t| t.is_punct(',')) {
                i += 1;
            }
        } else {
            let mut j = body_start;
            while j < close {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    j = file.partner(j) + 1;
                    continue;
                }
                if t.is_punct(',') {
                    break;
                }
                j += 1;
            }
            body_end = j;
            i = j + 1;
        }
        arms.push(Arm {
            pat: (pat_start, arrow),
            body: (body_start, body_end),
        });
    }
    arms
}

/// All `match` brace pairs in a body, in source order.
fn find_matches(file: &FileModel, bo: usize, bc: usize) -> Vec<(usize, usize)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = bo;
    while i <= bc && i < toks.len() {
        if toks[i].is_ident("match") {
            let mut j = i + 1;
            while j <= bc && j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    j = file.partner(j) + 1;
                    continue;
                }
                if t.is_punct('{') {
                    out.push((j, file.partner(j)));
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// First `A::B` path in `[from, to)` matching `enum_name` (or any
/// plausibly enum-like path when the enum is unknown).
fn first_variant_path(
    file: &FileModel,
    from: usize,
    to: usize,
    enum_name: Option<&str>,
) -> Option<(String, String)> {
    let toks = &file.toks;
    let mut fallback = None;
    let mut k = from;
    while k + 3 < toks.len() && k < to {
        if toks[k].kind == TokKind::Ident
            && file.is_path_sep(k + 1)
            && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let a = toks[k].text.clone();
            let b = toks[k + 3].text.clone();
            let caps = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
            if caps(&a) && caps(&b) {
                if enum_name == Some(a.as_str()) {
                    return Some((a, b));
                }
                if enum_name.is_none()
                    && fallback.is_none()
                    && !matches!(a.as_str(), "Ok" | "Err" | "Some" | "None")
                    && !a.ends_with("Error")
                {
                    fallback = Some((a, b));
                }
            }
        }
        k += 1;
    }
    if enum_name.is_none() {
        fallback
    } else {
        None
    }
}

/// Every `Head::Variant` path in `[from, to)` with a capitalised head
/// that isn't a std wrapper, in source order.
fn all_variant_paths(file: &FileModel, from: usize, to: usize) -> Vec<(String, String)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut k = from;
    while k + 3 < toks.len() && k < to {
        if toks[k].kind == TokKind::Ident
            && file.is_path_sep(k + 1)
            && toks.get(k + 3).is_some_and(|t| t.kind == TokKind::Ident)
        {
            let a = toks[k].text.clone();
            let b = toks[k + 3].text.clone();
            let caps = |s: &str| s.chars().next().is_some_and(char::is_uppercase);
            if caps(&a) && caps(&b) && !matches!(a.as_str(), "Ok" | "Err" | "Some" | "None") {
                out.push((a, b));
            }
        }
        k += 1;
    }
    out
}

/// Encoder extraction: the first match whose arms pattern on
/// `Enum::Variant`; tag = first `push(<int>)` in each arm body.
fn extract_encoder(file: &FileModel, fi: usize, body: (usize, usize)) -> Option<TagSide> {
    let toks = &file.toks;
    for (open, close) in find_matches(file, body.0, body.1) {
        let arms = match_arms(file, open, close);
        let mut side = TagSide::default();
        for arm in &arms {
            let Some((e, v)) = first_variant_path(file, arm.pat.0, arm.pat.1, None) else {
                continue;
            };
            side.enum_name.get_or_insert(e);
            // First `push(<int>)` in the arm body is the tag write.
            let mut tag = None;
            let mut site = None;
            let mut k = arm.body.0;
            while k < arm.body.1 && k + 2 < toks.len() {
                if toks[k].is_ident("push")
                    && toks[k + 1].is_punct('(')
                    && toks[k + 2].kind == TokKind::Num
                {
                    tag = parse_int(&toks[k + 2].text);
                    site = Some(Site {
                        fi,
                        line: toks[k + 2].line,
                        col: toks[k + 2].col,
                    });
                    break;
                }
                k += 1;
            }
            if let (Some(tag), Some(site)) = (tag, site) {
                match side.tags.entry(tag) {
                    std::collections::btree_map::Entry::Occupied(_) => {
                        side.dups.push((tag, site));
                    }
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert((Some(v), site, false));
                    }
                }
            }
        }
        if !side.tags.is_empty() {
            return Some(side);
        }
    }
    None
}

/// Decoder extraction: the first match with integer-literal arm
/// patterns is the tag dispatch.
fn extract_decoder(file: &FileModel, fi: usize, body: (usize, usize)) -> Option<TagSide> {
    let toks = &file.toks;
    for (open, close) in find_matches(file, body.0, body.1) {
        let arms = match_arms(file, open, close);
        let mut side = TagSide::default();
        for arm in &arms {
            let first = &toks[arm.pat.0];
            if first.kind == TokKind::Num {
                let Some(tag) = parse_int(&first.text) else {
                    continue;
                };
                let guard_has_version = (arm.pat.0..arm.pat.1).any(|k| toks[k].is_ident("if"))
                    && (arm.pat.0..arm.pat.1).any(|k| toks[k].is_ident("version"));
                let site = Site {
                    fi,
                    line: first.line,
                    col: first.col,
                };
                if side.tags.contains_key(&tag) {
                    side.dups.push((tag, site));
                } else {
                    side.cands
                        .insert(tag, all_variant_paths(file, arm.body.0, arm.body.1));
                    side.tags.insert(tag, (None, site, guard_has_version));
                }
            } else if (first.kind == TokKind::Ident || first.is_punct('_'))
                && arm.pat.1 == arm.pat.0 + 1
            {
                side.has_wildcard = true;
            }
        }
        if !side.tags.is_empty() {
            return Some(side);
        }
    }
    None
}

fn parse_int(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    let t = t
        .trim_end_matches(|c: char| c.is_ascii_alphabetic())
        .to_string();
    t.parse().ok()
}

/// A referenced `MAX_<DIRECTION>*` cap const must exist in the crate.
fn check_caps(ctx: &mut Ctx<'_>, crate_name: &str, dir: &str, at: Option<&Site>) {
    let want = format!("MAX_{}", dir.to_uppercase());
    let mut decl = false;
    let mut uses = 0usize;
    for file in ctx.files.iter().filter(|f| f.crate_name == crate_name) {
        for (i, t) in file.toks.iter().enumerate() {
            if t.kind == TokKind::Ident && t.text.starts_with(&want) {
                if i > 0
                    && (file.toks[i - 1].is_ident("const") || file.toks[i - 1].is_ident("static"))
                {
                    decl = true;
                } else {
                    uses += 1;
                }
            }
        }
    }
    if !(decl && uses >= 1) {
        if let Some(s) = at {
            ctx.emit(
                s.fi,
                s.line,
                s.col,
                "D10",
                Severity::Error,
                format!("no referenced `{want}*` size cap for wire direction `{dir}`"),
                D10_HINT,
            );
        }
    }
}

/// Every codec variant needs a `wire v1` / `wire v2` doc note; v2-only
/// frames must be behind a version guard in the decoder.
fn check_wire_docs(ctx: &mut Ctx<'_>, crate_name: &str, dir: &str, e: &TagSide, d: &TagSide) {
    let Some(enum_name) = e.enum_name.clone().or_else(|| d.enum_name.clone()) else {
        return;
    };
    let Some((fi, en)) = ctx
        .files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.crate_name == crate_name)
        .find_map(|(fi, f)| {
            f.enums
                .iter()
                .find(|en| en.name == enum_name)
                .map(|en| (fi, en))
        })
    else {
        return;
    };
    let variants: Vec<(String, usize, usize, String)> = en
        .variants
        .iter()
        .map(|v| (v.name.clone(), v.line, v.col, v.doc.clone()))
        .collect();
    for (name, line, col, doc) in variants {
        let v1 = doc.contains("wire v1");
        let v2 = doc.contains("wire v2");
        if !v1 && !v2 {
            ctx.emit(
                fi,
                line,
                col,
                "D10",
                Severity::Warning,
                format!("`{enum_name}::{name}` has no wire-version note (direction `{dir}`)"),
                D10_HINT,
            );
            continue;
        }
        if v2 && !v1 {
            // v2-only frame: its decoder arm must be version-guarded.
            let guarded = d
                .tags
                .values()
                .any(|(dv, _, g)| dv.as_deref() == Some(name.as_str()) && *g);
            let decoded = d
                .tags
                .values()
                .any(|(dv, _, _)| dv.as_deref() == Some(name.as_str()));
            if decoded && !guarded {
                ctx.emit(
                    fi,
                    line,
                    col,
                    "D10",
                    Severity::Error,
                    format!("v2-only `{enum_name}::{name}` is decoded without a version guard"),
                    D10_HINT,
                );
            }
        }
    }
}

// --------------------------------------------------------------- D11

fn check_metric_inventory(ctx: &mut Ctx<'_>) {
    let prefixes: Option<(usize, usize, Vec<String>)> =
        ctx.files.iter().enumerate().find_map(|(fi, f)| {
            f.str_consts
                .iter()
                .find(|c| c.name == "INSTRUMENTED_PREFIXES")
                .map(|c| (fi, c.line, c.values.clone()))
        });
    // (name, kind, class, fi, line, col) for every live literal site.
    let mut named: Vec<(String, MetricKind, String, usize, usize, usize)> = Vec::new();
    let mut pending: Vec<(usize, usize, usize, Severity, String)> = Vec::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        for s in &file.metric_sites {
            if s.is_test {
                continue;
            }
            let Some(name) = &s.name else {
                pending.push((
                    fi,
                    s.line,
                    s.col,
                    Severity::Warning,
                    format!("{} name must be a string literal", s.kind.label()),
                ));
                continue;
            };
            if !taxonomy_ok(name) {
                pending.push((
                    fi,
                    s.line,
                    s.col,
                    Severity::Warning,
                    format!("metric `{name}` does not parse into the taxonomy"),
                ));
                continue;
            }
            let prefix = prefix_of(name);
            if let Some((_, _, values)) = &prefixes {
                if !values.contains(&prefix) {
                    pending.push((
                        fi,
                        s.line,
                        s.col,
                        Severity::Warning,
                        format!(
                            "metric `{name}`: prefix `{prefix}` is not in INSTRUMENTED_PREFIXES"
                        ),
                    ));
                }
            }
            let expected = format!("{}.", file.crate_name.replace('-', "_"));
            if prefix != expected {
                pending.push((
                    fi,
                    s.line,
                    s.col,
                    Severity::Warning,
                    format!(
                        "metric `{name}` is recorded under `{prefix}` from crate `{}`",
                        file.crate_name
                    ),
                ));
            }
            let class = s.class.clone().unwrap_or_else(|| "-".to_string());
            named.push((name.clone(), s.kind, class, fi, s.line, s.col));
        }
    }
    for (fi, line, col, sev, msg) in pending {
        ctx.emit(fi, line, col, "D11", sev, msg, D11_HINT);
    }
    // Signature collisions: the registry fixes (kind, class) at first
    // registration, so a second signature is silent data corruption.
    named.sort_by(|a, b| {
        (&a.0, &ctx.files[a.3].label, a.4).cmp(&(&b.0, &ctx.files[b.3].label, b.4))
    });
    let mut first_sig: BTreeMap<&str, (MetricKind, &str, usize, usize)> = BTreeMap::new();
    let mut collisions: Vec<(usize, usize, usize, String)> = Vec::new();
    for (name, kind, class, fi, line, col) in &named {
        match first_sig.get(name.as_str()) {
            None => {
                first_sig.insert(name, (*kind, class, *fi, *line));
            }
            Some((k0, c0, fi0, l0)) => {
                if k0 != kind || *c0 != class.as_str() {
                    let msg = format!(
                        "metric `{name}` re-registered as {}/{class}; first registered as {}/{c0} at {}:{l0}",
                        kind.label(),
                        k0.label(),
                        ctx.files[*fi0].label,
                    );
                    collisions.push((*fi, *line, *col, msg));
                }
            }
        }
    }
    for (fi, line, col, msg) in collisions {
        ctx.emit(fi, line, col, "D11", Severity::Error, msg, D11_HINT);
    }
    // Stale prefixes: a declared prefix with no live site is debt.
    if let Some((fi, line, values)) = prefixes {
        if !named.is_empty() {
            for p in values {
                if !named.iter().any(|(n, ..)| prefix_of(n) == p) {
                    ctx.emit(
                        fi,
                        line,
                        1,
                        "D11",
                        Severity::Warning,
                        format!("INSTRUMENTED_PREFIXES entry `{p}` has no metric site"),
                        D11_HINT,
                    );
                }
            }
        }
    }
}

/// `ca_x.seg(.seg)*`: lower-case dotted path with ≥ 2 segments.
fn taxonomy_ok(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        })
        && name.as_bytes()[0].is_ascii_lowercase()
}

/// The taxonomy prefix: everything up to and including the first dot.
pub fn prefix_of(name: &str) -> String {
    match name.find('.') {
        Some(i) => name[..=i].to_string(),
        None => name.to_string(),
    }
}

// --------------------------------------------------------------- D12

/// The README marker that opens the checked env-var table.
pub const ENV_TABLE_SENTINEL: &str = "<!-- ca-audit:env-table -->";

fn check_env_inventory(ctx: &mut Ctx<'_>) {
    let Some((readme_label, readme)) = ctx.readme else {
        return;
    };
    let readme_label = readme_label.to_string();
    let mut table: BTreeMap<String, usize> = BTreeMap::new();
    let mut dup_rows: Vec<(String, usize)> = Vec::new();
    let mut in_table = false;
    let mut saw_sentinel = false;
    for (lno, line) in readme.lines().enumerate() {
        let lno = lno + 1;
        if line.contains(ENV_TABLE_SENTINEL) {
            in_table = true;
            saw_sentinel = true;
            continue;
        }
        if !in_table {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() && table.is_empty() {
            continue; // blank line between sentinel and table head
        }
        if !trimmed.starts_with('|') {
            in_table = false;
            continue;
        }
        // Row name: the first `CA_*` between backticks.
        let Some(name) = trimmed.split('`').nth(1).filter(|n| looks_like_env(n)) else {
            continue; // header / separator rows
        };
        if table.insert(name.to_string(), lno).is_some() {
            dup_rows.push((name.to_string(), lno));
        }
    }

    // Live reads grouped by var, first site wins for reporting.
    let mut reads: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    for (fi, file) in ctx.files.iter().enumerate() {
        for s in &file.env_sites {
            if s.is_test {
                continue;
            }
            reads.entry(s.name.clone()).or_insert((fi, s.line, s.col));
        }
    }
    if reads.is_empty() && table.is_empty() {
        return;
    }
    if !saw_sentinel {
        ctx.emit_raw(
            &readme_label,
            1,
            1,
            "D12",
            Severity::Error,
            "README has no `ca-audit:env-table` sentinel for the CA_* env-var table".to_string(),
            D12_HINT,
        );
        return;
    }
    for (name, lno) in dup_rows {
        ctx.emit_raw(
            &readme_label,
            lno,
            1,
            "D12",
            Severity::Error,
            format!("duplicate env-table row for `{name}`"),
            D12_HINT,
        );
    }
    for (name, (fi, line, col)) in &reads {
        if !table.contains_key(name) {
            ctx.emit(
                *fi,
                *line,
                *col,
                "D12",
                Severity::Error,
                format!("env var `{name}` is read here but missing from the README env-var table"),
                D12_HINT,
            );
        }
    }
    for (name, lno) in &table {
        if !reads.contains_key(name) {
            ctx.emit_raw(
                &readme_label,
                *lno,
                1,
                "D12",
                Severity::Error,
                format!("documented env var `{name}` has no reader in the workspace"),
                D12_HINT,
            );
        }
    }
}

/// `CA_`-prefixed upper-snake name, as the model extracts from code.
fn looks_like_env(s: &str) -> bool {
    s.len() > 3
        && s.starts_with("CA_")
        && s.bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}
