//! The `--baseline` ratchet file (DESIGN.md §15).
//!
//! A baseline is a plain text file, one accepted finding per line,
//! keyed `rule|file|message`. Lines are insensitive to line/column
//! drift so mechanical edits don't churn the file, but any change to
//! what the finding *says* re-surfaces it. Findings matched by the
//! baseline are filtered out of the report; baseline entries that no
//! longer match anything are reported so the ratchet only tightens.
//! CI runs with an empty baseline: the file exists for landing a new
//! rule warn-first on a large tree, never for parking errors at merge.

use crate::Finding;
use std::collections::BTreeSet;

/// The stable identity of a finding in a baseline file.
pub fn key(f: &Finding) -> String {
    format!("{}|{}|{}", f.rule, f.file, f.message)
}

/// Renders findings as baseline text (sorted, deduplicated).
pub fn render(findings: &[Finding]) -> String {
    let keys: BTreeSet<String> = findings.iter().map(key).collect();
    let mut out =
        String::from("# ca-audit baseline: accepted findings, one `rule|file|message` per line.\n");
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Parses baseline text into its key set (comments and blanks skipped).
pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Splits `findings` into (surfaced, suppressed-by-baseline) and
/// returns the stale baseline entries that matched nothing.
pub fn apply(
    findings: Vec<Finding>,
    baseline: &BTreeSet<String>,
) -> (Vec<Finding>, usize, Vec<String>) {
    let mut surfaced = Vec::new();
    let mut matched: BTreeSet<&String> = BTreeSet::new();
    let mut suppressed = 0usize;
    for f in findings {
        let k = key(&f);
        if let Some(entry) = baseline.get(&k) {
            matched.insert(entry);
            suppressed += 1;
        } else {
            surfaced.push(f);
        }
    }
    let stale: Vec<String> = baseline
        .iter()
        .filter(|e| !matched.contains(e))
        .cloned()
        .collect();
    (surfaced, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;

    fn finding(rule: &'static str, file: &str, msg: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line: 3,
            col: 7,
            rule,
            severity: Severity::Warning,
            message: msg.to_string(),
            hint: "h",
        }
    }

    #[test]
    fn roundtrip_filters_and_reports_stale() {
        let fs = vec![finding("D9", "a.rs", "x"), finding("D9", "b.rs", "y")];
        let text = render(&fs[..1]);
        let base = parse(&text);
        let (surfaced, suppressed, stale) = apply(fs, &base);
        assert_eq!(surfaced.len(), 1);
        assert_eq!(surfaced[0].file, "b.rs");
        assert_eq!(suppressed, 1);
        assert!(stale.is_empty());
    }

    #[test]
    fn stale_entries_surface() {
        let base = parse("D9|gone.rs|old finding\n# comment\n\n");
        let (surfaced, suppressed, stale) = apply(vec![], &base);
        assert!(surfaced.is_empty());
        assert_eq!(suppressed, 0);
        assert_eq!(stale, vec!["D9|gone.rs|old finding".to_string()]);
    }

    #[test]
    fn key_ignores_line_and_col() {
        let mut f = finding("D9", "a.rs", "x");
        let k1 = key(&f);
        f.line = 99;
        f.col = 1;
        assert_eq!(key(&f), k1);
    }
}
