//! `ca-audit` CLI — audits the workspace sources against DESIGN.md §10/§15.
//!
//! ```text
//! ca-audit [--root DIR] [--json] [--deny warn] [--list-rules]
//!          [--baseline FILE] [--write-baseline FILE]
//!          [--metrics] [--env-table]
//! ```
//!
//! Exit codes: 0 clean, 1 findings that fail the selected policy
//! (errors always fail; warnings fail under `--deny warn`), 2 usage or
//! I/O error.

use ca_audit::{
    audit_workspace, baseline, metric_inventory, render_json, render_metric_inventory, rule_table,
    rules, Severity,
};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_warn = false;
    let mut list_rules = false;
    let mut baseline_file: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut metrics = false;
    let mut env_table = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("warn") => deny_warn = true,
                _ => return usage("--deny takes the literal `warn`"),
            },
            "--baseline" => match args.next() {
                Some(f) => baseline_file = Some(PathBuf::from(f)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => return usage("--write-baseline needs a file"),
            },
            "--metrics" => metrics = true,
            "--env-table" => env_table = true,
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in rule_table() {
            println!("{:4} {}", rule.id, rule.summary);
            println!("     fix: {}", rule.hint);
        }
        for rule in rules::analysis_rules() {
            println!("{:4} {}", rule.id, rule.summary);
            println!("     fix: {}", rule.hint);
        }
        return ExitCode::SUCCESS;
    }

    // Accept being launched from the workspace root or from the crate
    // directory (cargo run sets cwd to the invocation dir).
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }

    if metrics {
        return match metric_inventory(&root) {
            Ok(inv) => {
                print!("{}", render_metric_inventory(&inv));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!(
                    "ca-audit: cannot extract metrics from {}: {e}",
                    root.display()
                );
                ExitCode::from(2)
            }
        };
    }
    if env_table {
        return match ca_audit::load_workspace(&root) {
            Ok(set) => {
                for file in &set.files {
                    let m = ca_audit::model::FileModel::build(
                        &file.crate_name,
                        &file.label,
                        &file.content,
                    );
                    for s in m.env_sites.iter().filter(|s| !s.is_test) {
                        println!("{}\t{}:{}", s.name, file.label, s.line);
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("ca-audit: cannot scan {}: {e}", root.display());
                ExitCode::from(2)
            }
        };
    }

    let findings = match audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ca-audit: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let text = baseline::render(&findings);
        // ca-audit: allow(D4, baseline ratchet is a dev-only artifact, not durable campaign state)
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("ca-audit: cannot write baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "ca-audit: wrote baseline with {} finding(s) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let (findings, suppressed, stale) = match &baseline_file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => {
                let keys = baseline::parse(&text);
                baseline::apply(findings, &keys)
            }
            Err(e) => {
                eprintln!("ca-audit: cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
        None => (findings, 0, Vec::new()),
    };

    if json {
        println!("{}", render_json(&findings));
    } else if findings.is_empty() && stale.is_empty() {
        let n_rules = rule_table().len() + rules::analysis_rules().len();
        if suppressed > 0 {
            println!(
                "ca-audit: workspace clean ({n_rules} rules, {suppressed} baselined finding(s))"
            );
        } else {
            println!("ca-audit: workspace clean ({n_rules} rules)");
        }
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        for entry in &stale {
            println!("error[A2] {entry}: stale baseline entry matches nothing; remove it");
        }
        let errors = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        println!(
            "ca-audit: {} finding(s) ({} error(s), {} warning(s), {} stale baseline entr(y/ies))",
            findings.len(),
            errors,
            findings.len() - errors,
            stale.len(),
        );
    }

    let errors = findings.iter().any(|f| f.severity == Severity::Error);
    let fail = errors || !stale.is_empty() || (deny_warn && !findings.is_empty());
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ca-audit: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    println!(
        "ca-audit — workspace invariant auditor (DESIGN.md \u{a7}10, \u{a7}15)\n\n\
         USAGE: ca-audit [--root DIR] [--json] [--deny warn] [--list-rules]\n\
                \u{20}       [--baseline FILE] [--write-baseline FILE] [--metrics] [--env-table]\n\n\
         OPTIONS:\n\
           --root DIR            workspace root to audit (default: .)\n\
           --json                emit a ca-audit/2 JSON report instead of text\n\
           --deny warn           exit non-zero on warnings, not just errors\n\
           --baseline FILE       filter findings through a ratchet file; stale entries fail\n\
           --write-baseline FILE write the current findings as a ratchet file and exit\n\
           --metrics             print the extracted metric inventory (name kind class)\n\
           --env-table           print the extracted CA_* env-var reads (name\\tfile:line)\n\
           --list-rules          print the rule tables and exit"
    );
}
