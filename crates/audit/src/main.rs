//! `ca-audit` CLI — audits the workspace sources against DESIGN.md §10.
//!
//! ```text
//! ca-audit [--root DIR] [--json] [--deny warn] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings that fail the selected policy
//! (errors always fail; warnings fail under `--deny warn`), 2 usage or
//! I/O error.

use ca_audit::{audit_workspace, render_json, rule_table, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut deny_warn = false;
    let mut list_rules = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--json" => json = true,
            "--deny" => match args.next().as_deref() {
                Some("warn") => deny_warn = true,
                _ => return usage("--deny takes the literal `warn`"),
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        for rule in rule_table() {
            println!("{:4} {}", rule.id, rule.summary);
            println!("     fix: {}", rule.hint);
        }
        return ExitCode::SUCCESS;
    }

    // Accept being launched from the workspace root or from the crate
    // directory (cargo run sets cwd to the invocation dir).
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }

    let findings = match audit_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ca-audit: cannot audit {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", render_json(&findings));
    } else if findings.is_empty() {
        println!("ca-audit: workspace clean ({} rules)", rule_table().len());
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        let errors = findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count();
        println!(
            "ca-audit: {} finding(s) ({} error(s), {} warning(s))",
            findings.len(),
            errors,
            findings.len() - errors
        );
    }

    let errors = findings.iter().any(|f| f.severity == Severity::Error);
    let fail = errors || (deny_warn && !findings.is_empty());
    if fail {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ca-audit: {msg}");
    print_help();
    ExitCode::from(2)
}

fn print_help() {
    println!(
        "ca-audit — workspace invariant auditor (DESIGN.md \u{a7}10)\n\n\
         USAGE: ca-audit [--root DIR] [--json] [--deny warn] [--list-rules]\n\n\
         OPTIONS:\n\
           --root DIR     workspace root to audit (default: .)\n\
           --json         emit a ca-audit/1 JSON report instead of text\n\
           --deny warn    exit non-zero on warnings, not just errors\n\
           --list-rules   print the rule table and exit"
    );
}
