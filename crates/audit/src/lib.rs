//! `ca-audit` — the workspace's invariant auditor (DESIGN.md §10, §15).
//!
//! The reproduction's core guarantees — canonical CA-matrix bytes and
//! `.cam` exports identical at any thread count and across crash-resume
//! — rest on conventions the compiler cannot check: no hash-ordered
//! iteration feeding canonical output, no ambient clocks or randomness,
//! no raw durable writes, no ad-hoc stdout/stderr in library crates.
//! This crate enforces those conventions as machine-checked rules over
//! the workspace's own sources.
//!
//! The analyzer is dependency-free and built in two layers:
//!
//! 1. A real Rust lexer ([`lexer`]) — nested block comments, raw
//!    strings, lifetimes vs. char literals — feeding a scrubbed
//!    code-only view ([`scrub`]) that the token rules D1–D7 search.
//! 2. An item-level workspace model ([`model`]) — functions with impl
//!    context and body spans, lock fields and statics, enums with
//!    variant docs, metric-macro and `CA_*` env sites — that the
//!    analysis rules D8–D12 ([`checks`]) reason over: lock order,
//!    panic paths, protocol drift, metric and env inventories.
//!
//! Suppressions are explicit and audited themselves:
//!
//! ```text
//! // ca-audit: allow(D4, deliberate corruption harness)
//! std::fs::write(&path, &bytes)?;
//! ```
//!
//! A pragma covers its own line and the next line, must name a known
//! rule, must carry a non-empty reason, and must actually suppress
//! something — malformed or unused pragmas are findings in their own
//! right, and an unused pragma points at its own `file:line:col`. See
//! [`rules::rules`] and [`rules::analysis_rules`] for the rule tables.

pub mod baseline;
pub mod checks;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod scrub;

use model::FileModel;
use rules::RuleSpec;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An invariant violation; fails CI under `--deny warn`.
    Warning,
    /// A structural violation or broken suppression; always fails CI.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One audit finding, pointing at a `file:line:col`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the audited root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based column (byte offset within the line).
    pub col: usize,
    /// Rule id (`D1`..`D12`, or `A0`/`A1` for pragma hygiene).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}:{}: {} (fix: {})",
            self.severity, self.rule, self.file, self.line, self.col, self.message, self.hint
        )
    }
}

/// One source file handed to the auditor.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Package name (`ca-core`, …, or `cell-aware` for the facade).
    pub crate_name: String,
    /// Root-relative path label used in findings.
    pub label: String,
    /// File contents.
    pub content: String,
}

/// A full audit input: sources plus the optional README (for D12).
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    /// The `.rs` sources.
    pub files: Vec<SourceFile>,
    /// README `(label, content)`; absent disables D12.
    pub readme: Option<(String, String)>,
}

/// Audits a source set with the standard rule tables. This is the one
/// entry point both [`audit_workspace`] and the fixture self-tests
/// drive; findings come back sorted by `(file, line, col, rule)`.
pub fn audit_sources(set: &SourceSet) -> Vec<Finding> {
    run(set, rules::rules())
}

/// Scans one file's content as crate `crate_name` with a custom token
/// rule table (plus the always-on analysis rules and pragma hygiene).
pub fn scan_source(
    crate_name: &str,
    path_label: &str,
    content: &str,
    rules: &[RuleSpec],
) -> Vec<Finding> {
    let set = SourceSet {
        files: vec![SourceFile {
            crate_name: crate_name.to_string(),
            label: path_label.to_string(),
            content: content.to_string(),
        }],
        readme: None,
    };
    run(&set, rules)
}

fn run(set: &SourceSet, token_rules: &[RuleSpec]) -> Vec<Finding> {
    let models: Vec<FileModel> = set
        .files
        .iter()
        .map(|f| FileModel::build(&f.crate_name, &f.label, &f.content))
        .collect();

    let mut findings = Vec::new();
    // (label, pragma line) pairs that suppressed at least one finding.
    let mut used: BTreeSet<(String, usize)> = BTreeSet::new();

    // Layer 1: token rules over the scrubbed code view.
    for m in &models {
        for rule in token_rules {
            if !rule.scope.applies(&m.crate_name) {
                continue;
            }
            for token in rule.tokens {
                for (line, col) in m.scrub.token_sites(token) {
                    if !rule.include_tests && m.scrub.is_test_line(line) {
                        continue;
                    }
                    if rule.id == "D6" && m.scrub.has_safety_comment(line) {
                        continue;
                    }
                    if let Some(pline) = m.scrub.allow_covering(line, rule.id) {
                        used.insert((m.label.clone(), pline));
                        continue;
                    }
                    findings.push(Finding {
                        file: m.label.clone(),
                        line,
                        col,
                        rule: rule.id,
                        severity: Severity::Warning,
                        message: format!("`{}`: {}", token, rule.summary),
                        hint: rule.hint,
                    });
                }
            }
        }
    }

    // Layer 2: the model-driven analysis rules.
    let mut ctx = checks::Ctx {
        files: &models,
        readme: set
            .readme
            .as_ref()
            .map(|(label, content)| (label.as_str(), content.as_str())),
        findings: Vec::new(),
        used: BTreeSet::new(),
    };
    checks::run_all(&mut ctx);
    findings.extend(ctx.findings);
    used.extend(ctx.used);

    // Pragma hygiene last, against the global ledger: malformed
    // pragmas and unknown rules are errors; a pragma that suppressed
    // nothing anywhere is a warning pointing at the pragma itself.
    let known = rules::known_rule_ids();
    for m in &models {
        for bad in &m.scrub.malformed_pragmas {
            findings.push(Finding {
                file: m.label.clone(),
                line: bad.line,
                col: bad.col,
                rule: "A0",
                severity: Severity::Error,
                message: format!("malformed ca-audit pragma: {}", bad.problem),
                hint: "write `// ca-audit: allow(<rule-id>, <reason>)` with a non-empty reason",
            });
        }
        for allow in &m.scrub.allows {
            if !known.contains(&allow.rule.as_str()) {
                findings.push(Finding {
                    file: m.label.clone(),
                    line: allow.line,
                    col: allow.col,
                    rule: "A0",
                    severity: Severity::Error,
                    message: format!("pragma names unknown rule `{}`", allow.rule),
                    hint: "use a rule id from `ca-audit --list-rules`",
                });
            } else if !used.contains(&(m.label.clone(), allow.line)) {
                findings.push(Finding {
                    file: m.label.clone(),
                    line: allow.line,
                    col: allow.col,
                    rule: "A1",
                    severity: Severity::Warning,
                    message: format!("unused suppression for rule `{}`", allow.rule),
                    hint: "delete the pragma; it no longer suppresses anything",
                });
            }
        }
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// One source file of the workspace, with its owning crate.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Package name (`ca-core`, …, or `cell-aware` for the facade).
    pub crate_name: String,
    /// Absolute path.
    pub path: PathBuf,
    /// Path relative to the workspace root (label for findings).
    pub label: String,
}

/// Lists the library sources the audit covers: `crates/*/src/**/*.rs`
/// plus the facade's `src/**/*.rs`. Tests, examples and benches outside
/// `src/` are not library code and are out of scope (DESIGN.md §10).
///
/// # Errors
///
/// I/O errors walking the tree.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files, "cell-aware", root)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = format!(
                "ca-{}",
                dir.file_name().and_then(|n| n.to_str()).unwrap_or("?")
            );
            collect_rs(&src, &mut files, &name, root)?;
        }
    }
    files.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(files)
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<WorkspaceFile>,
    crate_name: &str,
    root: &Path,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out, crate_name, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(WorkspaceFile {
                crate_name: crate_name.to_string(),
                path,
                label,
            });
        }
    }
    Ok(())
}

/// Loads the workspace under `root` into a [`SourceSet`], including
/// `README.md` when present (enables D12).
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn load_workspace(root: &Path) -> std::io::Result<SourceSet> {
    let mut set = SourceSet::default();
    for file in workspace_files(root)? {
        let content = std::fs::read_to_string(&file.path)?;
        set.files.push(SourceFile {
            crate_name: file.crate_name,
            label: file.label,
            content,
        });
    }
    let readme = root.join("README.md");
    if readme.is_file() {
        set.readme = Some(("README.md".to_string(), std::fs::read_to_string(readme)?));
    }
    Ok(set)
}

/// Audits every library source under `root` with the standard rule
/// tables, returning findings sorted by `(file, line, col, rule)`.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    Ok(audit_sources(&load_workspace(root)?))
}

/// One record of the statically-extracted metric inventory.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricRecord {
    /// Metric name (`ca_sim.patterns.simulated`).
    pub name: String,
    /// Macro flavour label (`counter`/`histogram`/`timer`).
    pub kind: &'static str,
    /// Class ident, or `-` for timers (class is implicit).
    pub class: String,
}

/// Extracts the live metric inventory (non-test, literal-named macro
/// sites) from a source set, deduplicated and sorted.
pub fn metric_inventory_of(set: &SourceSet) -> Vec<MetricRecord> {
    let mut records: BTreeSet<MetricRecord> = BTreeSet::new();
    for f in &set.files {
        let m = FileModel::build(&f.crate_name, &f.label, &f.content);
        for s in &m.metric_sites {
            if s.is_test {
                continue;
            }
            let Some(name) = &s.name else { continue };
            records.insert(MetricRecord {
                name: name.clone(),
                kind: s.kind.label(),
                class: s.class.clone().unwrap_or_else(|| "-".to_string()),
            });
        }
    }
    records.into_iter().collect()
}

/// Extracts the metric inventory from the workspace under `root`.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn metric_inventory(root: &Path) -> std::io::Result<Vec<MetricRecord>> {
    Ok(metric_inventory_of(&load_workspace(root)?))
}

/// Renders the inventory one `name kind class` per line — the byte
/// format `ca-bench profile-check` consumes.
pub fn render_metric_inventory(records: &[MetricRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!("{} {} {}\n", r.name, r.kind, r.class));
    }
    out
}

/// Distinct taxonomy prefixes (`ca_x.`) of an inventory, sorted.
pub fn inventory_prefixes(records: &[MetricRecord]) -> Vec<String> {
    let set: BTreeSet<String> = records.iter().map(|r| checks::prefix_of(&r.name)).collect();
    set.into_iter().collect()
}

/// Renders findings as a JSON report (`{"schema":"ca-audit/2",...}`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"ca-audit/2\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
            escape_json(&f.file),
            f.line,
            f.col,
            f.rule,
            f.severity,
            escape_json(&f.message),
            escape_json(f.hint),
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "],\"total\":{},\"errors\":{},\"warnings\":{}}}",
        findings.len(),
        errors,
        findings.len() - errors
    ));
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `Scope` re-exported for rule-table consumers.
pub use rules::rules as rule_table;

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Scope;

    #[test]
    fn findings_display_as_file_line_col() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 4,
            rule: "D1",
            severity: Severity::Warning,
            message: "m".into(),
            hint: "h",
        };
        assert_eq!(
            f.to_string(),
            "warn[D1] crates/x/src/lib.rs:7:4: m (fix: h)"
        );
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 1,
            col: 2,
            rule: "A0",
            severity: Severity::Error,
            message: "x".into(),
            hint: "h",
        };
        let json = render_json(&[f]);
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"col\":2"));
        assert!(json.contains("\"schema\":\"ca-audit/2\""));
    }

    #[test]
    fn scope_matching() {
        assert!(Scope::Except(&["ca-obs"]).applies("ca-core"));
        assert!(!Scope::Except(&["ca-obs"]).applies("ca-obs"));
        assert!(Scope::Only(&["ca-core"]).applies("ca-core"));
        assert!(!Scope::Only(&["ca-core"]).applies("ca-ml"));
    }

    #[test]
    fn inventory_renders_and_prefixes() {
        let set = SourceSet {
            files: vec![SourceFile {
                crate_name: "ca-sim".into(),
                label: "crates/sim/src/lib.rs".into(),
                content: "fn f() {\n    counter!(\"ca_sim.patterns\", Work).inc();\n    timer!(\"ca_sim.wall\").record(d);\n}\n"
                    .into(),
            }],
            readme: None,
        };
        let inv = metric_inventory_of(&set);
        assert_eq!(
            render_metric_inventory(&inv),
            "ca_sim.patterns counter Work\nca_sim.wall timer -\n"
        );
        assert_eq!(inventory_prefixes(&inv), vec!["ca_sim.".to_string()]);
    }
}
