//! `ca-audit` — the workspace's invariant auditor (DESIGN.md §10).
//!
//! The reproduction's core guarantees — canonical CA-matrix bytes and
//! `.cam` exports identical at any thread count and across crash-resume
//! — rest on conventions the compiler cannot check: no hash-ordered
//! iteration feeding canonical output, no ambient clocks or randomness,
//! no raw durable writes, no ad-hoc stdout/stderr in library crates.
//! This crate enforces those conventions as machine-checked rules over
//! the workspace's own sources.
//!
//! The analyzer is a comment- and string-literal-aware token scanner:
//! no rustc internals, no nightly, no dependencies. It scrubs comments
//! and string/char literals out of each source file (so rule tokens in
//! docs, messages and fixtures never fire), tracks `#[cfg(test)]`
//! regions, and then searches the remaining code text for each rule's
//! forbidden tokens with identifier-boundary checks.
//!
//! Suppressions are explicit and audited themselves:
//!
//! ```text
//! // ca-audit: allow(D4, deliberate corruption harness)
//! std::fs::write(&path, &bytes)?;
//! ```
//!
//! A pragma covers its own line and the next line, must name a known
//! rule, must carry a non-empty reason, and must actually suppress
//! something — malformed or unused pragmas are findings in their own
//! right. See [`rules::rules`] for the rule table.

pub mod rules;
pub mod scrub;

use rules::RuleSpec;
use scrub::ScrubbedSource;
use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// An invariant violation; fails CI under `--deny warn`.
    Warning,
    /// A broken suppression pragma; always fails CI.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One audit finding, pointing at a `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the audited root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (`D1`..`D7`, or `A0`/`A1` for pragma hygiene).
    pub rule: &'static str,
    /// Severity.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {} (fix: {})",
            self.severity, self.rule, self.file, self.line, self.message, self.hint
        )
    }
}

/// Scans one file's content as crate `crate_name`.
///
/// `path_label` is only used to label findings. This is the unit the
/// fixture self-tests drive; [`audit_workspace`] feeds it every file.
pub fn scan_source(
    crate_name: &str,
    path_label: &str,
    content: &str,
    rules: &[RuleSpec],
) -> Vec<Finding> {
    let src = ScrubbedSource::new(content);
    let mut findings = Vec::new();
    let mut used_pragma_lines: Vec<usize> = Vec::new();

    for rule in rules {
        if !rule.scope.applies(crate_name) {
            continue;
        }
        for token in rule.tokens {
            for line in src.token_lines(token) {
                if !rule.include_tests && src.is_test_line(line) {
                    continue;
                }
                if rule.id == "D6" && src.has_safety_comment(line) {
                    continue;
                }
                if let Some(pline) = src.allow_covering(line, rule.id) {
                    used_pragma_lines.push(pline);
                    continue;
                }
                findings.push(Finding {
                    file: path_label.to_string(),
                    line,
                    rule: rule.id,
                    severity: Severity::Warning,
                    message: format!("`{}`: {}", token, rule.summary),
                    hint: rule.hint,
                });
            }
        }
    }

    // Pragma hygiene: malformed pragmas are errors, pragmas naming an
    // unknown rule are errors, pragmas that suppressed nothing are
    // warnings (stale suppressions hide future violations).
    for bad in &src.malformed_pragmas {
        findings.push(Finding {
            file: path_label.to_string(),
            line: bad.line,
            rule: "A0",
            severity: Severity::Error,
            message: format!("malformed ca-audit pragma: {}", bad.problem),
            hint: "write `// ca-audit: allow(<rule-id>, <reason>)` with a non-empty reason",
        });
    }
    for allow in &src.allows {
        if !rules.iter().any(|r| r.id == allow.rule) {
            findings.push(Finding {
                file: path_label.to_string(),
                line: allow.line,
                rule: "A0",
                severity: Severity::Error,
                message: format!("pragma names unknown rule `{}`", allow.rule),
                hint: "use a rule id from `ca-audit --list-rules`",
            });
        } else if !used_pragma_lines.contains(&allow.line) {
            findings.push(Finding {
                file: path_label.to_string(),
                line: allow.line,
                rule: "A1",
                severity: Severity::Warning,
                message: format!("unused suppression for rule `{}`", allow.rule),
                hint: "delete the pragma; it no longer suppresses anything",
            });
        }
    }

    findings
}

/// One source file of the workspace, with its owning crate.
#[derive(Debug, Clone)]
pub struct WorkspaceFile {
    /// Package name (`ca-core`, …, or `cell-aware` for the facade).
    pub crate_name: String,
    /// Absolute path.
    pub path: PathBuf,
    /// Path relative to the workspace root (label for findings).
    pub label: String,
}

/// Lists the library sources the audit covers: `crates/*/src/**/*.rs`
/// plus the facade's `src/**/*.rs`. Tests, examples and benches outside
/// `src/` are not library code and are out of scope (DESIGN.md §10).
///
/// # Errors
///
/// I/O errors walking the tree.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<WorkspaceFile>> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        collect_rs(&facade, &mut files, "cell-aware", root)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let src = dir.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = format!(
                "ca-{}",
                dir.file_name().and_then(|n| n.to_str()).unwrap_or("?")
            );
            collect_rs(&src, &mut files, &name, root)?;
        }
    }
    files.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(files)
}

fn collect_rs(
    dir: &Path,
    out: &mut Vec<WorkspaceFile>,
    crate_name: &str,
    root: &Path,
) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out, crate_name, root)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let label = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(WorkspaceFile {
                crate_name: crate_name.to_string(),
                path,
                label,
            });
        }
    }
    Ok(())
}

/// Audits every library source under `root` with the standard rule set,
/// returning findings sorted by `(file, line, rule)`.
///
/// # Errors
///
/// I/O errors reading the tree.
pub fn audit_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let rule_set = rules::rules();
    let mut findings = Vec::new();
    for file in workspace_files(root)? {
        let content = std::fs::read_to_string(&file.path)?;
        findings.extend(scan_source(
            &file.crate_name,
            &file.label,
            &content,
            rule_set,
        ));
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(findings)
}

/// Renders findings as a JSON report (`{"schema":"ca-audit/1",...}`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"schema\":\"ca-audit/1\",\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"hint\":\"{}\"}}",
            escape_json(&f.file),
            f.line,
            f.rule,
            f.severity,
            escape_json(&f.message),
            escape_json(f.hint),
        ));
    }
    let errors = findings
        .iter()
        .filter(|f| f.severity == Severity::Error)
        .count();
    out.push_str(&format!(
        "],\"total\":{},\"errors\":{},\"warnings\":{}}}",
        findings.len(),
        errors,
        findings.len() - errors
    ));
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `Scope` re-exported for rule-table consumers.
pub use rules::rules as rule_table;

#[cfg(test)]
mod tests {
    use super::*;
    use rules::Scope;

    #[test]
    fn findings_display_as_file_line() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "D1",
            severity: Severity::Warning,
            message: "m".into(),
            hint: "h",
        };
        assert_eq!(f.to_string(), "warn[D1] crates/x/src/lib.rs:7: m (fix: h)");
    }

    #[test]
    fn json_report_escapes_and_counts() {
        let f = Finding {
            file: "a\"b.rs".into(),
            line: 1,
            rule: "A0",
            severity: Severity::Error,
            message: "x".into(),
            hint: "h",
        };
        let json = render_json(&[f]);
        assert!(json.contains("\\\"b.rs"));
        assert!(json.contains("\"errors\":1"));
        assert!(json.contains("\"schema\":\"ca-audit/1\""));
    }

    #[test]
    fn scope_matching() {
        assert!(Scope::Except(&["ca-obs"]).applies("ca-core"));
        assert!(!Scope::Except(&["ca-obs"]).applies("ca-obs"));
        assert!(Scope::Only(&["ca-core"]).applies("ca-core"));
        assert!(!Scope::Only(&["ca-core"]).applies("ca-ml"));
    }
}
