//! The real Rust lexer under the analyzer (DESIGN.md §15).
//!
//! [`lex`] turns one source file into a token stream with byte- and
//! span-accurate positions, plus the comment list the pragma parser
//! consumes. It handles the full literal surface a static audit needs:
//! nested block comments, string/byte-string literals, raw strings at
//! any `#` depth, char literals vs. lifetimes (`'a'` vs `'a`), numeric
//! literals with type suffixes, and float-vs-range disambiguation
//! (`1.5` vs `1..2`). Everything fancier than that — actual syntax —
//! is the parser's job ([`crate::model`]).
//!
//! String tokens carry their *cooked* value (escapes resolved for the
//! common cases), because rule families D11/D12 reason about metric
//! names and `CA_*` env-var names, which live in string literals.

/// What kind of token this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `match`, `self`, names).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// String / raw-string / byte-string literal; `text` is cooked.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal (int or float, any base, with suffix).
    Num,
    /// One punctuation byte (`.`, `{`, `=`, …). Multi-byte operators
    /// are adjacent single-byte tokens; compare [`Tok::pos`] to join.
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Identifier text, cooked string value, or the punctuation byte.
    pub text: String,
    /// Byte offset of the token start in the file.
    pub pos: usize,
    /// Raw byte length in the source (before cooking).
    pub raw_len: usize,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (bytes from line start).
    pub col: usize,
}

impl Tok {
    /// Whether this token is the punctuation byte `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes().first() == Some(&(c as u8))
    }

    /// Whether this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// One comment, with the span of its first byte.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` marker.
    pub text: String,
    /// Byte offset of the comment start.
    pub pos: usize,
    /// Raw byte length.
    pub raw_len: usize,
    /// 1-based line of the comment start.
    pub line: usize,
    /// 1-based column of the comment start.
    pub col: usize,
}

/// A lexed file: tokens plus the non-code text the rules still need.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub toks: Vec<Tok>,
    /// Line and block comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `content`. Total: any byte sequence produces a token stream;
/// unterminated literals simply extend to end-of-file.
pub fn lex(content: &str) -> Lexed {
    Lexer {
        b: content.as_bytes(),
        s: content,
        i: 0,
        line: 1,
        line_start: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    s: &'a str,
    i: usize,
    line: usize,
    line_start: usize,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.i += 1;
                    self.line += 1;
                    self.line_start = self.i;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'b' if self.peek(1) == Some(b'"') => self.string(self.i + 1),
                b'r' | b'b' if self.raw_string_len().is_some() => {
                    let len = self.raw_string_len().unwrap_or(1);
                    self.raw_string(len);
                }
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                _ => {
                    self.push(TokKind::Punct, self.i, self.i + 1, (c as char).to_string());
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn span(&self, pos: usize) -> (usize, usize) {
        (self.line, pos - self.line_start + 1)
    }

    fn push(&mut self, kind: TokKind, from: usize, to: usize, text: String) {
        let (line, col) = self.span(from);
        self.out.toks.push(Tok {
            kind,
            text,
            pos: from,
            raw_len: to - from,
            line,
            col,
        });
    }

    /// Advances past `[from..to)`, keeping the line counter honest.
    fn advance_to(&mut self, to: usize) {
        while self.i < to && self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.line_start = self.i + 1;
            }
            self.i += 1;
        }
    }

    fn line_comment(&mut self) {
        let from = self.i;
        let end = self.b[from..]
            .iter()
            .position(|&c| c == b'\n')
            .map_or(self.b.len(), |p| from + p);
        let (line, col) = self.span(from);
        self.out.comments.push(Comment {
            text: self.s[from..end].to_string(),
            pos: from,
            raw_len: end - from,
            line,
            col,
        });
        self.i = end;
    }

    fn block_comment(&mut self) {
        let from = self.i;
        let mut depth = 1usize;
        let mut j = from + 2;
        while j < self.b.len() && depth > 0 {
            if self.b[j] == b'/' && self.b.get(j + 1) == Some(&b'*') {
                depth += 1;
                j += 2;
            } else if self.b[j] == b'*' && self.b.get(j + 1) == Some(&b'/') {
                depth -= 1;
                j += 2;
            } else {
                j += 1;
            }
        }
        let (line, col) = self.span(from);
        self.out.comments.push(Comment {
            text: self.s[from..j].to_string(),
            pos: from,
            raw_len: j - from,
            line,
            col,
        });
        self.advance_to(j);
    }

    /// Plain (byte) string starting with the quote at `open`.
    fn string(&mut self, open: usize) {
        let from = self.i;
        let mut j = open + 1;
        let mut cooked = String::new();
        while j < self.b.len() {
            match self.b[j] {
                b'\\' => {
                    let (c, next) = cook_escape(self.b, j);
                    cooked.push(c);
                    j = next;
                }
                b'"' => {
                    j += 1;
                    break;
                }
                c => {
                    cooked.push(c as char);
                    j += 1;
                }
            }
        }
        self.push(TokKind::Str, from, j, cooked);
        self.advance_to(j);
    }

    /// Length of a raw-string token starting at `self.i`, if any.
    fn raw_string_len(&self) -> Option<usize> {
        let b = self.b;
        let mut j = self.i;
        if b.get(j) == Some(&b'b') {
            j += 1;
        }
        if b.get(j) != Some(&b'r') {
            return None;
        }
        j += 1;
        let mut hashes = 0;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) != Some(&b'"') {
            return None;
        }
        j += 1;
        while j < b.len() {
            if b[j] == b'"' {
                let mut k = 0;
                while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    return Some(j + 1 + hashes - self.i);
                }
            }
            j += 1;
        }
        Some(b.len() - self.i)
    }

    fn raw_string(&mut self, len: usize) {
        let from = self.i;
        let to = from + len;
        // Cooked value: the bytes between the quotes (raw strings have
        // no escapes). Re-derive the `#` depth from the prefix.
        let mut j = from;
        if self.b.get(j) == Some(&b'b') {
            j += 1;
        }
        j += 1; // the `r`
        let mut hashes = 0;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        let open = j + 1; // past the opening quote
        let close = to.saturating_sub(1 + hashes).max(open);
        let inner = self.s.get(open..close).unwrap_or("");
        self.push(TokKind::Str, from, to, inner.to_string());
        self.advance_to(to);
    }

    fn char_or_lifetime(&mut self) {
        let from = self.i;
        let is_char = matches!(
            (self.peek(1), self.peek(2)),
            (Some(b'\\'), _) | (Some(_), Some(b'\''))
        );
        if is_char {
            let mut j = from + 1;
            if self.b.get(j) == Some(&b'\\') {
                j += 2;
                while j < self.b.len() && self.b[j] != b'\'' {
                    j += 1;
                }
            } else {
                j += 1;
            }
            let j = (j + 1).min(self.b.len());
            self.push(TokKind::Char, from, j, String::new());
            self.advance_to(j);
        } else {
            // Lifetime: `'` then an identifier.
            let mut j = from + 1;
            while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                j += 1;
            }
            let text = self.s[from..j].to_string();
            self.push(TokKind::Lifetime, from, j, text);
            self.advance_to(j.max(from + 1));
        }
    }

    fn number(&mut self) {
        let from = self.i;
        let mut j = from;
        // Integer part (covers 0x/0b/0o digits and type suffixes).
        while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
            j += 1;
        }
        // Fraction only when `.` is followed by a digit (so `1..2` and
        // `x.0.1` tuple chains stay punctuated).
        if self.b.get(j) == Some(&b'.') && self.b.get(j + 1).is_some_and(u8::is_ascii_digit) {
            j += 1;
            while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
                j += 1;
            }
            // Exponent sign (`1.5e-3`).
            if matches!(self.b.get(j), Some(b'+') | Some(b'-'))
                && matches!(self.b.get(j.wrapping_sub(1)), Some(b'e') | Some(b'E'))
            {
                j += 1;
                while j < self.b.len() && self.b[j].is_ascii_alphanumeric() {
                    j += 1;
                }
            }
        }
        let text = self.s[from..j].to_string();
        self.push(TokKind::Num, from, j, text);
        self.i = j;
    }

    fn ident(&mut self) {
        let from = self.i;
        let mut j = from;
        while j < self.b.len() && (self.b[j].is_ascii_alphanumeric() || self.b[j] == b'_') {
            j += 1;
        }
        let text = self.s[from..j].to_string();
        self.push(TokKind::Ident, from, j, text);
        self.i = j;
    }
}

/// Cooks one escape sequence starting at the backslash; returns the
/// character and the index after the sequence. Unknown escapes cook to
/// the escaped character itself — good enough for name extraction.
fn cook_escape(b: &[u8], at: usize) -> (char, usize) {
    match b.get(at + 1) {
        Some(b'n') => ('\n', at + 2),
        Some(b't') => ('\t', at + 2),
        Some(b'r') => ('\r', at + 2),
        Some(b'0') => ('\0', at + 2),
        Some(b'u') => {
            // \u{...}: skip to the closing brace; cook to '?' (rule
            // names never use unicode escapes).
            let mut j = at + 2;
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            ('?', (j + 1).min(b.len()))
        }
        Some(b'x') => ('?', (at + 4).min(b.len())),
        Some(&c) => (c as char, at + 2),
        None => ('\\', at + 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_positions() {
        let lexed = lex("fn f() {\n    x.lock();\n}\n");
        let lock = lexed.toks.iter().find(|t| t.is_ident("lock")).unwrap();
        assert_eq!((lock.line, lock.col), (2, 7));
    }

    #[test]
    fn strings_are_cooked_and_single_tokens() {
        let toks = kinds(r#"let s = "a\nb";"#);
        assert!(toks.contains(&(TokKind::Str, "a\nb".to_string())));
    }

    #[test]
    fn raw_strings_any_depth() {
        let toks = kinds(r###"let s = r#"CA_X"#;"###);
        assert!(toks.contains(&(TokKind::Str, "CA_X".to_string())));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn floats_vs_ranges() {
        let toks = kinds("let a = 1.5; let b = 1..2; let c = x.0;");
        assert!(toks.contains(&(TokKind::Num, "1.5".to_string())));
        assert!(toks.contains(&(TokKind::Num, "1".to_string())));
        assert!(toks.contains(&(TokKind::Num, "2".to_string())));
    }

    #[test]
    fn nested_block_comments_collected() {
        let lexed = lex("/* a /* b */ c */ fn f() {}");
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("b"));
        assert!(lexed.toks[0].is_ident("fn"));
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let lexed = lex("let s = \"oops");
        assert_eq!(lexed.toks.last().unwrap().kind, TokKind::Str);
    }
}
