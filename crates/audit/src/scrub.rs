//! Source scrubbing: the lexical half of the auditor.
//!
//! [`ScrubbedSource`] turns one Rust source file into a "code-only"
//! view where comments and string/char literals are blanked out (each
//! byte replaced by a space, newlines preserved), so token searches see
//! code and nothing else. Along the way it collects the pieces the
//! rules need from the *non*-code text: `// ca-audit: allow(...)`
//! suppression pragmas, `// SAFETY:` comments, and `#[cfg(test)]`
//! region line masks.
//!
//! The lexer handles line comments, nested block comments, string and
//! raw-string literals (any `#` depth), byte strings, and char
//! literals, and tells lifetimes (`'a`) apart from char literals
//! (`'a'`) by lookahead. That is the entire Rust surface a token-level
//! audit needs; anything fancier would mean depending on rustc.

/// One parsed `// ca-audit: allow(rule, reason)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Rule id named by the pragma.
    pub rule: String,
    /// Free-text justification (non-empty by construction).
    pub reason: String,
}

/// A pragma that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedPragma {
    /// 1-based line.
    pub line: usize,
    /// What was wrong.
    pub problem: String,
}

/// A source file after lexical scrubbing; see the module docs.
pub struct ScrubbedSource {
    /// Code-only text: comments/literals blanked, newlines kept.
    code: String,
    /// Byte offset where each 1-based line starts in `code`.
    line_starts: Vec<usize>,
    /// Per-line flag: inside a `#[cfg(test)]` item.
    test_mask: Vec<bool>,
    /// Raw lines (for `SAFETY:` lookup).
    raw_lines: Vec<String>,
    /// Well-formed suppression pragmas.
    pub allows: Vec<AllowPragma>,
    /// Broken suppression pragmas.
    pub malformed_pragmas: Vec<MalformedPragma>,
}

impl ScrubbedSource {
    /// Lexes `content` into a scrubbed view.
    pub fn new(content: &str) -> ScrubbedSource {
        let (code, comments) = scrub(content);
        debug_assert_eq!(code.len(), content.len());
        let mut line_starts = vec![0usize];
        for (i, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let raw_lines: Vec<String> = content.lines().map(|l| l.to_string()).collect();
        let (allows, malformed_pragmas) = parse_pragmas(&comments);
        let test_mask = test_line_mask(&code, &line_starts);
        ScrubbedSource {
            code,
            line_starts,
            test_mask,
            raw_lines,
            allows,
            malformed_pragmas,
        }
    }

    /// 1-based line number of byte offset `pos` in the code view.
    fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `line` (1-based) is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Lines (1-based, ascending, deduplicated) where `token` occurs in
    /// code with identifier boundaries respected on both sides.
    pub fn token_lines(&self, token: &str) -> Vec<usize> {
        let mut lines = Vec::new();
        let bytes = self.code.as_bytes();
        let tok = token.as_bytes();
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let mut from = 0;
        while let Some(found) = find_from(&self.code, token, from) {
            from = found + 1;
            if tok.first().is_some_and(|&f| ident(f)) && found > 0 && ident(bytes[found - 1]) {
                continue;
            }
            if tok.last().is_some_and(|&l| ident(l)) {
                if let Some(&next) = bytes.get(found + tok.len()) {
                    if ident(next) {
                        continue;
                    }
                }
            }
            let line = self.line_of(found);
            if lines.last() != Some(&line) {
                lines.push(line);
            }
        }
        lines
    }

    /// Whether `line` or one of the 3 lines above it carries a
    /// `SAFETY:` comment (rule D6).
    pub fn has_safety_comment(&self, line: usize) -> bool {
        let hi = line.min(self.raw_lines.len());
        let lo = hi.saturating_sub(4);
        self.raw_lines[lo..hi].iter().any(|l| l.contains("SAFETY:"))
    }

    /// If an allow pragma for `rule` covers `line` (same line or the
    /// line directly above), returns the pragma's line.
    pub fn allow_covering(&self, line: usize, rule: &str) -> Option<usize> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
            .map(|a| a.line)
    }
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|i| i + from)
}

/// Blanks comments and string/char literals, preserving length and
/// newlines. Also returns each line comment as `(1-based line, text)`
/// — the only place suppression pragmas are honored.
fn scrub(content: &str) -> (String, Vec<(usize, String)>) {
    let b = content.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut i = 0;
    let blank = |out: &mut Vec<u8>, b: &[u8], from: usize, to: usize, line: &mut usize| {
        for &byte in &b[from..to] {
            if byte == b'\n' {
                *line += 1;
            }
            out.push(if byte == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        // Line comment (captured for pragma parsing).
        if b[i] == b'/' && b.get(i + 1) == Some(&b'/') {
            let end = memchr_newline(b, i);
            comments.push((line, String::from_utf8_lossy(&b[i..end]).into_owned()));
            blank(&mut out, b, i, end, &mut line);
            i = end;
        // Block comment (nested).
        } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            blank(&mut out, b, i, j, &mut line);
            i = j;
        // Raw (byte) string: r"..", r#".."#, br#".."# etc.
        } else if let Some(len) = raw_string_len(b, i) {
            blank(&mut out, b, i, i + len, &mut line);
            i += len;
        // Plain (byte) string.
        } else if b[i] == b'"' || (b[i] == b'b' && b.get(i + 1) == Some(&b'"')) {
            let open = if b[i] == b'"' { i } else { i + 1 };
            let mut j = open + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(b.len());
            blank(&mut out, b, i, j, &mut line);
            i = j;
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a is not.
        } else if b[i] == b'\'' {
            let is_char = matches!(
                (b.get(i + 1), b.get(i + 2)),
                (Some(b'\\'), _) | (Some(_), Some(b'\''))
            );
            if is_char {
                let mut j = i + 1;
                if b.get(j) == Some(&b'\\') {
                    j += 2;
                    // Skip to the closing quote (covers \u{...}).
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                } else {
                    j += 1;
                }
                let j = (j + 1).min(b.len());
                blank(&mut out, b, i, j, &mut line);
                i = j;
            } else {
                out.push(b[i]);
                i += 1;
            }
        } else {
            if b[i] == b'\n' {
                line += 1;
            }
            out.push(b[i]);
            i += 1;
        }
    }
    // No unsafe needed: `out` is built byte-for-byte from valid UTF-8
    // where every replaced byte is ASCII, so it remains valid UTF-8.
    (String::from_utf8(out).unwrap_or_default(), comments)
}

fn memchr_newline(b: &[u8], from: usize) -> usize {
    b[from..]
        .iter()
        .position(|&c| c == b'\n')
        .map_or(b.len(), |p| from + p)
}

/// Length of a raw-string token starting at `i`, if one starts there.
fn raw_string_len(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) != Some(&b'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = 0;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return Some(j + 1 + hashes - i);
            }
        }
        j += 1;
    }
    Some(b.len() - i)
}

/// Parses `// ca-audit: allow(rule, reason)` pragmas out of the line
/// comments the lexer collected. Only plain `//` comments count: doc
/// comments (`///`, `//!`) merely *describe* pragmas, and string
/// literals never reach here at all.
fn parse_pragmas(comments: &[(usize, String)]) -> (Vec<AllowPragma>, Vec<MalformedPragma>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (line, text) in comments {
        let line = *line;
        let body = text.trim_start_matches('/');
        if text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let Some(pos) = body.find("ca-audit:") else {
            continue;
        };
        // The pragma must be the whole comment, not a mention inside
        // prose: nothing but whitespace before the marker...
        if !body[..pos].trim().is_empty() {
            continue;
        }
        let rest = body[pos + "ca-audit:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedPragma {
                line,
                problem: format!("expected `allow(...)`, found `{}`", rest.trim()),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push(MalformedPragma {
                line,
                problem: "missing closing `)`".into(),
            });
            continue;
        };
        let inner = &args[..close];
        let Some((rule, reason)) = inner.split_once(',') else {
            malformed.push(MalformedPragma {
                line,
                problem: "missing reason: write `allow(rule, reason)`".into(),
            });
            continue;
        };
        let (rule, reason) = (rule.trim(), reason.trim());
        if rule.is_empty() || reason.is_empty() {
            malformed.push(MalformedPragma {
                line,
                problem: "rule id and reason must both be non-empty".into(),
            });
            continue;
        }
        // ...and nothing but whitespace after the close paren, so a
        // prose sentence quoting the syntax cannot parse as a pragma.
        if !args[close + 1..].trim().is_empty() {
            malformed.push(MalformedPragma {
                line,
                problem: "trailing text after `)`".into(),
            });
            continue;
        }
        allows.push(AllowPragma {
            line,
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
    }
    (allows, malformed)
}

/// Marks the lines covered by `#[cfg(test)]` items (attribute through
/// the matching close brace, or through `;` for brace-less items).
fn test_line_mask(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let n_lines = line_starts.len();
    let mut mask = vec![false; n_lines];
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(found) = find_from(code, "#[cfg(test)]", from) {
        from = found + 1;
        // Walk forward to the item's opening `{` (skipping further
        // attributes and the item header) or a terminating `;`.
        let mut j = found + "#[cfg(test)]".len();
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(open) => {
                let mut depth = 0usize;
                let mut k = open;
                loop {
                    if k >= b.len() {
                        break b.len();
                    }
                    match b[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j,
        };
        let first = line_index(line_starts, found);
        let last = line_index(line_starts, end.min(b.len().saturating_sub(1)));
        for flag in mask.iter_mut().take(last + 1).skip(first) {
            *flag = true;
        }
    }
    mask
}

/// 0-based line index of byte offset `pos`.
fn line_index(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrubs_comments_and_strings() {
        let src = ScrubbedSource::new(
            "let a = \"HashMap\"; // HashMap in comment\nlet b = HashMap::new();\n",
        );
        assert_eq!(src.token_lines("HashMap"), vec![2]);
    }

    #[test]
    fn scrubs_raw_strings_and_chars() {
        let src = ScrubbedSource::new(
            "let s = r#\"Instant::now()\"#;\nlet c = '\"';\nlet t = Instant::now();\n",
        );
        assert_eq!(src.token_lines("Instant::now"), vec![3]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive lexer treats `'a` as an unterminated char literal and
        // blanks the rest of the file.
        let src = ScrubbedSource::new("fn f<'a>(x: &'a str) {\n    thread_rng();\n}\n");
        assert_eq!(src.token_lines("thread_rng"), vec![2]);
    }

    #[test]
    fn nested_block_comments() {
        let src = ScrubbedSource::new("/* outer /* HashMap */ still comment */ let x = 1;\n");
        assert!(src.token_lines("HashMap").is_empty());
    }

    #[test]
    fn identifier_boundaries_respected() {
        let src = ScrubbedSource::new("let a = MyHashMap::new();\nlet b = HashMap_ext();\n");
        assert!(src.token_lines("HashMap").is_empty());
    }

    #[test]
    fn cfg_test_mask_covers_mod_block() {
        let src = ScrubbedSource::new(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n",
        );
        assert!(!src.is_test_line(1));
        assert!(src.is_test_line(2));
        assert!(src.is_test_line(3));
        assert!(src.is_test_line(4));
        assert!(src.is_test_line(5));
        assert!(!src.is_test_line(6));
    }

    #[test]
    fn pragma_parses_and_covers_next_line() {
        let src = ScrubbedSource::new(
            "// ca-audit: allow(D4, deliberate corruption harness)\nstd::fs::write(p, b);\n",
        );
        assert_eq!(src.allows.len(), 1);
        assert_eq!(src.allows[0].rule, "D4");
        assert_eq!(src.allow_covering(2, "D4"), Some(1));
        assert_eq!(src.allow_covering(3, "D4"), None);
        assert_eq!(src.allow_covering(2, "D1"), None);
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let src = ScrubbedSource::new("// ca-audit: allow(D4)\n// ca-audit: deny(D4, x)\n");
        assert_eq!(src.malformed_pragmas.len(), 2);
    }

    #[test]
    fn safety_comment_lookup() {
        let src = ScrubbedSource::new(
            "// SAFETY: the buffer outlives the call\nunsafe { ptr::read(p) }\n\n\n\n\nunsafe { bad() }\n",
        );
        assert!(src.has_safety_comment(2));
        assert!(!src.has_safety_comment(7));
    }
}
