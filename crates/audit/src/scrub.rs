//! Source scrubbing: the code-only view the token rules search.
//!
//! [`ScrubbedSource`] is built on the real lexer ([`crate::lexer`]):
//! every comment and string/char literal is blanked out of a copy of
//! the file (byte-for-byte, newlines preserved), so token searches see
//! code and nothing else. Along the way it collects the pieces the
//! rules need from the *non*-code text: `// ca-audit: allow(...)`
//! suppression pragmas, `// SAFETY:` / `// PANIC-OK:` comments, and
//! `#[cfg(test)]` region line masks.

use crate::lexer::{self, Comment, TokKind};

/// One parsed `// ca-audit: allow(rule, reason)` pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowPragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// 1-based column of the comment start (span-accurate A1 target).
    pub col: usize,
    /// Rule id named by the pragma.
    pub rule: String,
    /// Free-text justification (non-empty by construction).
    pub reason: String,
}

/// A pragma that could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MalformedPragma {
    /// 1-based line.
    pub line: usize,
    /// 1-based column of the comment start.
    pub col: usize,
    /// What was wrong.
    pub problem: String,
}

/// A source file after lexical scrubbing; see the module docs.
pub struct ScrubbedSource {
    /// Code-only text: comments/literals blanked, newlines kept.
    code: String,
    /// Byte offset where each 1-based line starts in `code`.
    line_starts: Vec<usize>,
    /// Per-line flag: inside a `#[cfg(test)]` item.
    test_mask: Vec<bool>,
    /// Raw lines (for `SAFETY:` / `PANIC-OK:` lookup).
    raw_lines: Vec<String>,
    /// Well-formed suppression pragmas.
    pub allows: Vec<AllowPragma>,
    /// Broken suppression pragmas.
    pub malformed_pragmas: Vec<MalformedPragma>,
}

impl ScrubbedSource {
    /// Lexes `content` into a scrubbed view.
    pub fn new(content: &str) -> ScrubbedSource {
        let lexed = lexer::lex(content);
        ScrubbedSource::from_lexed(content, &lexed)
    }

    /// Builds the scrubbed view from an existing lex (the workspace
    /// model lexes each file once and shares the result).
    pub fn from_lexed(content: &str, lexed: &lexer::Lexed) -> ScrubbedSource {
        let mut code: Vec<u8> = content.as_bytes().to_vec();
        let blank = |code: &mut [u8], from: usize, len: usize| {
            for byte in code.iter_mut().skip(from).take(len) {
                if *byte != b'\n' {
                    *byte = b' ';
                }
            }
        };
        for c in &lexed.comments {
            blank(&mut code, c.pos, c.raw_len);
        }
        for t in &lexed.toks {
            if matches!(t.kind, TokKind::Str | TokKind::Char) {
                blank(&mut code, t.pos, t.raw_len);
            }
        }
        let code = String::from_utf8_lossy(&code).into_owned();
        let mut line_starts = vec![0usize];
        for (i, b) in code.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let raw_lines: Vec<String> = content.lines().map(|l| l.to_string()).collect();
        let (allows, malformed_pragmas) = parse_pragmas(&lexed.comments);
        let test_mask = test_line_mask(&code, &line_starts);
        ScrubbedSource {
            code,
            line_starts,
            test_mask,
            raw_lines,
            allows,
            malformed_pragmas,
        }
    }

    /// 1-based line number of byte offset `pos` in the code view.
    fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Whether `line` (1-based) is inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    }

    /// Lines (1-based, ascending, deduplicated) where `token` occurs in
    /// code with identifier boundaries respected on both sides.
    pub fn token_lines(&self, token: &str) -> Vec<usize> {
        self.token_sites(token)
            .into_iter()
            .map(|(l, _)| l)
            .collect()
    }

    /// `(line, col)` sites (1-based, ascending, one per line) where
    /// `token` occurs in code with identifier boundaries respected.
    pub fn token_sites(&self, token: &str) -> Vec<(usize, usize)> {
        let mut sites: Vec<(usize, usize)> = Vec::new();
        let bytes = self.code.as_bytes();
        let tok = token.as_bytes();
        let ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
        let mut from = 0;
        while let Some(found) = find_from(&self.code, token, from) {
            from = found + 1;
            if tok.first().is_some_and(|&f| ident(f)) && found > 0 && ident(bytes[found - 1]) {
                continue;
            }
            if tok.last().is_some_and(|&l| ident(l)) {
                if let Some(&next) = bytes.get(found + tok.len()) {
                    if ident(next) {
                        continue;
                    }
                }
            }
            let line = self.line_of(found);
            if sites.last().map(|&(l, _)| l) != Some(line) {
                let col = found - self.line_starts[line - 1] + 1;
                sites.push((line, col));
            }
        }
        sites
    }

    /// Whether `line` or one of the 3 lines above it carries a
    /// `SAFETY:` comment (rule D6).
    pub fn has_safety_comment(&self, line: usize) -> bool {
        self.has_marker_comment(line, "SAFETY:")
    }

    /// Whether `line` or one of the 3 lines above it carries a
    /// `PANIC-OK:` annotation (rule D9).
    pub fn has_panic_ok(&self, line: usize) -> bool {
        self.has_marker_comment(line, "PANIC-OK:")
    }

    fn has_marker_comment(&self, line: usize, marker: &str) -> bool {
        let hi = line.min(self.raw_lines.len());
        let lo = line.saturating_sub(4);
        lo < hi && self.raw_lines[lo..hi].iter().any(|l| l.contains(marker))
    }

    /// If an allow pragma for `rule` covers `line` (same line or the
    /// line directly above), returns the pragma's line.
    pub fn allow_covering(&self, line: usize, rule: &str) -> Option<usize> {
        self.allows
            .iter()
            .find(|a| a.rule == rule && (a.line == line || a.line + 1 == line))
            .map(|a| a.line)
    }
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|i| i + from)
}

/// Parses `// ca-audit: allow(rule, reason)` pragmas out of line
/// comments. Only plain `//` comments count: doc comments (`///`,
/// `//!`) merely *describe* pragmas, block comments and string
/// literals never reach here at all.
fn parse_pragmas(comments: &[Comment]) -> (Vec<AllowPragma>, Vec<MalformedPragma>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for comment in comments {
        let text = &comment.text;
        if !text.starts_with("//") || text.starts_with("///") || text.starts_with("//!") {
            continue;
        }
        let (line, col) = (comment.line, comment.col);
        let body = text.trim_start_matches('/');
        let Some(pos) = body.find("ca-audit:") else {
            continue;
        };
        // The pragma must be the whole comment, not a mention inside
        // prose: nothing but whitespace before the marker...
        if !body[..pos].trim().is_empty() {
            continue;
        }
        let rest = body[pos + "ca-audit:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            malformed.push(MalformedPragma {
                line,
                col,
                problem: format!("expected `allow(...)`, found `{}`", rest.trim()),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            malformed.push(MalformedPragma {
                line,
                col,
                problem: "missing closing `)`".into(),
            });
            continue;
        };
        let inner = &args[..close];
        let Some((rule, reason)) = inner.split_once(',') else {
            malformed.push(MalformedPragma {
                line,
                col,
                problem: "missing reason: write `allow(rule, reason)`".into(),
            });
            continue;
        };
        let (rule, reason) = (rule.trim(), reason.trim());
        if rule.is_empty() || reason.is_empty() {
            malformed.push(MalformedPragma {
                line,
                col,
                problem: "rule id and reason must both be non-empty".into(),
            });
            continue;
        }
        // ...and nothing but whitespace after the close paren, so a
        // prose sentence quoting the syntax cannot parse as a pragma.
        if !args[close + 1..].trim().is_empty() {
            malformed.push(MalformedPragma {
                line,
                col,
                problem: "trailing text after `)`".into(),
            });
            continue;
        }
        allows.push(AllowPragma {
            line,
            col,
            rule: rule.to_string(),
            reason: reason.to_string(),
        });
    }
    (allows, malformed)
}

/// Marks the lines covered by `#[cfg(test)]` items (attribute through
/// the matching close brace, or through `;` for brace-less items).
fn test_line_mask(code: &str, line_starts: &[usize]) -> Vec<bool> {
    let n_lines = line_starts.len();
    let mut mask = vec![false; n_lines];
    let b = code.as_bytes();
    let mut from = 0;
    while let Some(found) = find_from(code, "#[cfg(test)]", from) {
        from = found + 1;
        // Walk forward to the item's opening `{` (skipping further
        // attributes and the item header) or a terminating `;`.
        let mut j = found + "#[cfg(test)]".len();
        let mut open = None;
        while j < b.len() {
            match b[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                _ => j += 1,
            }
        }
        let end = match open {
            Some(open) => {
                let mut depth = 0usize;
                let mut k = open;
                loop {
                    if k >= b.len() {
                        break b.len();
                    }
                    match b[k] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                break k + 1;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
            }
            None => j,
        };
        let first = line_index(line_starts, found);
        let last = line_index(line_starts, end.min(b.len().saturating_sub(1)));
        for flag in mask.iter_mut().take(last + 1).skip(first) {
            *flag = true;
        }
    }
    mask
}

/// 0-based line index of byte offset `pos`.
fn line_index(line_starts: &[usize], pos: usize) -> usize {
    match line_starts.binary_search(&pos) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrubs_comments_and_strings() {
        let src = ScrubbedSource::new(
            "let a = \"HashMap\"; // HashMap in comment\nlet b = HashMap::new();\n",
        );
        assert_eq!(src.token_lines("HashMap"), vec![2]);
    }

    #[test]
    fn scrubs_raw_strings_and_chars() {
        let src = ScrubbedSource::new(
            "let s = r#\"Instant::now()\"#;\nlet c = '\"';\nlet t = Instant::now();\n",
        );
        assert_eq!(src.token_lines("Instant::now"), vec![3]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // A naive lexer treats `'a` as an unterminated char literal and
        // blanks the rest of the file.
        let src = ScrubbedSource::new("fn f<'a>(x: &'a str) {\n    thread_rng();\n}\n");
        assert_eq!(src.token_lines("thread_rng"), vec![2]);
    }

    #[test]
    fn nested_block_comments() {
        let src = ScrubbedSource::new("/* outer /* HashMap */ still comment */ let x = 1;\n");
        assert!(src.token_lines("HashMap").is_empty());
    }

    #[test]
    fn identifier_boundaries_respected() {
        let src = ScrubbedSource::new("let a = MyHashMap::new();\nlet b = HashMap_ext();\n");
        assert!(src.token_lines("HashMap").is_empty());
    }

    #[test]
    fn token_sites_carry_columns() {
        let src = ScrubbedSource::new("fn f() { let t = Instant::now(); }\n");
        assert_eq!(src.token_sites("Instant::now"), vec![(1, 18)]);
    }

    #[test]
    fn cfg_test_mask_covers_mod_block() {
        let src = ScrubbedSource::new(
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n",
        );
        assert!(!src.is_test_line(1));
        assert!(src.is_test_line(2));
        assert!(src.is_test_line(3));
        assert!(src.is_test_line(4));
        assert!(src.is_test_line(5));
        assert!(!src.is_test_line(6));
    }

    #[test]
    fn pragma_parses_and_covers_next_line() {
        let src = ScrubbedSource::new(
            "// ca-audit: allow(D4, deliberate corruption harness)\nstd::fs::write(p, b);\n",
        );
        assert_eq!(src.allows.len(), 1);
        assert_eq!(src.allows[0].rule, "D4");
        assert_eq!(src.allows[0].col, 1);
        assert_eq!(src.allow_covering(2, "D4"), Some(1));
        assert_eq!(src.allow_covering(3, "D4"), None);
        assert_eq!(src.allow_covering(2, "D1"), None);
    }

    #[test]
    fn malformed_pragmas_are_reported() {
        let src = ScrubbedSource::new("// ca-audit: allow(D4)\n// ca-audit: deny(D4, x)\n");
        assert_eq!(src.malformed_pragmas.len(), 2);
    }

    #[test]
    fn safety_comment_lookup() {
        let src = ScrubbedSource::new(
            "// SAFETY: the buffer outlives the call\nunsafe { ptr::read(p) }\n\n\n\n\nunsafe { bad() }\n",
        );
        assert!(src.has_safety_comment(2));
        assert!(!src.has_safety_comment(7));
    }

    #[test]
    fn panic_ok_lookup() {
        let src = ScrubbedSource::new("// PANIC-OK: checked above\nx.unwrap();\n");
        assert!(src.has_panic_ok(2));
        assert!(!src.has_panic_ok(5));
    }
}
