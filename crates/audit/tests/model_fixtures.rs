//! Fire/quiet fixture self-tests for the analysis rules (D8–D12) and
//! the pragma-hygiene span regression (A1). Each fire fixture seeds
//! exactly one violation and pins the finding's span; each quiet
//! fixture shows the audited way to write the same code.

use ca_audit::{audit_sources, Severity, SourceFile, SourceSet};

fn set(files: &[(&str, &str, &str)]) -> SourceSet {
    SourceSet {
        files: files
            .iter()
            .map(|(c, l, s)| SourceFile {
                crate_name: c.to_string(),
                label: l.to_string(),
                content: s.to_string(),
            })
            .collect(),
        readme: None,
    }
}

fn rule<'a>(findings: &'a [ca_audit::Finding], id: &str) -> Vec<&'a ca_audit::Finding> {
    findings.iter().filter(|f| f.rule == id).collect()
}

// --------------------------------------------------------------- D8

/// Seeded lock-order inversion: two functions nest the same pair of
/// mutexes in opposite orders. Both nesting sites carry an audited
/// pragma, so the only surviving finding is the (non-suppressible)
/// cycle error — exactly one, at the first inverted acquisition.
const D8_INVERSION: &str = r#"
use std::sync::Mutex;

pub struct Admission { pub q: Mutex<u32> }
pub struct Engine { pub jobs: Mutex<u32> }

pub struct Server { pub adm: Admission, pub eng: Engine }

impl Server {
    pub fn submit(&self) {
        let q = self.adm.q.lock().unwrap();
        // ca-audit: allow(D8, fixture: audited admission-then-engine nesting)
        let j = self.eng.jobs.lock().unwrap();
        drop(j);
        drop(q);
    }
    pub fn drain(&self) {
        let j = self.eng.jobs.lock().unwrap();
        // ca-audit: allow(D8, fixture: audited engine-then-admission nesting)
        let q = self.adm.q.lock().unwrap();
        drop(q);
        drop(j);
    }
}
"#;

#[test]
fn d8_fires_on_seeded_lock_inversion() {
    let findings = audit_sources(&set(&[(
        "ca-serve",
        "crates/serve/src/fix.rs",
        D8_INVERSION,
    )]));
    let d8 = rule(&findings, "D8");
    assert_eq!(d8.len(), 1, "want exactly the cycle error: {findings:?}");
    let f = d8[0];
    assert_eq!(f.severity, Severity::Error);
    assert!(f.message.contains("lock-order cycle"), "{f}");
    assert!(
        f.message.contains("ca-serve/Admission.q") && f.message.contains("ca-serve/Engine.jobs"),
        "{f}"
    );
    // Span-accurate: the first inverted acquisition is the `jobs`
    // receiver on line 13 of the fixture.
    assert_eq!(
        (f.file.as_str(), f.line),
        ("crates/serve/src/fix.rs", 13),
        "{f}"
    );
    assert!(f.col > 1, "column must be real, got {f}");
    // The two nesting pragmas suppressed real findings, so no A1.
    assert!(rule(&findings, "A1").is_empty(), "{findings:?}");
}

#[test]
fn d8_fires_on_unaudited_cross_class_nesting() {
    let src = r#"
use std::sync::Mutex;
pub struct A { pub first: Mutex<u32> }
pub struct B { pub second: Mutex<u32> }
pub struct S { pub a: A, pub b: B }
impl S {
    pub fn nested(&self) {
        let g = self.a.first.lock().unwrap();
        let h = self.b.second.lock().unwrap();
        drop(h);
        drop(g);
    }
}
"#;
    let findings = audit_sources(&set(&[("ca-core", "crates/core/src/fix.rs", src)]));
    let d8 = rule(&findings, "D8");
    assert_eq!(d8.len(), 1, "{findings:?}");
    assert!(d8[0].message.contains("acquired while"), "{}", d8[0]);
}

#[test]
fn d8_quiet_on_consistent_order_and_dropped_guards() {
    let src = r#"
use std::sync::Mutex;
pub struct A { pub first: Mutex<u32> }
pub struct B { pub second: Mutex<u32> }
pub struct S { pub a: A, pub b: B }
impl S {
    pub fn forward(&self) {
        let g = self.a.first.lock().unwrap();
        // ca-audit: allow(D8, documented a-before-b order)
        let h = self.b.second.lock().unwrap();
        drop(h);
        drop(g);
    }
    pub fn sequential(&self) {
        let g = self.a.first.lock().unwrap();
        drop(g);
        let h = self.b.second.lock().unwrap();
        drop(h);
    }
}
"#;
    let findings = audit_sources(&set(&[("ca-core", "crates/core/src/fix.rs", src)]));
    assert!(rule(&findings, "D8").is_empty(), "{findings:?}");
}

/// The inversion must also be seen when the two acquisitions live in
/// different functions connected by a call while a lock is held.
#[test]
fn d8_fires_across_call_graph() {
    let src = r#"
use std::sync::Mutex;
pub struct A { pub first: Mutex<u32> }
pub struct B { pub second: Mutex<u32> }
pub struct S { pub a: A, pub b: B }
impl S {
    fn inner_second(&self) {
        let h = self.b.second.lock().unwrap();
        drop(h);
    }
    fn inner_first(&self) {
        let g = self.a.first.lock().unwrap();
        drop(g);
    }
    pub fn ab(&self) {
        let g = self.a.first.lock().unwrap();
        self.inner_second();
        drop(g);
    }
    pub fn ba(&self) {
        let h = self.b.second.lock().unwrap();
        self.inner_first();
        drop(h);
    }
}
"#;
    let findings = audit_sources(&set(&[("ca-exec", "crates/exec/src/fix.rs", src)]));
    let d8 = rule(&findings, "D8");
    assert_eq!(d8.len(), 1, "{findings:?}");
    assert!(d8[0].message.contains("lock-order cycle"), "{}", d8[0]);
}

// --------------------------------------------------------------- D9

#[test]
fn d9_fires_on_unwrap_and_indexing_in_supervised_crate() {
    let src = r#"
pub fn handler(xs: &[u32]) -> u32 {
    let v = xs.first().unwrap();
    *v + xs[0]
}
"#;
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", src)]));
    let d9 = rule(&findings, "D9");
    assert_eq!(d9.len(), 2, "{findings:?}");
    assert!(d9[0].message.contains("`.unwrap()` may panic"), "{}", d9[0]);
    assert_eq!((d9[0].line, d9[1].line), (3, 4));
    assert!(d9.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn d9_quiet_under_catch_unwind_panic_ok_and_patterns() {
    let src = r#"
pub fn handler(xs: &[u32]) -> u32 {
    let caught = std::panic::catch_unwind(|| xs.first().unwrap() + xs[0]);
    // PANIC-OK: fixture — xs is checked non-empty by the caller.
    let head = xs[0];
    let [a, b] = xs[..] else { return head };
    let tail = &xs[1..];
    caught.unwrap_or(0) + a + b + tail.len() as u32
}
"#;
    let findings = audit_sources(&set(&[("ca-shard", "crates/shard/src/fix.rs", src)]));
    assert!(rule(&findings, "D9").is_empty(), "{findings:?}");
}

#[test]
fn d9_quiet_outside_supervised_crates() {
    let src = "pub fn f(xs: &[u32]) -> u32 { xs.first().unwrap() + xs[0] }\n";
    let findings = audit_sources(&set(&[("ca-netlist", "crates/netlist/src/fix.rs", src)]));
    assert!(rule(&findings, "D9").is_empty(), "{findings:?}");
}

// --------------------------------------------------------------- D10

/// A complete, drift-free codec: every tag has an encoder arm, a
/// decoder arm, a wire-version note, and the caps const is referenced.
const D10_CLEAN: &str = r#"
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 16;

pub enum Frame {
    /// Liveness probe (wire v1).
    Ping,
    /// Payload frame (wire v2) — version-guarded in the decoder.
    Data(Vec<u8>),
}

pub fn encode_frame(f: &Frame, out: &mut Vec<u8>) {
    match f {
        Frame::Ping => out.push(1),
        Frame::Data(d) => {
            out.push(2);
            assert!(d.len() <= MAX_FRAME_PAYLOAD as usize);
            out.extend_from_slice(d);
        }
    }
}

pub fn decode_frame(version: u8, payload: &[u8]) -> Result<Frame, String> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err("oversized".to_string());
    }
    match payload.first().copied().ok_or("empty")? {
        1 => Ok(Frame::Ping),
        2 if version >= 2 => Ok(Frame::Data(payload[1..].to_vec())),
        t => Err(format!("bad tag {t}")),
    }
}
"#;

#[test]
fn d10_quiet_on_complete_codec() {
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", D10_CLEAN)]));
    assert!(rule(&findings, "D10").is_empty(), "{findings:?}");
}

#[test]
fn d10_fires_on_seeded_missing_decoder_arm() {
    // Remove tag 2's decoder arm from the clean codec: exactly one
    // error, at the encoder's push site for the now-orphaned tag.
    let src = D10_CLEAN.replace(
        "        2 if version >= 2 => Ok(Frame::Data(payload[1..].to_vec())),\n",
        "",
    );
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", &src)]));
    let d10 = rule(&findings, "D10");
    assert_eq!(d10.len(), 1, "{findings:?}");
    let f = d10[0];
    assert_eq!(f.severity, Severity::Error);
    assert!(
        f.message
            .contains("`Data` (tag 2) is encoded but has no decoder arm"),
        "{f}"
    );
    // Span-accurate: the `2` literal of `out.push(2)` on line 15.
    assert_eq!((f.line, f.col), (15, 22), "{f}");
}

#[test]
fn d10_fires_on_variant_mismatch_and_missing_wildcard() {
    let src = D10_CLEAN
        .replace("1 => Ok(Frame::Ping),", "1 => Ok(Frame::Data(Vec::new())),")
        .replace("        t => Err(format!(\"bad tag {t}\")),\n", "");
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", &src)]));
    let d10 = rule(&findings, "D10");
    assert!(
        d10.iter().any(|f| f
            .message
            .contains("tag 1 encodes `Ping` but decodes `Data`")),
        "{findings:?}"
    );
    assert!(
        d10.iter().any(|f| f.message.contains("no wildcard arm")),
        "{findings:?}"
    );
}

#[test]
fn d10_fires_on_missing_version_guard_and_cap() {
    let src = D10_CLEAN.replace("2 if version >= 2 =>", "2 =>").replace(
        "pub fn decode_frame(version: u8,",
        "pub fn decode_frame(_version: u8,",
    );
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", &src)]));
    assert!(
        rule(&findings, "D10")
            .iter()
            .any(|f| f.message.contains("decoded without a version guard")),
        "{findings:?}"
    );

    let src = D10_CLEAN.replace("MAX_FRAME_PAYLOAD", "FRAME_LIMIT");
    let findings = audit_sources(&set(&[("ca-serve", "crates/serve/src/fix.rs", &src)]));
    assert!(
        rule(&findings, "D10")
            .iter()
            .any(|f| f.message.contains("no referenced `MAX_FRAME*` size cap")),
        "{findings:?}"
    );
}

// --------------------------------------------------------------- D11

const D11_PREFIXES: &str = r#"
pub const INSTRUMENTED_PREFIXES: [&str; 2] = ["ca_core.", "ca_sim."];
"#;

#[test]
fn d11_fires_on_foreign_prefix_taxonomy_and_collision() {
    let core = r#"
pub fn work() {
    counter!("ca_core.items.done", Outcome).inc();
    counter!("ca_serve.items.done", Outcome).inc();
    counter!("ca_core.BadName", Outcome).inc();
    histogram!("ca_core.items.done", Work, &[1, 2]).observe(1);
}
"#;
    let findings = audit_sources(&set(&[
        ("ca-obs", "crates/obs/src/profile.rs", D11_PREFIXES),
        ("ca-core", "crates/core/src/fix.rs", core),
    ]));
    let d11 = rule(&findings, "D11");
    assert!(
        d11.iter().any(|f| f
            .message
            .contains("prefix `ca_serve.` is not in INSTRUMENTED_PREFIXES")),
        "{findings:?}"
    );
    assert!(
        d11.iter()
            .any(|f| f.message.contains("does not parse into the taxonomy")),
        "{findings:?}"
    );
    assert!(
        d11.iter()
            .any(|f| f.severity == Severity::Error && f.message.contains("ca_core.items.done")),
        "collision between counter and histogram signatures: {findings:?}"
    );
}

#[test]
fn d11_quiet_on_well_formed_metrics() {
    let core = r#"
pub fn work() {
    counter!("ca_core.items.done", Outcome).inc();
    timer!("ca_core.items.latency").start();
}
"#;
    let sim = r#"
pub fn eval() {
    histogram!("ca_sim.eval.batch", Work, &[1, 2]).observe(1);
}
"#;
    let findings = audit_sources(&set(&[
        ("ca-obs", "crates/obs/src/profile.rs", D11_PREFIXES),
        ("ca-core", "crates/core/src/fix.rs", core),
        ("ca-sim", "crates/sim/src/fix.rs", sim),
    ]));
    assert!(rule(&findings, "D11").is_empty(), "{findings:?}");
}

// --------------------------------------------------------------- D12

fn readme(body: &str) -> Option<(String, String)> {
    Some(("README.md".to_string(), body.to_string()))
}

const D12_SRC: &str = r#"
pub fn threads() -> Option<String> {
    std::env::var("CA_THREADS").ok()
}
"#;

#[test]
fn d12_fires_on_undocumented_read_and_readerless_row() {
    let mut s = set(&[("ca-exec", "crates/exec/src/fix.rs", D12_SRC)]);
    s.readme = readme(
        "# fixture\n\n<!-- ca-audit:env-table -->\n\n| Variable | Meaning |\n|---|---|\n| `CA_GHOST` | documented but never read |\n",
    );
    let findings = audit_sources(&s);
    let d12 = rule(&findings, "D12");
    assert!(
        d12.iter().any(|f| f.file == "crates/exec/src/fix.rs"
            && f.message.contains("`CA_THREADS` is read here but missing")),
        "{findings:?}"
    );
    assert!(
        d12.iter().any(|f| f.file == "README.md"
            && f.line == 7
            && f.message.contains("`CA_GHOST` has no reader")),
        "{findings:?}"
    );
}

#[test]
fn d12_fires_on_missing_sentinel() {
    let mut s = set(&[("ca-exec", "crates/exec/src/fix.rs", D12_SRC)]);
    s.readme = readme("# fixture with no table\n");
    let findings = audit_sources(&s);
    assert!(
        rule(&findings, "D12")
            .iter()
            .any(|f| f.message.contains("no `ca-audit:env-table` sentinel")),
        "{findings:?}"
    );
}

#[test]
fn d12_quiet_when_table_matches_reads() {
    let mut s = set(&[("ca-exec", "crates/exec/src/fix.rs", D12_SRC)]);
    s.readme = readme(
        "# fixture\n\n<!-- ca-audit:env-table -->\n\n| Variable | Meaning |\n|---|---|\n| `CA_THREADS` | worker count |\n",
    );
    let findings = audit_sources(&s);
    assert!(rule(&findings, "D12").is_empty(), "{findings:?}");
}

// --------------------------------------------------------------- A1

/// Regression: an unused pragma is reported at the pragma's own
/// file:line:col, not at whatever site the rule last visited — also
/// across files, where the ledger is global.
#[test]
fn a1_points_at_the_pragma_itself() {
    let used = r#"
pub fn handler(xs: &[u32]) -> u32 {
    // ca-audit: allow(D9, fixture: suppresses the unwrap below)
    xs.first().unwrap() + 1
}
"#;
    let unused = r#"
pub fn quiet() -> u32 {
    // ca-audit: allow(D9, fixture: nothing here can fire)
    7
}
"#;
    let findings = audit_sources(&set(&[
        ("ca-serve", "crates/serve/src/used.rs", used),
        ("ca-serve", "crates/serve/src/unused.rs", unused),
    ]));
    assert!(rule(&findings, "D9").is_empty(), "{findings:?}");
    let a1 = rule(&findings, "A1");
    assert_eq!(a1.len(), 1, "{findings:?}");
    let f = a1[0];
    assert_eq!(
        (f.file.as_str(), f.line, f.col),
        ("crates/serve/src/unused.rs", 3, 5),
        "A1 must carry the pragma's own span: {f}"
    );
}
