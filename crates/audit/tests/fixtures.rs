//! Per-rule fixture self-tests (DESIGN.md §10): every rule must fire on
//! a seeded violation and stay quiet on the compliant pattern. Fixture
//! code lives in raw strings, which the scanner scrubs — so these
//! snippets can never leak findings into a real workspace audit.

use ca_audit::{rule_table, scan_source, Severity};

/// Scans `src` as a file of `crate_name`, returning fired rule ids.
fn fired(crate_name: &str, src: &str) -> Vec<&'static str> {
    scan_source(crate_name, "fixture.rs", src, rule_table())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

#[track_caller]
fn assert_fires(rule: &str, crate_name: &str, src: &str) {
    let rules = fired(crate_name, src);
    assert!(
        rules.contains(&rule),
        "expected {rule} to fire for {crate_name}, got {rules:?}"
    );
}

#[track_caller]
fn assert_quiet(rule: &str, crate_name: &str, src: &str) {
    let rules = fired(crate_name, src);
    assert!(
        !rules.contains(&rule),
        "expected {rule} to stay quiet for {crate_name}, got {rules:?}"
    );
}

#[test]
fn d1_hash_collections_in_canonical_crates() {
    let bad = r#"
use std::collections::HashMap;
fn canonical_bytes(m: &HashMap<String, u64>) -> Vec<u8> { Vec::new() }
"#;
    let good = r#"
use std::collections::BTreeMap;
fn canonical_bytes(m: &BTreeMap<String, u64>) -> Vec<u8> { Vec::new() }
"#;
    assert_fires("D1", "ca-core", bad);
    assert_quiet("D1", "ca-core", good);
    // Out-of-scope crate: the executor may hash freely.
    assert_quiet("D1", "ca-exec", bad);
    // Test modules are not canonical code paths.
    assert_quiet(
        "D1",
        "ca-core",
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n",
    );
}

#[test]
fn d2_ambient_clocks() {
    let bad = "fn f() { let t = std::time::Instant::now(); }\n";
    let bad2 = "fn f() { let t = std::time::SystemTime::now(); }\n";
    let good = "fn f() { let t = ca_obs::Stopwatch::start(); }\n";
    assert_fires("D2", "ca-sim", bad);
    assert_fires("D2", "ca-core", bad2);
    assert_quiet("D2", "ca-sim", good);
    // The clock owner and the measurement binary are exempt.
    assert_quiet("D2", "ca-obs", bad);
    assert_quiet("D2", "ca-bench", bad);
}

#[test]
fn d3_ambient_randomness() {
    let bad = "fn f() { let mut rng = rand::thread_rng(); }\n";
    let good = "fn f(rng: &mut ca_rng::SplitMix64) { rng.next_u64(); }\n";
    assert_fires("D3", "ca-ml", bad);
    assert_quiet("D3", "ca-ml", good);
    assert_quiet("D3", "ca-rng", bad);
    assert_fires(
        "D3",
        "ca-core",
        "use std::collections::hash_map::RandomState;\n",
    );
}

#[test]
fn d4_raw_durable_writes() {
    let bad = "fn f() { std::fs::write(\"x\", b\"y\").unwrap(); }\n";
    let bad2 = "fn f() { let f = std::fs::File::create(\"x\"); }\n";
    let good = "fn f() { ca_store::write_atomic(\"x\", b\"y\").unwrap(); }\n";
    assert_fires("D4", "ca-defects", bad);
    assert_fires("D4", "ca-exec", bad2);
    assert_quiet("D4", "ca-defects", good);
    // D4 scans test code too: corruption harnesses must be annotated.
    assert_fires(
        "D4",
        "ca-store",
        "#[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"x\", b\"y\").unwrap(); }\n}\n",
    );
    // ...and the annotation is honored.
    assert_quiet(
        "D4",
        "ca-store",
        "// ca-audit: allow(D4, deliberate corruption harness)\nfn f() { std::fs::write(\"x\", b\"y\").unwrap(); }\n",
    );
}

#[test]
fn d5_adhoc_output_in_library_crates() {
    let bad = "fn f() { eprintln!(\"warning: {}\", 1); }\n";
    let bad2 = "fn f() { println!(\"status\"); }\n";
    let good = "fn f() { ca_obs::warn(\"ca_core\", \"msg\", &[]); }\n";
    assert_fires("D5", "ca-core", bad);
    assert_fires("D5", "ca-netlist", bad2);
    assert_quiet("D5", "ca-core", good);
    // The event sink and the CLI binaries are exempt.
    assert_quiet("D5", "ca-obs", bad);
    assert_quiet("D5", "ca-bench", bad2);
}

#[test]
fn d6_unsafe_needs_safety_comment() {
    let bad = "fn f(p: *const u8) -> u8 { unsafe { *p } }\n";
    let good = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert_fires("D6", "ca-exec", bad);
    assert_quiet("D6", "ca-exec", good);
    // The comment must be near: four lines of distance is too far.
    let far = "fn f(p: *const u8) -> u8 {\n    // SAFETY: stale\n    let _a = 1;\n    let _b = 2;\n    let _c = 3;\n    let _d = 4;\n    unsafe { *p }\n}\n";
    assert_fires("D6", "ca-exec", far);
}

#[test]
fn d7_partial_float_comparisons() {
    let bad = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
    let good = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
    assert_fires("D7", "ca-ml", bad);
    assert_quiet("D7", "ca-ml", good);
    // Defining `fn partial_cmp` in a PartialOrd impl is not a call.
    assert_quiet(
        "D7",
        "ca-core",
        "impl PartialOrd for X {\n    fn partial_cmp(&self, o: &X) -> Option<Ordering> { Some(self.cmp(o)) }\n}\n",
    );
    // The bench binary ranks display tables however it likes.
    assert_quiet("D7", "ca-bench", bad);
}

#[test]
fn tokens_in_comments_and_strings_never_fire() {
    let src = r#"
// HashMap iteration would break this; see Instant::now discussion.
/* thread_rng() and std::fs::write are both banned */
fn f() {
    let msg = "uses HashMap and SystemTime::now and println! in a string";
    let raw = r"eprintln!(unsafe)";
}
"#;
    for rule in ["D1", "D2", "D3", "D4", "D5", "D6"] {
        assert_quiet(rule, "ca-core", src);
    }
}

#[test]
fn pragma_must_cover_the_flagged_line() {
    // Pragma two lines above the violation: out of range, still fires
    // (and the pragma is reported unused).
    let src = "// ca-audit: allow(D4, too far away)\nfn pad() {}\nfn f() { std::fs::write(\"x\", b\"y\").unwrap(); }\n";
    let findings = scan_source("ca-core", "f.rs", src, rule_table());
    assert!(findings.iter().any(|f| f.rule == "D4"));
    assert!(findings.iter().any(|f| f.rule == "A1"));
}

#[test]
fn trailing_pragma_on_same_line_works() {
    let src =
        "fn f() { std::fs::write(\"x\", b\"y\").unwrap() } // ca-audit: allow(D4, trailing form)\n";
    assert_quiet("D4", "ca-core", src);
}

#[test]
fn malformed_and_unknown_pragmas_are_errors() {
    let missing_reason = "// ca-audit: allow(D4)\nfn f() {}\n";
    let unknown_rule = "// ca-audit: allow(D99, because)\nfn f() {}\n";
    let findings = scan_source("ca-core", "f.rs", missing_reason, rule_table());
    assert!(findings
        .iter()
        .any(|f| f.rule == "A0" && f.severity == Severity::Error));
    let findings = scan_source("ca-core", "f.rs", unknown_rule, rule_table());
    assert!(findings
        .iter()
        .any(|f| f.rule == "A0" && f.severity == Severity::Error));
}

#[test]
fn findings_carry_location_and_hint() {
    let src = "\n\nfn f() { let t = std::time::Instant::now(); }\n";
    let findings = scan_source("ca-sim", "crates/sim/src/x.rs", src, rule_table());
    assert_eq!(findings.len(), 1);
    let f = &findings[0];
    assert_eq!(
        (f.file.as_str(), f.line, f.rule),
        ("crates/sim/src/x.rs", 3, "D2")
    );
    assert!(!f.hint.is_empty());
    assert!(f.to_string().contains("crates/sim/src/x.rs:3"));
}
