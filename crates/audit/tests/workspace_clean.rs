//! The live gate: the actual workspace must audit clean, with
//! suppressions only at the documented intentional sites (ca-store's
//! durability primitives and corruption/test harnesses). This is the
//! same check `scripts/ci.sh` runs via `ca-audit --deny warn`.

use ca_audit::workspace_files;
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_audits_clean() {
    let findings = ca_audit::audit_workspace(workspace_root()).expect("audit I/O");
    assert!(
        findings.is_empty(),
        "workspace has audit findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn audit_covers_every_workspace_crate() {
    let files = workspace_files(workspace_root()).expect("walk");
    let mut crates: Vec<String> = files.iter().map(|f| f.crate_name.clone()).collect();
    crates.sort();
    crates.dedup();
    for expected in [
        "ca-audit",
        "ca-bench",
        "ca-core",
        "ca-defects",
        "ca-exec",
        "ca-ml",
        "ca-netlist",
        "ca-obs",
        "ca-rng",
        "ca-shard",
        "ca-sim",
        "ca-store",
        "cell-aware",
    ] {
        assert!(
            crates.iter().any(|c| c == expected),
            "audit walk missed crate {expected}: {crates:?}"
        );
    }
}

#[test]
fn suppressions_only_in_documented_sites() {
    // Every allow pragma in the workspace must come from the sanctioned
    // (crate, rule) list documented in DESIGN.md §10/§15: ca-store's
    // durability primitives and corruption harnesses (D4), ca-audit's
    // own baseline writer (D4), ca-core's one-byte journal phase tag
    // (D10), and ca-obs recording ca-store's recovery counter (D11).
    const SANCTIONED: &[(&str, &str)] = &[
        ("ca-store", "D4"),
        ("ca-audit", "D4"),
        ("ca-core", "D10"),
        ("ca-obs", "D11"),
    ];
    for file in workspace_files(workspace_root()).expect("walk") {
        let content = std::fs::read_to_string(&file.path).expect("read");
        let src = ca_audit::scrub::ScrubbedSource::new(&content);
        for allow in &src.allows {
            assert!(
                SANCTIONED.contains(&(file.crate_name.as_str(), allow.rule.as_str())),
                "unsanctioned suppression pragma in {}: {:?}",
                file.label,
                allow
            );
        }
    }
}
