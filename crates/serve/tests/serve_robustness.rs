//! End-to-end robustness matrix for the ca-serve daemon.
//!
//! In-process tests drive a [`Server`] over real sockets for the
//! admission/deadline/protocol behavior; the process tests spawn the
//! actual `ca-serve` binary on a Unix-domain socket and exercise the
//! crash matrix: SIGTERM drains cleanly (in-flight work journaled, exit
//! 0, `CA-SERVE-DRAINED` emitted), SIGKILL mid-campaign loses nothing a
//! restart cannot recover, and the served models stay byte-identical to
//! a batch golden run throughout.

use ca_core::{characterize_library_robust, export_cam_with, CellService, FaultPolicy};
use ca_defects::GenerateOptions;
use ca_netlist::library::{generate_library, Library, LibraryConfig};
use ca_netlist::Technology;
use ca_serve::admission::AdmissionConfig;
use ca_serve::protocol::{ErrorKind, ModelSource, Response};
use ca_serve::server::{Endpoint, ServeConfig, Server};
use ca_serve::ServeClient;
use ca_sim::SimBudget;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-serve-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn tiny_library(cells: usize) -> Library {
    let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
    lib.cells.truncate(cells);
    lib
}

fn config(store: &Path, cells: usize) -> ServeConfig {
    ServeConfig::new(store, tiny_library(cells))
}

fn connect(server: &Server) -> ServeClient {
    let addr = server.tcp_addr().expect("tcp endpoint");
    ServeClient::connect_tcp(addr).expect("connect")
}

// ---------------------------------------------------------------------
// In-process: protocol, admission, deadlines
// ---------------------------------------------------------------------

#[test]
fn request_response_lookup_and_stats_over_tcp() {
    let dir = scratch("basic");
    let server = Server::start(
        config(&dir.join("s.caj"), 3),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .expect("start");
    let lib = tiny_library(3);
    let mut client = connect(&server);
    assert!(client.ping(7).expect("ping"));
    // Characterize every library cell by name; collect served bytes.
    for lc in &lib.cells {
        match client
            .characterize("it-basic", lc.cell.name(), 0)
            .expect("characterize")
        {
            Response::Model { cell, cam, .. } => {
                assert_eq!(cell, lc.cell.name());
                assert!(!cam.is_empty());
            }
            other => panic!("{}: {other:?}", lc.cell.name()),
        }
    }
    // Snapshot lookups serve the journaled bytes without simulation.
    match client.lookup(lib.cells[0].cell.name()).expect("lookup") {
        Response::Model { source, .. } => assert_eq!(source, ModelSource::Store),
        other => panic!("{other:?}"),
    }
    match client.lookup("NO_SUCH_CELL").expect("lookup") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownCell),
        other => panic!("{other:?}"),
    }
    // Unknown characterize target and empty client are structured.
    match client
        .characterize("it-basic", "NO_SUCH_CELL", 0)
        .expect("c")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownCell),
        other => panic!("{other:?}"),
    }
    match client
        .characterize("", lib.cells[0].cell.name(), 0)
        .expect("c")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
        other => panic!("{other:?}"),
    }
    match client.stats().expect("stats") {
        Response::Stats { body } => {
            assert!(body.contains("ca_serve.admitted"), "{body}");
            assert!(body.contains("session.journaled"), "{body}");
        }
        other => panic!("{other:?}"),
    }
    server.shutdown();
}

#[test]
fn malformed_and_hostile_frames_get_structured_errors() {
    let dir = scratch("hostile");
    let server = Server::start(
        config(&dir.join("s.caj"), 1),
        &[Endpoint::Tcp("127.0.0.1:0".into())],
    )
    .expect("start");
    let addr = server.tcp_addr().expect("tcp");
    // A well-framed frame whose payload is garbage: BadRequest, then
    // the server closes (a desynced stream is not guessed at).
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        raw.write_all(&ca_store::frame::encode(b"not a message"))
            .expect("write");
        let response = ca_serve::protocol::read_response(&mut raw)
            .expect("decode")
            .expect("response before close");
        match response {
            Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadRequest),
            other => panic!("{other:?}"),
        }
    }
    // A hostile length prefix (2 GiB): rejected before allocation,
    // answered, closed — the server survives both.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect");
        raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        raw.write_all(&(u32::MAX / 2).to_le_bytes()).expect("write");
        raw.write_all(&[0u8; 12]).expect("write");
        let response = ca_serve::protocol::read_response(&mut raw)
            .expect("decode")
            .expect("response before close");
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
    }
    // The server still serves normal traffic afterwards.
    let mut client = connect(&server);
    assert!(client.ping(1).expect("ping"));
    server.shutdown();
}

#[test]
fn overload_sheds_with_structured_frames_and_no_panics() {
    let dir = scratch("overload");
    let mut cfg = config(&dir.join("s.caj"), 2);
    cfg.admission = AdmissionConfig {
        slots: 1,
        queue: 1,
        per_client: 8,
        client_budget: None,
    };
    cfg.service_delay = Duration::from_millis(250);
    let server = Server::start(cfg, &[Endpoint::Tcp("127.0.0.1:0".into())]).expect("start");
    let addr = server.tcp_addr().expect("tcp");
    let lib = tiny_library(2);
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let name = lib.cells[i % 2].cell.name().to_string();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect_tcp(addr).expect("connect");
                client
                    .characterize(&format!("load-{i}"), &name, 0)
                    .expect("every request gets an answer")
            })
        })
        .collect();
    let mut models = 0;
    let mut shed = 0;
    for handle in handles {
        match handle.join().expect("no client thread panics") {
            Response::Model { .. } => models += 1,
            Response::Error { kind, .. } => {
                assert_eq!(kind, ErrorKind::Overloaded, "only overload sheds here");
                shed += 1;
            }
            other => panic!("{other:?}"),
        }
    }
    assert!(models >= 1, "someone must be served");
    assert!(shed >= 1, "slots=1/queue=1 under 6 clients must shed");
    server.shutdown();
}

#[test]
fn per_client_lifetime_budget_is_enforced() {
    let dir = scratch("quota");
    let mut cfg = config(&dir.join("s.caj"), 1);
    cfg.admission.client_budget = Some(1);
    let server = Server::start(cfg, &[Endpoint::Tcp("127.0.0.1:0".into())]).expect("start");
    let lib = tiny_library(1);
    let name = lib.cells[0].cell.name();
    let mut client = connect(&server);
    assert!(matches!(
        client.characterize("quota-a", name, 0).expect("first"),
        Response::Model { .. }
    ));
    match client.characterize("quota-a", name, 0).expect("second") {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::QuotaExceeded),
        other => panic!("{other:?}"),
    }
    // A different client identity still gets served.
    assert!(matches!(
        client.characterize("quota-b", name, 0).expect("third"),
        Response::Model { .. }
    ));
    server.shutdown();
}

#[test]
fn queue_deadline_sheds_instead_of_serving_late() {
    let dir = scratch("queue-deadline");
    let mut cfg = config(&dir.join("s.caj"), 2);
    cfg.admission.slots = 1;
    cfg.service_delay = Duration::from_millis(400);
    let server = Server::start(cfg, &[Endpoint::Tcp("127.0.0.1:0".into())]).expect("start");
    let addr = server.tcp_addr().expect("tcp");
    let lib = tiny_library(2);
    let slow = lib.cells[0].cell.name().to_string();
    let blocked = lib.cells[1].cell.name().to_string();
    let leader = std::thread::spawn(move || {
        let mut client = ServeClient::connect_tcp(addr).expect("connect");
        client.characterize("dl-leader", &slow, 0).expect("leader")
    });
    std::thread::sleep(Duration::from_millis(100));
    // The single slot is busy; a 20ms deadline cannot be met in queue.
    let mut client = connect(&server);
    match client
        .characterize("dl-waiter", &blocked, 20)
        .expect("waiter")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::DeadlineExceeded),
        other => panic!("{other:?}"),
    }
    assert!(matches!(
        leader.join().expect("leader thread"),
        Response::Model { .. }
    ));
    // Nothing the deadline touched was journaled: only the leader's cell.
    assert_eq!(server.service().report().journaled, 1);
    server.shutdown();
}

#[test]
fn drain_request_stops_admissions_and_finishes_in_flight() {
    let dir = scratch("drain-req");
    let store = dir.join("s.caj");
    let server =
        Server::start(config(&store, 2), &[Endpoint::Tcp("127.0.0.1:0".into())]).expect("start");
    let lib = tiny_library(2);
    let mut client = connect(&server);
    assert!(matches!(
        client
            .characterize("drain", lib.cells[0].cell.name(), 0)
            .expect("pre-drain"),
        Response::Model { .. }
    ));
    assert!(matches!(client.drain().expect("drain"), Response::Draining));
    // New work on a fresh connection is refused with a typed frame
    // while the listener is still up, or the connection is refused once
    // it is gone — both are clean drain behaviors.
    if let Ok(mut late) = ServeClient::connect_tcp(server.tcp_addr().expect("tcp")) {
        match late.characterize("late", lib.cells[1].cell.name(), 0) {
            Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::Draining),
            Ok(other) => panic!("{other:?}"),
            Err(_) => {} // closed mid-handshake by the drain
        }
    }
    server.shutdown();
    // The drained store resumes: the pre-drain model is reused.
    let service = CellService::open(
        &store,
        &tiny_library(2),
        GenerateOptions::default(),
        SimBudget::unlimited(),
        2,
    )
    .expect("reopen");
    assert_eq!(service.report().reused_complete, 1);
}

// ---------------------------------------------------------------------
// Process level: SIGTERM drain, SIGKILL + restart byte-identity
// ---------------------------------------------------------------------

struct Daemon {
    child: Child,
    reader: BufReader<std::process::ChildStdout>,
}

fn spawn_daemon(store: &Path, uds: &Path, cells: usize, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ca-serve"));
    cmd.args([
        "--uds",
        &uds.display().to_string(),
        "--store",
        &store.display().to_string(),
        "--cells",
        &cells.to_string(),
        "--slots",
        "2",
    ])
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn ca-serve");
    let mut reader = BufReader::new(child.stdout.take().expect("piped stdout"));
    // Wait for the ready marker with a coarse watchdog.
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("daemon stdout");
        assert!(n > 0, "daemon exited before CA-SERVE-READY");
        if line.contains("CA-SERVE-READY") {
            break;
        }
    }
    Daemon { child, reader }
}

impl Daemon {
    fn connect(&self, uds: &Path) -> ServeClient {
        for _ in 0..100 {
            if let Ok(client) = ServeClient::connect_uds(uds) {
                return client;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        panic!("daemon never accepted on {}", uds.display());
    }

    fn sigterm(&self) {
        let status = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("kill -TERM");
        assert!(status.success());
    }

    /// Waits for exit and returns (exit success, remaining stdout).
    fn wait(mut self) -> (bool, String) {
        let mut rest = String::new();
        let (tx, rx) = std::sync::mpsc::channel();
        let mut reader = self.reader;
        std::thread::spawn(move || {
            let mut buffered = String::new();
            let _ = std::io::Read::read_to_string(&mut reader, &mut buffered);
            let _ = tx.send(buffered);
        });
        if let Ok(buffered) = rx.recv_timeout(Duration::from_secs(120)) {
            rest.push_str(&buffered);
        }
        let status = self.child.wait().expect("wait");
        (status.success(), rest)
    }
}

/// The batch golden: cell name → `.cam` bytes, straight through the
/// robust driver with no store and no deadlines.
fn golden_cams(cells: usize) -> BTreeMap<String, String> {
    let outcome = characterize_library_robust(
        &tiny_library(cells),
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
    )
    .expect("golden run");
    export_cam_with(&outcome.prepared, true)
        .into_iter()
        .map(|(file, body)| (file.trim_end_matches(".cam").to_string(), body))
        .collect()
}

#[test]
fn daemon_sigterm_drains_cleanly_and_store_resumes() {
    let dir = scratch("sigterm");
    let store = dir.join("served.caj");
    let uds = dir.join("ca.sock");
    let cells = 3;
    let daemon = spawn_daemon(&store, &uds, cells, &[]);
    let mut client = daemon.connect(&uds);
    let golden = golden_cams(cells);
    let lib = tiny_library(cells);
    for lc in &lib.cells {
        match client
            .characterize("sigterm-it", lc.cell.name(), 0)
            .expect("serve")
        {
            Response::Model { cell, cam, .. } => {
                assert_eq!(golden.get(&cell).expect("golden has cell"), &cam);
            }
            other => panic!("{other:?}"),
        }
    }
    daemon.sigterm();
    let (clean, stdout) = daemon.wait();
    assert!(clean, "SIGTERM must exit 0");
    assert!(stdout.contains("CA-SERVE-DRAINED"), "{stdout}");
    assert!(!uds.exists(), "drain removes the socket file");
    // Everything served before the drain was journaled.
    let service = CellService::open(
        &store,
        &lib,
        GenerateOptions::default(),
        SimBudget::unlimited(),
        2,
    )
    .expect("reopen");
    assert_eq!(service.report().reused_complete, cells);
}

#[test]
fn daemon_sigkill_mid_campaign_resumes_byte_identical() {
    let dir = scratch("sigkill");
    let store = dir.join("served.caj");
    let uds = dir.join("ca.sock");
    let cells = 5;
    let golden = golden_cams(cells);
    let lib = tiny_library(cells);

    // Phase 1: serve part of the library, then SIGKILL — no drain, no
    // destructors; whatever the journal holds is what survives.
    let mut daemon = spawn_daemon(&store, &uds, cells, &["--service-delay-ms", "25"]);
    let mut client = daemon.connect(&uds);
    for lc in lib.cells.iter().take(2) {
        match client
            .characterize("kill-it", lc.cell.name(), 0)
            .expect("serve")
        {
            Response::Model { cell, cam, .. } => {
                assert_eq!(golden.get(&cell).expect("golden"), &cam);
            }
            other => panic!("{other:?}"),
        }
    }
    daemon.child.kill().expect("SIGKILL");
    let _ = daemon.child.wait();

    // Phase 2: a fresh daemon over the same store recovers the journal
    // (torn tail included) and serves the whole library byte-identical
    // to the batch golden — reusing what phase 1 journaled.
    let daemon = spawn_daemon(&store, &uds, cells, &[]);
    let mut client = daemon.connect(&uds);
    for lc in &lib.cells {
        match client
            .characterize("kill-it-2", lc.cell.name(), 0)
            .expect("serve")
        {
            Response::Model { cell, cam, .. } => {
                assert_eq!(
                    golden.get(&cell).expect("golden"),
                    &cam,
                    "{cell} diverged after SIGKILL+restart"
                );
            }
            other => panic!("{other:?}"),
        }
    }
    // Drain over the wire: the daemon acks, finishes, exits 0.
    assert!(matches!(client.drain().expect("drain"), Response::Draining));
    drop(client);
    let (clean, stdout) = daemon.wait();
    assert!(clean, "wire drain must exit 0");
    assert!(stdout.contains("CA-SERVE-DRAINED"), "{stdout}");

    // The journal now reuses everything on a third open.
    let service = CellService::open(
        &store,
        &lib,
        GenerateOptions::default(),
        SimBudget::unlimited(),
        2,
    )
    .expect("reopen");
    assert_eq!(service.report().reused_complete, cells);
}
