//! The daemon: listeners, connection threads, dispatch, drain.
//!
//! A [`Server`] binds any mix of Unix-domain and TCP endpoints, runs a
//! thread per connection, and pushes every characterize request through
//! admission control ([`crate::admission`]) into the coalescing engine
//! ([`crate::engine`]). The lifecycle contract (DESIGN.md §13):
//!
//! - **Admission before work**: a request that cannot be served — queue
//!   full, quota hit, draining — is answered with a structured error
//!   frame in constant time; the connection is never silently dropped
//!   and the process never panics on client input.
//! - **Graceful drain**: [`Server::drain`] (a `SIGTERM` or a `Drain`
//!   request) stops admissions; in-flight requests finish, journal, and
//!   are answered; [`Server::shutdown`] then compacts the store. A
//!   `SIGKILL` at any point instead leaves a journal the next start
//!   recovers byte-identically — the same torn-tail machinery every
//!   batch session trusts.
//! - **Bounded everything**: connections, queue depth, execution slots
//!   and frame sizes all have explicit caps; overload sheds at the
//!   cheapest layer that can answer.

use crate::admission::{Admission, AdmissionConfig, Denial};
use crate::engine::Engine;
use crate::protocol::{
    self, ErrorKind, ModelSource, ProtocolError, Request, Response, Target, Timing,
};
use ca_core::{CellService, CellVerdict, CoreError, StoredVerdict};
use ca_defects::GenerateOptions;
use ca_netlist::library::Library;
use ca_netlist::{spice, Cell};
use ca_obs::clock::{Backoff, Deadline, Stopwatch};
use ca_obs::trace::{self, TraceContext};
use ca_sim::SimBudget;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Microsecond latency buckets: 100µs to 30s, roughly ×3 per step.
const LATENCY_BOUNDS_US: &[u64] = &[
    100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000,
    30_000_000,
];

/// How long an accept loop sleeps when idle, and how often blocked
/// reads re-check the drain flag.
const POLL: Duration = Duration::from_millis(25);

/// Everything a server needs to start; every knob has a serving-safe
/// default from [`ServeConfig::new`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Journal path (created on first start, resumed afterwards).
    pub store: PathBuf,
    /// The cell library served by name.
    pub library: Library,
    /// Characterization options (canonical; affect model bytes).
    pub options: GenerateOptions,
    /// Configured simulation budget — the budget results are journaled
    /// under; request deadlines only ever tighten a *copy* of it.
    pub budget: SimBudget,
    /// Reduced-budget retries inside the guarded pipeline.
    pub reduced_retries: u32,
    /// Supervision attempts per request (panic-caught worker retries).
    pub attempts: u32,
    /// Pause schedule between supervision attempts.
    pub backoff: Backoff,
    /// Queue/slot/quota sizing.
    pub admission: AdmissionConfig,
    /// Deadline applied to requests that carry none; `None` = no limit.
    pub default_deadline: Option<Duration>,
    /// Concurrent connections before accepts shed with `Overloaded`.
    pub max_connections: usize,
    /// Test hook: artificial per-request service time in the engine.
    pub service_delay: Duration,
}

impl ServeConfig {
    pub fn new(store: impl Into<PathBuf>, library: Library) -> ServeConfig {
        ServeConfig {
            store: store.into(),
            library,
            options: GenerateOptions::default(),
            budget: SimBudget::unlimited(),
            reduced_retries: 2,
            attempts: 2,
            backoff: Backoff::new(Duration::from_millis(10), Duration::from_millis(200)),
            admission: AdmissionConfig::default(),
            default_deadline: None,
            max_connections: 64,
            service_delay: Duration::ZERO,
        }
    }
}

/// Where to listen.
#[derive(Debug, Clone)]
pub enum Endpoint {
    /// Unix-domain socket path (any stale file is replaced).
    Uds(PathBuf),
    /// TCP bind address, e.g. `127.0.0.1:7543` (`:0` for ephemeral).
    Tcp(String),
}

/// Why the server could not start.
#[derive(Debug)]
pub enum ServeError {
    /// Opening the session store / library failed.
    Core(CoreError),
    /// Binding an endpoint failed.
    Io(io::Error),
    /// No endpoints were given, or an endpoint kind is unsupported on
    /// this platform.
    BadEndpoint(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Core(e) => write!(f, "service: {e}"),
            ServeError::Io(e) => write!(f, "bind: {e}"),
            ServeError::BadEndpoint(detail) => write!(f, "endpoint: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> ServeError {
        ServeError::Core(e)
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

struct Shared {
    engine: Engine,
    admission: Admission,
    /// Library netlists, resolved for `Target::Name`.
    cells: BTreeMap<String, Cell>,
    default_deadline: Option<Duration>,
    max_connections: usize,
    connections: AtomicUsize,
}

/// A running daemon; dropping it does *not* stop the listeners — call
/// [`Server::shutdown`] for the graceful path (a killed process is the
/// crash path, and the journal covers it).
pub struct Server {
    shared: Arc<Shared>,
    accepters: Vec<JoinHandle<()>>,
    uds_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Opens the session store, binds every endpoint and starts
    /// accepting.
    pub fn start(config: ServeConfig, endpoints: &[Endpoint]) -> Result<Server, ServeError> {
        if endpoints.is_empty() {
            return Err(ServeError::BadEndpoint(
                "at least one --uds or --tcp endpoint is required".into(),
            ));
        }
        let service = CellService::open(
            &config.store,
            &config.library,
            config.options,
            config.budget,
            config.reduced_retries,
        )?;
        let cells = config
            .library
            .cells
            .iter()
            .map(|lc| (lc.cell.name().to_string(), lc.cell.clone()))
            .collect();
        let shared = Arc::new(Shared {
            engine: Engine::new(
                service,
                config.attempts,
                config.backoff,
                config.service_delay,
            ),
            admission: Admission::new(config.admission.clone()),
            cells,
            default_deadline: config.default_deadline,
            max_connections: config.max_connections.max(1),
            connections: AtomicUsize::new(0),
        });
        let mut accepters = Vec::new();
        let mut uds_path = None;
        let mut tcp_addr = None;
        for endpoint in endpoints {
            match endpoint {
                Endpoint::Uds(path) => {
                    #[cfg(unix)]
                    {
                        let _ = std::fs::remove_file(path);
                        let listener = std::os::unix::net::UnixListener::bind(path)?;
                        listener.set_nonblocking(true)?;
                        uds_path = Some(path.clone());
                        let shared = Arc::clone(&shared);
                        let path = path.clone();
                        accepters.push(std::thread::spawn(move || {
                            accept_loop(&shared, || match listener.accept() {
                                Ok((stream, _)) => Ok(stream),
                                Err(e) => Err(e),
                            });
                            drop(listener);
                            let _ = std::fs::remove_file(&path);
                        }));
                    }
                    #[cfg(not(unix))]
                    {
                        let _ = path;
                        return Err(ServeError::BadEndpoint(
                            "unix-domain sockets are unsupported on this platform".into(),
                        ));
                    }
                }
                Endpoint::Tcp(addr) => {
                    let listener = TcpListener::bind(addr.as_str())?;
                    listener.set_nonblocking(true)?;
                    tcp_addr = Some(listener.local_addr()?);
                    let shared = Arc::clone(&shared);
                    accepters.push(std::thread::spawn(move || {
                        accept_loop(&shared, || match listener.accept() {
                            Ok((stream, _)) => Ok(stream),
                            Err(e) => Err(e),
                        });
                    }));
                }
            }
        }
        Ok(Server {
            shared,
            accepters,
            uds_path,
            tcp_addr,
        })
    }

    /// The bound UDS path, when a UDS endpoint was requested.
    pub fn uds_path(&self) -> Option<&PathBuf> {
        self.uds_path.as_ref()
    }

    /// The bound TCP address (with the real port for `:0` binds).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Stops admissions; already-admitted work proceeds to completion.
    pub fn drain(&self) {
        self.shared.admission.begin_drain();
    }

    pub fn draining(&self) -> bool {
        self.shared.admission.draining()
    }

    /// Admitted requests currently queued or executing.
    pub fn in_flight(&self) -> usize {
        self.shared.admission.in_flight()
    }

    /// The served [`CellService`] (reports, snapshot lookups).
    pub fn service(&self) -> &CellService {
        self.shared.engine.service()
    }

    /// Graceful exit: drain, wait for in-flight work and connections,
    /// join the listeners, compact the journal.
    pub fn shutdown(self) {
        self.drain();
        self.shared.admission.await_idle();
        for accepter in self.accepters {
            let _ = accepter.join();
        }
        // Connection threads exit on their next drain-aware read poll;
        // give stragglers a bounded grace.
        let patience = Deadline::after(Duration::from_secs(10));
        while self.shared.connections.load(Ordering::SeqCst) > 0 && !patience.expired() {
            std::thread::sleep(POLL);
        }
        self.shared.engine.service().compact();
        ca_obs::info_status(
            "ca_serve.server",
            "drained",
            &[(
                "journaled",
                &self.shared.engine.service().report().journaled.to_string(),
            )],
        );
    }
}

/// Accepts until drain; sheds connections beyond the cap with a
/// structured `Overloaded` frame instead of an unexplained hangup.
fn accept_loop<S: Conn + 'static>(shared: &Arc<Shared>, mut accept: impl FnMut() -> io::Result<S>) {
    loop {
        if shared.admission.draining() {
            return;
        }
        match accept() {
            Ok(mut stream) => {
                if shared.connections.load(Ordering::SeqCst) >= shared.max_connections {
                    ca_obs::counter!("ca_serve.shed.connections", Ops).inc();
                    let _ = protocol::write_response(
                        &mut stream,
                        &Response::Error {
                            kind: ErrorKind::Overloaded,
                            detail: "connection limit reached".into(),
                        },
                    );
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                ca_obs::counter!("ca_serve.connections", Ops).inc();
                let shared = Arc::clone(shared);
                std::thread::spawn(move || {
                    let decrement = ConnGuard(&shared);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        serve_conn(&shared, stream);
                    }));
                    if outcome.is_err() {
                        ca_obs::counter!("ca_serve.conn_panics", Ops).inc();
                    }
                    drop(decrement);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                ca_obs::warn(
                    "ca_serve.server",
                    "accept failed",
                    &[("error", &e.to_string())],
                );
                std::thread::sleep(POLL);
            }
        }
    }
}

struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Both stream kinds behind one face: blocking reads with a timeout so
/// idle connections observe the drain flag.
trait Conn: Read + Write + Send {
    fn arm_read_timeout(&self);
}

impl Conn for TcpStream {
    fn arm_read_timeout(&self) {
        let _ = self.set_nonblocking(false);
        let _ = self.set_read_timeout(Some(POLL));
    }
}

#[cfg(unix)]
impl Conn for std::os::unix::net::UnixStream {
    fn arm_read_timeout(&self) {
        let _ = self.set_nonblocking(false);
        let _ = self.set_read_timeout(Some(POLL));
    }
}

/// Adapter that turns read timeouts into "keep waiting" — except for an
/// idle connection on a draining server, which reads clean EOF, and a
/// mid-frame stall during drain, which errors out after a bounded
/// grace.
struct PatientRead<'a, S: Conn> {
    stream: &'a mut S,
    shared: &'a Shared,
    consumed: usize,
    stalled_polls: u32,
}

impl<S: Conn> Read for PatientRead<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.stream.read(buf) {
                Ok(n) => {
                    self.consumed += n;
                    self.stalled_polls = 0;
                    return Ok(n);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shared.admission.draining() {
                        if self.consumed == 0 {
                            // Between frames: close as if the client
                            // hung up, so drain completes.
                            return Ok(0);
                        }
                        self.stalled_polls += 1;
                        if self.stalled_polls > 200 {
                            return Err(io::Error::new(
                                io::ErrorKind::TimedOut,
                                "mid-frame stall during drain",
                            ));
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// One connection's request/response loop.
fn serve_conn<S: Conn>(shared: &Shared, mut stream: S) {
    stream.arm_read_timeout();
    loop {
        let request = {
            let mut patient = PatientRead {
                stream: &mut stream,
                shared,
                consumed: 0,
                stalled_polls: 0,
            };
            protocol::read_request(&mut patient)
        };
        let response = match request {
            Ok(None) => return, // clean hangup (or drain-idle close)
            Ok(Some(request)) => dispatch(shared, request),
            Err(ProtocolError::Frame(ca_store::frame::FrameError::Io(_))) => return,
            Err(e) => {
                // Malformed input gets a structured answer, then the
                // connection closes: a desynced stream is not worth
                // guessing at.
                ca_obs::counter!("ca_serve.bad_frames", Ops).inc();
                let _ = protocol::write_response(
                    &mut stream,
                    &Response::Error {
                        kind: ErrorKind::BadRequest,
                        detail: e.to_string(),
                    },
                );
                return;
            }
        };
        if protocol::write_response(&mut stream, &response).is_err() || stream.flush().is_err() {
            return;
        }
    }
}

fn dispatch(shared: &Shared, request: Request) -> Response {
    match request {
        Request::Ping { token } => Response::Pong { token },
        Request::Stats => Response::Stats {
            body: render_stats(shared),
        },
        Request::Drain => {
            ca_obs::info_status("ca_serve.server", "drain requested over the wire", &[]);
            shared.admission.begin_drain();
            Response::Draining
        }
        Request::MetricsSnapshot => Response::MetricsSnapshot {
            json: ca_obs::global().snapshot().to_json(),
        },
        Request::Lookup { name } => match shared.engine.service().lookup(&name) {
            Some(StoredVerdict::Complete(cam)) => Response::Model {
                cell: name,
                degraded: false,
                source: ModelSource::Store,
                cam,
                timing: Timing::default(),
            },
            Some(StoredVerdict::Degraded(cam)) => Response::Model {
                cell: name,
                degraded: true,
                source: ModelSource::Store,
                cam,
                timing: Timing::default(),
            },
            Some(StoredVerdict::Quarantined { reason, .. }) => Response::Error {
                kind: ErrorKind::Quarantined,
                detail: reason,
            },
            None => Response::Error {
                kind: ErrorKind::UnknownCell,
                detail: name,
            },
        },
        Request::Characterize {
            client,
            deadline_ms,
            target,
            trace,
        } => characterize(shared, &client, deadline_ms, target, trace),
    }
}

fn characterize(
    shared: &Shared,
    client: &str,
    deadline_ms: u64,
    target: Target,
    wire_trace: Option<TraceContext>,
) -> Response {
    // Parent server-side spans under the caller's wire context when one
    // arrived; otherwise open a server-local root so an untraced client
    // still yields a self-contained request tree. The sequence counter
    // only disambiguates roots within one process — it never feeds
    // canonical output (ca-audit D3 covers model bytes, not trace ids).
    let _adopt = wire_trace.map(trace::adopt);
    let _request_span = if wire_trace.is_some() {
        trace::span("request")
    } else {
        static REQ_SEQ: AtomicU64 = AtomicU64::new(0);
        trace::root("request", REQ_SEQ.fetch_add(1, Ordering::Relaxed), "serve")
    };
    if client.is_empty() {
        return Response::Error {
            kind: ErrorKind::BadRequest,
            detail: "client must be non-empty".into(),
        };
    }
    let cell = match target {
        Target::Name(name) => match shared.cells.get(&name) {
            Some(cell) => cell.clone(),
            None => {
                return Response::Error {
                    kind: ErrorKind::UnknownCell,
                    detail: name,
                }
            }
        },
        Target::Spice(src) => match spice::parse_cell(&src) {
            Ok(cell) => cell,
            Err(e) => {
                return Response::Error {
                    kind: ErrorKind::BadRequest,
                    detail: e.to_string(),
                }
            }
        },
    };
    let deadline = if deadline_ms > 0 {
        Deadline::after(Duration::from_millis(deadline_ms))
    } else {
        shared
            .default_deadline
            .map_or(Deadline::never(), Deadline::after)
    };
    let queued = Stopwatch::start();
    let queue_span = trace::span("queue");
    let mut ticket = match shared.admission.try_admit(client) {
        Ok(ticket) => ticket,
        Err(denial) => {
            let (kind, detail) = match denial {
                Denial::Overloaded => (ErrorKind::Overloaded, "request queue full".to_string()),
                Denial::QuotaExceeded => (
                    ErrorKind::QuotaExceeded,
                    format!("client {client} is over quota"),
                ),
                Denial::Draining => (ErrorKind::Draining, "server is draining".to_string()),
            };
            return Response::Error { kind, detail };
        }
    };
    if ticket.acquire_slot(deadline).is_err() {
        return Response::Error {
            kind: ErrorKind::DeadlineExceeded,
            detail: "deadline expired waiting for an execution slot".into(),
        };
    }
    drop(queue_span);
    let queue_us = queued.elapsed_ns() / 1_000;
    ca_obs::histogram!("ca_serve.latency.queue_us", Ops, LATENCY_BOUNDS_US).observe(queue_us);
    // Journal time is attributed per request via a thread-local the
    // session bumps on append; the leader journals on its own
    // connection thread, so draining before the call isolates this
    // request's share (followers report zero).
    let _ = ca_core::take_journal_ns();
    let in_service = Stopwatch::start();
    let service_span = trace::span("service");
    let (verdict, source) = shared.engine.characterize(&cell, deadline);
    drop(service_span);
    let service_us = in_service.elapsed_ns() / 1_000;
    let timing = Timing {
        queue_us,
        service_us,
        journal_us: ca_core::take_journal_ns() / 1_000,
    };
    ca_obs::histogram!("ca_serve.latency.service_us", Ops, LATENCY_BOUNDS_US).observe(service_us);
    ca_obs::histogram!("ca_serve.latency.total_us", Ops, LATENCY_BOUNDS_US)
        .observe(queued.elapsed_ns() / 1_000);
    drop(ticket);
    match verdict {
        CellVerdict::Model(p) => {
            ca_obs::counter!("ca_serve.served.models", Ops).inc();
            match p.model.as_ref() {
                Some(model) => Response::Model {
                    cell: cell.name().to_string(),
                    degraded: model.degraded,
                    source,
                    cam: ca_defects::to_cam(model),
                    timing,
                },
                None => Response::Error {
                    kind: ErrorKind::Internal,
                    detail: "characterization produced no model".into(),
                },
            }
        }
        CellVerdict::Quarantined { phase, reason, .. } => {
            ca_obs::counter!("ca_serve.served.quarantined", Ops).inc();
            Response::Error {
                kind: ErrorKind::Quarantined,
                detail: format!("{phase}: {reason}"),
            }
        }
        CellVerdict::DeadlineExceeded => {
            ca_obs::counter!("ca_serve.served.deadline_exceeded", Ops).inc();
            Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                detail: "deadline was the binding constraint".into(),
            }
        }
    }
}

fn render_stats(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let snapshot = ca_obs::global().snapshot();
    let mut out = String::new();
    for (name, (_, value)) in &snapshot.counters {
        if name.starts_with("ca_serve.") {
            let _ = writeln!(out, "{name} {value}");
        }
    }
    for (name, value) in &snapshot.gauges {
        if name.starts_with("ca_serve.") {
            let _ = writeln!(out, "{name} {value}");
        }
    }
    let report = shared.engine.service().report();
    let _ = writeln!(out, "session.journaled {}", report.journaled);
    let _ = writeln!(out, "session.reused_complete {}", report.reused_complete);
    let _ = writeln!(
        out,
        "conns.open {}",
        shared.connections.load(Ordering::SeqCst)
    );
    out
}
