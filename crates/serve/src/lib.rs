//! `ca-serve` — a fault-tolerant long-running characterization service.
//!
//! The batch flows answer "characterize this library, once"; `ca-serve`
//! keeps one durable [`ca_core::CellService`] resident and answers
//! cells one request at a time, for days, over Unix-domain sockets and
//! TCP (DESIGN.md §13):
//!
//! - [`protocol`]: a versioned tagged message format inside the
//!   journal's own CRC framing ([`ca_store::frame`]). Every byte
//!   sequence decodes to a message or a structured error — never a
//!   panic, never an unbounded allocation.
//! - [`admission`]: bounded queue + execution slots + per-client
//!   quotas. Overload sheds with typed `Overloaded`/`QuotaExceeded`
//!   frames at the socket, in constant time, instead of queueing
//!   without bound or dropping connections silently.
//! - [`engine`]: request coalescing (concurrent identical netlists
//!   elect one leader; followers ride the certified donor cache) and
//!   supervised retry — a panicking request worker is caught,
//!   classified and retried under a deterministic [`ca_obs::Backoff`],
//!   the in-process mirror of the `ca-shard` attempt loop.
//! - [`server`]: thread-per-connection daemon with per-request
//!   deadlines that propagate into the simulation budget. A result is
//!   journaled only when the deadline was not the binding constraint,
//!   so the store — and therefore a crash-resumed or batch-converged
//!   export — stays byte-identical to a deadline-free run.
//! - Drain: `SIGTERM` (or a `Drain` request) stops admissions,
//!   finishes and journals in-flight work, compacts, and exits;
//!   `SIGKILL` at any instant leaves a journal the next start recovers
//!   through the same torn-tail machinery as every batch session.
//!
//! `tests/serve_robustness.rs` exercises the whole matrix against real
//! daemon processes: SIGTERM drain, SIGKILL + restart byte-identity,
//! overload shedding and queue-deadline behavior.

// The daemon runs unattended; an unwrap in the serving path turns one
// bad request into an outage.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod admission;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod signal;

pub use admission::{Admission, AdmissionConfig, Denial};
pub use client::{ClientError, ServeClient};
pub use engine::Engine;
pub use protocol::{ErrorKind, ModelSource, ProtocolError, Request, Response, Target, Timing};
pub use server::{Endpoint, ServeConfig, ServeError, Server};
