//! The serving engine: one [`CellService`] behind request coalescing
//! and supervised retry.
//!
//! **Coalescing** (DESIGN.md §13): concurrent requests for the same
//! netlist (keyed by the session's whole-netlist fingerprint) elect one
//! *leader* that runs the simulation; *followers* wait — bounded by
//! their own deadlines — and then ride the leader's published result
//! through the certified donor cache, so N identical requests cost one
//! lint, one golden simulation and one characterization plus N−1 donor
//! remaps.
//!
//! **Supervised retry**: each request's characterization runs under the
//! same attempt discipline as a `ca-shard` worker — the failure is
//! caught (here `catch_unwind`, there exit-status), classified, and
//! transient classes are retried under a deterministic capped
//! [`Backoff`] before the failure is surfaced as a structured error.
//! A panic escaping the guarded pipeline is the in-process analog of a
//! crashed worker process.

use crate::protocol::ModelSource;
use ca_core::{panic_message, CellService, CellVerdict};
use ca_netlist::Cell;
use ca_obs::clock::{Backoff, Deadline};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// What a flight leader publishes for its followers.
#[derive(Debug, Clone)]
enum Share {
    /// A model landed (leader journaled if eligible); followers resolve
    /// through the donor cache.
    Model,
    /// The cell quarantined; followers replay the verdict.
    Quarantined {
        phase: ca_core::FailurePhase,
        reason: String,
        retries: u32,
    },
    /// The leader's own deadline cut it short — its result says nothing
    /// about the cell, so followers run for themselves.
    LeaderDeadline,
    /// The leader aborted without publishing (handler panic unwound
    /// past the engine); followers run for themselves.
    Aborted,
}

#[derive(Debug, Default)]
struct Flight {
    done: Mutex<Option<Share>>,
    cv: Condvar,
}

impl Flight {
    fn publish(&self, share: Share) {
        *lock(&self.done) = Some(share);
        self.cv.notify_all();
    }

    /// Waits for the leader's result, bounded by `deadline`; `None`
    /// means the deadline expired first.
    fn await_result(&self, deadline: Deadline) -> Option<Share> {
        let mut done = lock(&self.done);
        loop {
            if let Some(share) = done.as_ref() {
                return Some(share.clone());
            }
            if deadline.expired() {
                return None;
            }
            let wait = deadline.remaining().map_or(Duration::from_millis(50), |r| {
                r.min(Duration::from_millis(50))
            });
            done = self
                .cv
                .wait_timeout(done, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }
}

/// Publishes [`Share::Aborted`] if the leader unwinds before reaching
/// its normal publish, so followers can never wait on a dead leader.
struct LeaderGuard<'a> {
    engine: &'a Engine,
    fingerprint: u64,
    flight: Arc<Flight>,
    published: bool,
}

impl LeaderGuard<'_> {
    fn publish(&mut self, share: Share) {
        self.published = true;
        lock(&self.engine.inflight).remove(&self.fingerprint);
        self.flight.publish(share);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            lock(&self.engine.inflight).remove(&self.fingerprint);
            self.flight.publish(Share::Aborted);
        }
    }
}

/// The coalescing, retrying front of one [`CellService`].
pub struct Engine {
    service: CellService,
    inflight: Mutex<BTreeMap<u64, Arc<Flight>>>,
    /// Supervision attempts per request (1 = no retry).
    attempts: u32,
    backoff: Backoff,
    /// Test hook: artificial service time injected before each leader
    /// simulation, so overload/coalescing tests get deterministic
    /// contention without depending on cell complexity.
    service_delay: Duration,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("service", &self.service)
            .field("attempts", &self.attempts)
            .finish()
    }
}

impl Engine {
    pub fn new(
        service: CellService,
        attempts: u32,
        backoff: Backoff,
        service_delay: Duration,
    ) -> Engine {
        Engine {
            service,
            inflight: Mutex::new(BTreeMap::new()),
            attempts: attempts.max(1),
            backoff,
            service_delay,
        }
    }

    pub fn service(&self) -> &CellService {
        &self.service
    }

    /// Characterizes `cell` under `deadline`, coalescing with any
    /// concurrent identical request. Never panics.
    pub fn characterize(&self, cell: &Cell, deadline: Deadline) -> (CellVerdict, ModelSource) {
        let fingerprint = ca_core::cell_fingerprint(cell);
        let (flight, leader) = {
            let mut inflight = lock(&self.inflight);
            match inflight.get(&fingerprint) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight::default());
                    inflight.insert(fingerprint, Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if leader {
            self.lead(cell, deadline, fingerprint, flight)
        } else {
            self.follow(cell, deadline, &flight)
        }
    }

    fn lead(
        &self,
        cell: &Cell,
        deadline: Deadline,
        fingerprint: u64,
        flight: Arc<Flight>,
    ) -> (CellVerdict, ModelSource) {
        let mut guard = LeaderGuard {
            engine: self,
            fingerprint,
            flight,
            published: false,
        };
        let verdict = self.attempt_supervised(cell, deadline);
        let share = match &verdict {
            CellVerdict::Model(_) => Share::Model,
            CellVerdict::Quarantined {
                phase,
                reason,
                retries,
            } => Share::Quarantined {
                phase: *phase,
                reason: reason.clone(),
                retries: *retries,
            },
            CellVerdict::DeadlineExceeded => Share::LeaderDeadline,
        };
        guard.publish(share);
        (verdict, ModelSource::Fresh)
    }

    fn follow(
        &self,
        cell: &Cell,
        deadline: Deadline,
        flight: &Flight,
    ) -> (CellVerdict, ModelSource) {
        ca_obs::counter!("ca_serve.coalesced", Ops).inc();
        match flight.await_result(deadline) {
            None => (CellVerdict::DeadlineExceeded, ModelSource::Coalesced),
            Some(Share::Model) => (
                self.service.coalesced_characterize(cell),
                ModelSource::Coalesced,
            ),
            Some(Share::Quarantined {
                phase,
                reason,
                retries,
            }) => (
                CellVerdict::Quarantined {
                    phase,
                    reason,
                    retries,
                },
                ModelSource::Coalesced,
            ),
            // The leader's outcome says nothing about the cell: run for
            // ourselves (possibly becoming the next leader).
            Some(Share::LeaderDeadline | Share::Aborted) => self.characterize(cell, deadline),
        }
    }

    /// One request's supervised attempt loop: run the guarded pipeline,
    /// catch an escaping panic like the shard supervisor catches a
    /// worker crash, and retry under the backoff schedule while the
    /// deadline allows.
    fn attempt_supervised(&self, cell: &Cell, deadline: Deadline) -> CellVerdict {
        for attempt in 1..=self.attempts {
            if !self.service_delay.is_zero() {
                std::thread::sleep(self.service_delay);
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.service.characterize_cell(cell, deadline)
            }));
            match outcome {
                Ok(verdict) => return verdict,
                Err(panic) => {
                    ca_obs::counter!("ca_serve.retry.worker_failures", Ops).inc();
                    let reason = panic_message(&panic);
                    ca_obs::warn(
                        "ca_serve.engine",
                        "request worker failed; retrying under backoff",
                        &[
                            ("cell", cell.name()),
                            ("attempt", &attempt.to_string()),
                            ("reason", &reason),
                        ],
                    );
                    if attempt == self.attempts || deadline.expired() {
                        return CellVerdict::Quarantined {
                            phase: ca_core::FailurePhase::Characterize,
                            reason: format!("worker failed after {attempt} attempts: {reason}"),
                            retries: attempt - 1,
                        };
                    }
                    ca_obs::counter!("ca_serve.retry.attempts", Ops).inc();
                    let pause = self.backoff.delay(attempt);
                    let pause = deadline.remaining().map_or(pause, |r| pause.min(r));
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
        // Unreachable: the loop always returns by `attempt == attempts`.
        CellVerdict::DeadlineExceeded
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_defects::GenerateOptions;
    use ca_netlist::library::{generate_library, Library, LibraryConfig};
    use ca_netlist::Technology;
    use ca_sim::SimBudget;
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ca-serve-engine-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.caj"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn tiny_library() -> Library {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C40));
        lib.cells.truncate(3);
        lib
    }

    fn engine(tag: &str, lib: &Library, delay: Duration) -> Engine {
        let service = CellService::open(
            tmp_store(tag),
            lib,
            GenerateOptions::default(),
            SimBudget::unlimited(),
            2,
        )
        .unwrap();
        Engine::new(service, 2, Backoff::none(), delay)
    }

    #[test]
    fn concurrent_identical_requests_coalesce_onto_one_simulation() {
        let lib = tiny_library();
        let engine = Arc::new(engine("coalesce", &lib, Duration::from_millis(100)));
        let cell = lib.cells[0].cell.clone();
        let before = ca_obs::global().snapshot();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let cell = cell.clone();
                std::thread::spawn(move || engine.characterize(&cell, Deadline::never()))
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut cams = Vec::new();
        let mut coalesced = 0;
        for (verdict, source) in results {
            match verdict {
                CellVerdict::Model(p) => {
                    cams.push(ca_defects::to_cam(p.model.as_ref().unwrap()));
                }
                other => panic!("{other:?}"),
            }
            if source == ModelSource::Coalesced {
                coalesced += 1;
            }
        }
        assert!(cams.windows(2).all(|w| w[0] == w[1]), "divergent models");
        assert!(coalesced >= 1, "no request coalesced");
        // Exactly one journal append: the leader's.
        assert_eq!(engine.service().report().journaled, 1);
        let delta = ca_obs::global().snapshot().delta(&before);
        assert!(
            delta.counters["ca_serve.coalesced"].1 >= 1,
            "coalesce counter"
        );
    }

    #[test]
    fn follower_deadline_expires_while_leader_runs() {
        let lib = tiny_library();
        let engine = Arc::new(engine(
            "follower-deadline",
            &lib,
            Duration::from_millis(300),
        ));
        let cell = lib.cells[0].cell.clone();
        let leader = {
            let engine = Arc::clone(&engine);
            let cell = cell.clone();
            std::thread::spawn(move || engine.characterize(&cell, Deadline::never()))
        };
        // Give the leader time to claim the flight.
        std::thread::sleep(Duration::from_millis(50));
        let (verdict, source) =
            engine.characterize(&cell, Deadline::after(Duration::from_millis(1)));
        assert!(
            matches!(verdict, CellVerdict::DeadlineExceeded),
            "{verdict:?}"
        );
        assert_eq!(source, ModelSource::Coalesced);
        let (leader_verdict, _) = leader.join().unwrap();
        assert!(matches!(leader_verdict, CellVerdict::Model(_)));
    }
}
