//! Minimal SIGTERM/SIGINT latching without any libc crate.
//!
//! The daemon's graceful-drain contract (DESIGN.md §13) starts at
//! `SIGTERM`: stop admitting, finish and journal in-flight work, then
//! exit. All the handler itself does is flip one process-global atomic
//! — the only action that is both async-signal-safe and useful — and
//! the main loop polls [`termination_requested`]. `std` already links
//! the platform C library on Unix, so the raw `signal(2)` binding
//! introduces no new dependency; on non-Unix targets installation is a
//! no-op and the daemon only stops via a `Drain` request.

use std::sync::atomic::{AtomicBool, Ordering};

static TERMINATION: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been received since [`install`].
pub fn termination_requested() -> bool {
    TERMINATION.load(Ordering::SeqCst)
}

/// Test/embedding hook: latch the flag as if a signal had arrived.
pub fn request_termination() {
    TERMINATION.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod unix {
    use super::TERMINATION;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn latch(_signum: i32) {
        // Only an atomic store: async-signal-safe by construction.
        TERMINATION.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // The handler performs a single async-signal-safe atomic store:
        // no allocation, no locks, no Rust runtime re-entry. The return
        // value (the previous handler) is deliberately discarded.
        // SAFETY: `signal(2)` is called with a valid signal number and
        // a function pointer of the exact `extern "C" fn(i32)` ABI.
        unsafe {
            signal(SIGTERM, latch);
            signal(SIGINT, latch);
        }
    }
}

/// Installs the SIGTERM/SIGINT latch (no-op off Unix).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_is_observable_and_sticky() {
        install();
        request_termination();
        assert!(termination_requested());
        assert!(termination_requested(), "the latch never resets");
    }
}
