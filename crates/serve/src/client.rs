//! Blocking client for the ca-serve protocol — used by `ca-bench
//! serve`'s load generator, the integration tests, and anyone driving
//! the daemon from Rust.

use crate::protocol::{self, ProtocolError, Request, Response, Target};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::Path;
use std::time::Duration;

/// Why a request failed client-side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The server's bytes did not decode.
    Protocol(ProtocolError),
    /// The server closed the connection before answering.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

trait Transport: Read + Write + Send {}
impl<T: Read + Write + Send> Transport for T {}

/// One blocking connection to a ca-serve daemon.
pub struct ServeClient {
    stream: Box<dyn Transport>,
}

impl std::fmt::Debug for ServeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeClient").finish()
    }
}

impl ServeClient {
    /// Connects over a Unix-domain socket.
    #[cfg(unix)]
    pub fn connect_uds(path: impl AsRef<Path>) -> io::Result<ServeClient> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(ServeClient {
            stream: Box::new(stream),
        })
    }

    /// Connects over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(600)))?;
        Ok(ServeClient {
            stream: Box::new(stream),
        })
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_request(&mut self.stream, request).map_err(ClientError::Io)?;
        self.stream.flush().map_err(ClientError::Io)?;
        match protocol::read_response(&mut self.stream) {
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err(ClientError::Closed),
            Err(ProtocolError::Frame(ca_store::frame::FrameError::Io(e))) => {
                Err(ClientError::Io(e))
            }
            Err(e) => Err(ClientError::Protocol(e)),
        }
    }

    /// Liveness probe; `Ok(true)` when the echo matches.
    pub fn ping(&mut self, token: u64) -> Result<bool, ClientError> {
        match self.request(&Request::Ping { token })? {
            Response::Pong { token: echoed } => Ok(echoed == token),
            _ => Ok(false),
        }
    }

    /// Characterizes a library cell by name. When tracing is enabled
    /// and a span is open on this thread, an `rpc` client span wraps
    /// the call and its context rides the wire so the server-side
    /// `request` span parents under it.
    pub fn characterize(
        &mut self,
        client: &str,
        name: &str,
        deadline_ms: u64,
    ) -> Result<Response, ClientError> {
        let rpc = ca_obs::trace::span("rpc");
        let trace = rpc.context();
        self.request(&Request::Characterize {
            client: client.to_string(),
            deadline_ms,
            target: Target::Name(name.to_string()),
            trace,
        })
    }

    /// Characterizes an inline SPICE netlist (traced like
    /// [`ServeClient::characterize`]).
    pub fn characterize_spice(
        &mut self,
        client: &str,
        spice: &str,
        deadline_ms: u64,
    ) -> Result<Response, ClientError> {
        let rpc = ca_obs::trace::span("rpc");
        let trace = rpc.context();
        self.request(&Request::Characterize {
            client: client.to_string(),
            deadline_ms,
            target: Target::Spice(spice.to_string()),
            trace,
        })
    }

    /// Snapshot-isolated journal read.
    pub fn lookup(&mut self, name: &str) -> Result<Response, ClientError> {
        self.request(&Request::Lookup {
            name: name.to_string(),
        })
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Stats)
    }

    /// Full machine-readable metrics registry snapshot (wire v2).
    pub fn metrics_snapshot(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::MetricsSnapshot)
    }

    /// Asks the server to drain.
    pub fn drain(&mut self) -> Result<Response, ClientError> {
        self.request(&Request::Drain)
    }
}
