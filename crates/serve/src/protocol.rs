//! The ca-serve wire protocol: versioned tagged messages inside
//! [`ca_store::frame`] CRC frames.
//!
//! Layout (DESIGN.md §13): every message travels as one frame —
//! `u32 LE payload length · u32 LE CRC-32 · payload` — exactly the
//! journal's framing discipline, so torn and bit-flipped messages are
//! detected by the same code path the store trusts for durability. The
//! payload is `version byte (1) · tag byte · tag-specific fields`;
//! strings are `u32 LE length · UTF-8 bytes`, integers are LE
//! fixed-width. Requests are capped at [`MAX_REQUEST_PAYLOAD`] (1 MiB)
//! and responses at [`MAX_RESPONSE_PAYLOAD`] (16 MiB); the cap is
//! enforced *before* any allocation, so a hostile length prefix can
//! never balloon memory.
//!
//! Decoding is total: every byte sequence maps to `Ok(message)` or a
//! structured [`ProtocolError`] — never a panic, never an unbounded
//! allocation. The property tests at the bottom drive truncations at
//! every split point, bit flips at every position and garbage prefixes
//! through both decoders to hold that line.

use ca_obs::trace::TraceContext;
use ca_store::frame::{self, FrameError};
use std::io::{Read, Write};

/// Wire protocol version; the first payload byte of every message.
/// Encoders always emit the current version; decoders accept every
/// version back to [`WIRE_V1`], filling fields a legacy frame cannot
/// carry with their neutral values (no trace context, zero timing).
pub const WIRE_VERSION: u8 = 2;
/// The original protocol version: no trace context in `Characterize`,
/// no timing breakdown in `Model`, no `MetricsSnapshot` messages.
pub const WIRE_V1: u8 = 1;
/// Request frames larger than this are rejected before allocation.
pub const MAX_REQUEST_PAYLOAD: u32 = 1 << 20;
/// Response frames larger than this are rejected before allocation.
/// Sized for a full `.cam` body plus headroom.
pub const MAX_RESPONSE_PAYLOAD: u32 = 16 << 20;

/// What a characterize request points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// A cell of the library the server was launched with.
    Name(String),
    /// An inline SPICE netlist carried in the request.
    Spice(String),
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; echoed back in [`Response::Pong`] (wire v1).
    Ping { token: u64 },
    /// Characterize one cell under an optional deadline (wire v1;
    /// the trace context rides only on v2+ frames).
    Characterize {
        /// Client identity for per-client quotas.
        client: String,
        /// Milliseconds until the request deadline; `0` = no deadline.
        deadline_ms: u64,
        /// The cell to characterize.
        target: Target,
        /// Caller's trace context (wire v2+); the server adopts it so
        /// the request span parents under the client's span.
        trace: Option<TraceContext>,
    },
    /// Snapshot-isolated read of a journaled record; no simulation
    /// (wire v1).
    Lookup { name: String },
    /// Server counters, queue depths and session report (wire v1).
    Stats,
    /// Ask the server to stop admitting and drain (wire v1).
    Drain,
    /// Full metric-registry snapshot as machine-readable JSON (wire
    /// v2+) — the scrapeable form of [`Request::Stats`].
    MetricsSnapshot,
}

/// Server-side timing breakdown of one characterize request,
/// microseconds (wire v2+; a v1 `Model` frame decodes to zeros).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Timing {
    /// Admission-to-slot wait.
    pub queue_us: u64,
    /// Engine service time (simulation, cache, store, coalescing).
    pub service_us: u64,
    /// Portion of service spent in journal appends (leader requests;
    /// `0` for followers and store-served lookups).
    pub journal_us: u64,
}

/// Where a served model came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// Simulated by this request (possibly via the in-process caches).
    Fresh = 0,
    /// Reserved: certified donor remap (reported as `Fresh` today
    /// because donor hits resolve inside the characterization cache).
    Donor = 1,
    /// Journaled record served without simulation.
    Store = 2,
    /// This request rode a concurrent identical request's simulation.
    Coalesced = 3,
}

/// Structured failure classes; every error frame carries one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request decoded but is semantically invalid (bad SPICE,
    /// empty client name, unknown target kind).
    BadRequest = 1,
    /// Lookup/characterize-by-name for a cell the library doesn't have.
    UnknownCell = 2,
    /// Admission control shed the request: queue full.
    Overloaded = 3,
    /// Admission control shed the request: per-client quota.
    QuotaExceeded = 4,
    /// The deadline expired in queue or was the binding constraint of
    /// the simulation.
    DeadlineExceeded = 5,
    /// The cell failed characterization; detail carries the diagnosis.
    Quarantined = 6,
    /// The server is draining and admits no new work.
    Draining = 7,
    /// The server-side handler failed after exhausting retries.
    Internal = 8,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Echo of [`Request::Ping`] (wire v1).
    Pong { token: u64 },
    /// A characterized (or journaled) model (wire v1; the timing
    /// breakdown rides only on v2+ frames).
    Model {
        /// Canonical cell name.
        cell: String,
        /// Whether the model is budget-degraded.
        degraded: bool,
        /// Provenance of the bytes.
        source: ModelSource,
        /// The `.cam` export body.
        cam: String,
        /// Server-side timing breakdown (wire v2+; zeros from v1).
        timing: Timing,
    },
    /// A structured failure; never a dropped connection (wire v1).
    Error { kind: ErrorKind, detail: String },
    /// Rendered server counters (wire v1).
    Stats { body: String },
    /// Acknowledgement of [`Request::Drain`] (wire v1).
    Draining,
    /// Registry snapshot as JSON (schema `ca-obs-metrics/1`), answering
    /// [`Request::MetricsSnapshot`] (wire v2+).
    MetricsSnapshot { json: String },
}

/// Why a message failed to decode. Every variant is a protocol-level
/// fact a server can answer (or a client can report) without dying.
#[derive(Debug)]
pub enum ProtocolError {
    /// The frame layer rejected the bytes (torn, oversized, CRC).
    Frame(FrameError),
    /// The payload ended before the field named here.
    Truncated(&'static str),
    /// First payload byte is not a supported version
    /// ([`WIRE_V1`]..=[`WIRE_VERSION`]).
    BadVersion(u8),
    /// Unknown message tag for this direction.
    BadTag(u8),
    /// A field decoded to an out-of-domain value.
    BadField(&'static str),
    /// Payload bytes left over after the last field.
    TrailingBytes(usize),
    /// A string field is not UTF-8.
    BadUtf8(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Frame(e) => write!(f, "frame: {e}"),
            ProtocolError::Truncated(field) => write!(f, "payload truncated at {field}"),
            ProtocolError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            ProtocolError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtocolError::BadField(field) => write!(f, "out-of-domain value for {field}"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::BadUtf8(field) => write!(f, "{field} is not valid UTF-8"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<FrameError> for ProtocolError {
    fn from(e: FrameError) -> ProtocolError {
        ProtocolError::Frame(e)
    }
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Serializes a request payload (unframed).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    match req {
        Request::Ping { token } => {
            out.push(1);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Request::Characterize {
            client,
            deadline_ms,
            target,
            trace,
        } => {
            out.push(2);
            put_str(&mut out, client);
            out.extend_from_slice(&deadline_ms.to_le_bytes());
            match target {
                Target::Name(name) => {
                    out.push(0);
                    put_str(&mut out, name);
                }
                Target::Spice(src) => {
                    out.push(1);
                    put_str(&mut out, src);
                }
            }
            match trace {
                None => out.push(0),
                Some(ctx) => {
                    out.push(1);
                    out.extend_from_slice(&ctx.trace_id.to_le_bytes());
                    out.extend_from_slice(&ctx.span_id.to_le_bytes());
                    out.extend_from_slice(&ctx.child_seed.to_le_bytes());
                }
            }
        }
        Request::Lookup { name } => {
            out.push(3);
            put_str(&mut out, name);
        }
        Request::Stats => out.push(4),
        Request::Drain => out.push(5),
        Request::MetricsSnapshot => out.push(6),
    }
    out
}

/// Serializes a response payload (unframed).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = vec![WIRE_VERSION];
    match resp {
        Response::Pong { token } => {
            out.push(1);
            out.extend_from_slice(&token.to_le_bytes());
        }
        Response::Model {
            cell,
            degraded,
            source,
            cam,
            timing,
        } => {
            out.push(2);
            put_str(&mut out, cell);
            out.push(u8::from(*degraded));
            out.push(*source as u8);
            put_str(&mut out, cam);
            out.extend_from_slice(&timing.queue_us.to_le_bytes());
            out.extend_from_slice(&timing.service_us.to_le_bytes());
            out.extend_from_slice(&timing.journal_us.to_le_bytes());
        }
        Response::Error { kind, detail } => {
            out.push(3);
            out.push(*kind as u8);
            put_str(&mut out, detail);
        }
        Response::Stats { body } => {
            out.push(4);
            put_str(&mut out, body);
        }
        Response::Draining => out.push(5),
        Response::MetricsSnapshot { json } => {
            out.push(6);
            put_str(&mut out, json);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Payload decoding
// ---------------------------------------------------------------------

/// Bounds-checked cursor over one frame payload. Every accessor
/// returns a structured error instead of slicing out of range, and
/// string reads never allocate more than the bytes actually present.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn u8(&mut self, field: &'static str) -> Result<u8, ProtocolError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or(ProtocolError::Truncated(field))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtocolError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtocolError::Truncated(field))?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtocolError> {
        let end = self
            .pos
            .checked_add(8)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtocolError::Truncated(field))?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn str(&mut self, field: &'static str) -> Result<String, ProtocolError> {
        let len = self.u32(field)? as usize;
        // The declared length is checked against the bytes *present*
        // before any allocation: a hostile prefix cannot oversize.
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ProtocolError::Truncated(field))?;
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| ProtocolError::BadUtf8(field))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let left = self.bytes.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes(left))
        }
    }
}

/// Reads and validates the version byte; returns it so tag-specific
/// decoding can pick the per-version field layout.
fn check_version(r: &mut Reader<'_>) -> Result<u8, ProtocolError> {
    let v = r.u8("version")?;
    if (WIRE_V1..=WIRE_VERSION).contains(&v) {
        Ok(v)
    } else {
        Err(ProtocolError::BadVersion(v))
    }
}

/// Decodes a request payload (unframed). Accepts both wire versions:
/// a v1 `Characterize` simply carries no trace context, and the
/// v2-only `MetricsSnapshot` tag is rejected under v1 exactly as a v1
/// peer would have rejected it.
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtocolError> {
    let mut r = Reader::new(payload);
    let version = check_version(&mut r)?;
    let req = match r.u8("request tag")? {
        1 => Request::Ping {
            token: r.u64("ping token")?,
        },
        2 => {
            let client = r.str("client")?;
            let deadline_ms = r.u64("deadline_ms")?;
            let target = match r.u8("target kind")? {
                0 => Target::Name(r.str("target name")?),
                1 => Target::Spice(r.str("target spice")?),
                _ => return Err(ProtocolError::BadField("target kind")),
            };
            let trace = if version >= 2 {
                match r.u8("trace present")? {
                    0 => None,
                    1 => Some(TraceContext {
                        trace_id: r.u64("trace id")?,
                        span_id: r.u64("trace span")?,
                        child_seed: r.u64("trace seed")?,
                    }),
                    _ => return Err(ProtocolError::BadField("trace present")),
                }
            } else {
                None
            };
            Request::Characterize {
                client,
                deadline_ms,
                target,
                trace,
            }
        }
        3 => Request::Lookup {
            name: r.str("lookup name")?,
        },
        4 => Request::Stats,
        5 => Request::Drain,
        6 if version >= 2 => Request::MetricsSnapshot,
        t => return Err(ProtocolError::BadTag(t)),
    };
    r.finish()?;
    Ok(req)
}

/// Decodes a response payload (unframed). A v1 `Model` frame decodes
/// with a zeroed [`Timing`] — the legacy protocol had no breakdown.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut r = Reader::new(payload);
    let version = check_version(&mut r)?;
    let resp = match r.u8("response tag")? {
        1 => Response::Pong {
            token: r.u64("pong token")?,
        },
        2 => {
            let cell = r.str("cell")?;
            let degraded = match r.u8("degraded")? {
                0 => false,
                1 => true,
                _ => return Err(ProtocolError::BadField("degraded")),
            };
            let source = match r.u8("source")? {
                0 => ModelSource::Fresh,
                1 => ModelSource::Donor,
                2 => ModelSource::Store,
                3 => ModelSource::Coalesced,
                _ => return Err(ProtocolError::BadField("source")),
            };
            let cam = r.str("cam")?;
            let timing = if version >= 2 {
                Timing {
                    queue_us: r.u64("timing queue_us")?,
                    service_us: r.u64("timing service_us")?,
                    journal_us: r.u64("timing journal_us")?,
                }
            } else {
                Timing::default()
            };
            Response::Model {
                cell,
                degraded,
                source,
                cam,
                timing,
            }
        }
        3 => {
            let kind = match r.u8("error kind")? {
                1 => ErrorKind::BadRequest,
                2 => ErrorKind::UnknownCell,
                3 => ErrorKind::Overloaded,
                4 => ErrorKind::QuotaExceeded,
                5 => ErrorKind::DeadlineExceeded,
                6 => ErrorKind::Quarantined,
                7 => ErrorKind::Draining,
                8 => ErrorKind::Internal,
                _ => return Err(ProtocolError::BadField("error kind")),
            };
            Response::Error {
                kind,
                detail: r.str("error detail")?,
            }
        }
        4 => Response::Stats {
            body: r.str("stats body")?,
        },
        5 => Response::Draining,
        6 if version >= 2 => Response::MetricsSnapshot {
            json: r.str("metrics json")?,
        },
        t => return Err(ProtocolError::BadTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framed stream I/O
// ---------------------------------------------------------------------

/// Writes one framed request to `w`.
pub fn write_request<W: Write>(w: &mut W, req: &Request) -> std::io::Result<()> {
    frame::write_frame(w, &encode_request(req), MAX_REQUEST_PAYLOAD)
}

/// Writes one framed response to `w`.
pub fn write_response<W: Write>(w: &mut W, resp: &Response) -> std::io::Result<()> {
    frame::write_frame(w, &encode_response(resp), MAX_RESPONSE_PAYLOAD)
}

/// Reads one framed request from `r`; `Ok(None)` is clean EOF between
/// frames (the client hung up politely).
pub fn read_request<R: Read>(r: &mut R) -> Result<Option<Request>, ProtocolError> {
    match frame::read_frame(r, MAX_REQUEST_PAYLOAD)? {
        None => Ok(None),
        Some(payload) => decode_request(&payload).map(Some),
    }
}

/// Reads one framed response from `r`; `Ok(None)` is clean EOF.
pub fn read_response<R: Read>(r: &mut R) -> Result<Option<Response>, ProtocolError> {
    match frame::read_frame(r, MAX_RESPONSE_PAYLOAD)? {
        None => Ok(None),
        Some(payload) => decode_response(&payload).map(Some),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ping { token: 0 },
            Request::Ping { token: u64::MAX },
            Request::Characterize {
                client: "loadgen-7".into(),
                deadline_ms: 2500,
                target: Target::Name("INV_X1".into()),
                trace: None,
            },
            Request::Characterize {
                client: "traced".into(),
                deadline_ms: 100,
                target: Target::Name("ND2_X1".into()),
                trace: Some(TraceContext {
                    trace_id: 0x0123_4567_89ab_cdef,
                    span_id: u64::MAX,
                    child_seed: 7,
                }),
            },
            Request::Characterize {
                client: String::new(),
                deadline_ms: 0,
                target: Target::Spice(".SUBCKT X A Z VDD VSS\n.ENDS".into()),
                trace: None,
            },
            Request::Lookup {
                name: "ND2_X1".into(),
            },
            Request::Stats,
            Request::Drain,
            Request::MetricsSnapshot,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Pong { token: 42 },
            Response::Model {
                cell: "INV_X1".into(),
                degraded: false,
                source: ModelSource::Fresh,
                cam: "* CAM body\n".into(),
                timing: Timing {
                    queue_us: 12,
                    service_us: 3400,
                    journal_us: 56,
                },
            },
            Response::Model {
                cell: "ND2_X1".into(),
                degraded: true,
                source: ModelSource::Coalesced,
                cam: String::new(),
                timing: Timing::default(),
            },
            Response::Error {
                kind: ErrorKind::Overloaded,
                detail: "queue full (32 waiting)".into(),
            },
            Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                detail: String::new(),
            },
            Response::Stats {
                body: "ca_serve.admitted 12\n".into(),
            },
            Response::Draining,
            Response::MetricsSnapshot {
                json: "{\"schema\":\"ca-obs-metrics/1\"}".into(),
            },
        ]
    }

    #[test]
    fn requests_and_responses_round_trip() {
        for req in sample_requests() {
            assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
        }
        for resp in sample_responses() {
            assert_eq!(decode_response(&encode_response(&resp)).unwrap(), resp);
        }
    }

    #[test]
    fn framed_stream_round_trips_back_to_back_messages() {
        let mut wire = Vec::new();
        for req in sample_requests() {
            write_request(&mut wire, &req).unwrap();
        }
        let mut r = &wire[..];
        for req in sample_requests() {
            assert_eq!(read_request(&mut r).unwrap(), Some(req));
        }
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    /// Satellite property: every truncation of every sample message, at
    /// every byte boundary, decodes to a structured error — no panics,
    /// no hangs, no partial successes.
    #[test]
    fn every_truncation_is_a_structured_error() {
        for req in sample_requests() {
            let payload = encode_request(&req);
            for cut in 0..payload.len() {
                let err = decode_request(&payload[..cut])
                    .expect_err(&format!("{req:?} truncated at {cut} must not decode"));
                // The error renders; this is what lands in Error frames.
                assert!(!err.to_string().is_empty());
            }
        }
        for resp in sample_responses() {
            let payload = encode_response(&resp);
            for cut in 0..payload.len() {
                assert!(
                    decode_response(&payload[..cut]).is_err(),
                    "{resp:?} at {cut}"
                );
            }
        }
    }

    /// Satellite property: a bit flip anywhere in a *framed* message is
    /// caught — by the CRC for payload/length damage, or by the typed
    /// decoders for damage that still frames cleanly. Either way the
    /// result is a structured error or a *different valid message*,
    /// never a panic.
    #[test]
    fn every_bit_flip_in_a_framed_request_is_contained() {
        let req = Request::Characterize {
            client: "fuzz".into(),
            deadline_ms: 77,
            target: Target::Name("INV_X1".into()),
            trace: None,
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        for byte in 0..wire.len() {
            for bit in 0..8 {
                let mut dam = wire.clone();
                dam[byte] ^= 1 << bit;
                // Must return — structured error, clean EOF (length
                // field shrank to a prefix that frames as torn), or a
                // decoded message. All are contained outcomes.
                let _ = read_request(&mut &dam[..]);
            }
        }
    }

    /// Satellite property: hostile length prefixes are rejected by cap
    /// comparison before any allocation.
    #[test]
    fn oversized_and_garbage_frames_are_rejected_cheaply() {
        // Frame-level: a 2 GiB length prefix.
        let mut wire = (u32::MAX / 2).to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 12]);
        match read_request(&mut &wire[..]) {
            Err(ProtocolError::Frame(FrameError::TooLarge { .. })) => {}
            other => panic!("{other:?}"),
        }
        // String-level: a valid frame whose string length field claims
        // more bytes than the payload holds.
        let mut payload = vec![WIRE_VERSION, 3];
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        match decode_request(&payload) {
            Err(ProtocolError::Truncated(_)) => {}
            other => panic!("{other:?}"),
        }
        // Garbage: random-ish bytes at every prefix length.
        let garbage: Vec<u8> = (0..256u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..garbage.len() {
            let _ = read_request(&mut &garbage[..len]);
        }
    }

    #[test]
    fn version_and_tag_domain_errors_are_explicit() {
        assert!(matches!(
            decode_request(&[9, 1, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(ProtocolError::BadVersion(9))
        ));
        assert!(matches!(
            decode_request(&[WIRE_VERSION, 77]),
            Err(ProtocolError::BadTag(77))
        ));
        // Trailing bytes after a complete message are a protocol error,
        // not silently ignored (they'd desync a stream otherwise).
        let mut payload = encode_request(&Request::Stats);
        payload.push(0);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::TrailingBytes(1))
        ));
        // Non-UTF-8 in a string field.
        let mut payload = vec![WIRE_VERSION, 3];
        payload.extend_from_slice(&2u32.to_le_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            decode_request(&payload),
            Err(ProtocolError::BadUtf8("lookup name"))
        ));
    }

    /// Old-frame compatibility: v1 payloads (no trace context, no
    /// timing block, no tag 6) still decode, with the v2-only fields
    /// defaulted. A v1 peer never sees the new fields; a v2 decoder
    /// never demands them from a v1 frame.
    #[test]
    fn v1_frames_decode_with_defaulted_v2_fields() {
        // v1 Characterize: version 1, tag 2, client, deadline, target —
        // and nothing after the target (no trace presence byte).
        let mut payload = vec![WIRE_V1, 2];
        put_str(&mut payload, "old-client");
        payload.extend_from_slice(&1500u64.to_le_bytes());
        payload.push(0); // Target::Name
        put_str(&mut payload, "INV_X1");
        assert_eq!(
            decode_request(&payload).unwrap(),
            Request::Characterize {
                client: "old-client".into(),
                deadline_ms: 1500,
                target: Target::Name("INV_X1".into()),
                trace: None,
            }
        );

        // v1 Model: version 1, tag 2, cell, degraded, source, cam —
        // no timing block. Decodes with Timing::default().
        let mut payload = vec![WIRE_V1, 2];
        put_str(&mut payload, "INV_X1");
        payload.push(0); // degraded = false
        payload.push(ModelSource::Fresh as u8);
        put_str(&mut payload, "* CAM\n");
        assert_eq!(
            decode_response(&payload).unwrap(),
            Response::Model {
                cell: "INV_X1".into(),
                degraded: false,
                source: ModelSource::Fresh,
                cam: "* CAM\n".into(),
                timing: Timing::default(),
            }
        );

        // Tag 6 did not exist in v1: a v1 frame claiming it is a
        // BadTag, not a silent MetricsSnapshot.
        assert!(matches!(
            decode_request(&[WIRE_V1, 6]),
            Err(ProtocolError::BadTag(6))
        ));
        assert!(matches!(
            decode_response(&[WIRE_V1, 6]),
            Err(ProtocolError::BadTag(6))
        ));

        // v1 messages without version-gated fields round-trip through
        // a v1 version byte unchanged (encoders always emit v2; this
        // pins the *decode* path only).
        let mut payload = encode_request(&Request::Stats);
        payload[0] = WIRE_V1;
        assert_eq!(decode_request(&payload).unwrap(), Request::Stats);
    }
}
