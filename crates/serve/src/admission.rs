//! Admission control: bounded queues, execution slots, per-client
//! quotas and the drain gate.
//!
//! The state machine (DESIGN.md §13) sees every characterize request
//! twice:
//!
//! 1. **Admit** ([`Admission::try_admit`]): a constant-time decision at
//!    the socket. A request is *denied* — with a structured
//!    [`Denial`], never a dropped connection — when the server is
//!    draining, the client is over its concurrency or lifetime quota,
//!    or queue + executing capacity is full. An admitted request holds
//!    a [`Ticket`] whose `Drop` releases every count it holds, so a
//!    panicking handler can never leak capacity.
//! 2. **Execute** ([`Ticket::acquire_slot`]): the queued request waits
//!    on a condvar for one of the bounded execution slots, but never
//!    longer than its deadline — a request that would start late is
//!    answered `DeadlineExceeded` from the queue instead of wasting a
//!    slot on an answer nobody is waiting for.
//!
//! Memory is bounded by construction: at most `queue + slots` tickets
//! exist per server, each a few hundred bytes, and everything beyond
//! that is shed at admission.

use ca_obs::clock::Deadline;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Sizing and quota knobs for one [`Admission`] gate.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Concurrent executions (simulation slots).
    pub slots: usize,
    /// Admitted requests allowed to wait beyond the executing ones.
    pub queue: usize,
    /// Concurrent admitted requests (queued + executing) per client.
    pub per_client: usize,
    /// Lifetime admitted-request allowance per client; `None` = no cap.
    pub client_budget: Option<u64>,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            slots: 2,
            queue: 32,
            per_client: 8,
            client_budget: None,
        }
    }
}

/// Why admission was refused; maps 1:1 onto protocol error kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Denial {
    /// Queue + slots capacity is full.
    Overloaded,
    /// The client is over its concurrency or lifetime quota.
    QuotaExceeded,
    /// The server is draining and admits nothing new.
    Draining,
}

#[derive(Debug, Default)]
struct ClientState {
    /// Admitted (queued + executing) requests right now.
    active: usize,
    /// Lifetime admitted total, charged against `client_budget`.
    admitted: u64,
}

#[derive(Debug, Default)]
struct State {
    executing: usize,
    queued: usize,
    clients: BTreeMap<String, ClientState>,
}

/// The admission gate; see the module docs. One per server, shared by
/// every connection thread.
#[derive(Debug)]
pub struct Admission {
    config: AdmissionConfig,
    state: Mutex<State>,
    changed: Condvar,
    draining: AtomicBool,
}

impl Admission {
    pub fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            state: Mutex::new(State::default()),
            changed: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// Admits or sheds one request from `client`. On admission the
    /// returned [`Ticket`] occupies one queue position until
    /// [`Ticket::acquire_slot`] promotes it (and frees the position for
    /// the next arrival).
    pub fn try_admit<'a>(&'a self, client: &str) -> Result<Ticket<'a>, Denial> {
        if self.draining() {
            ca_obs::counter!("ca_serve.shed.draining", Ops).inc();
            return Err(Denial::Draining);
        }
        let mut state = lock(&self.state);
        let entry = state.clients.entry(client.to_string()).or_default();
        if entry.active >= self.config.per_client
            || self
                .config
                .client_budget
                .is_some_and(|cap| entry.admitted >= cap)
        {
            ca_obs::counter!("ca_serve.shed.quota", Ops).inc();
            return Err(Denial::QuotaExceeded);
        }
        if state.queued >= self.config.queue {
            ca_obs::counter!("ca_serve.shed.overloaded", Ops).inc();
            return Err(Denial::Overloaded);
        }
        let entry = state.clients.entry(client.to_string()).or_default();
        entry.active += 1;
        entry.admitted += 1;
        state.queued += 1;
        ca_obs::counter!("ca_serve.admitted", Ops).inc();
        self.publish_depths(&state);
        Ok(Ticket {
            gate: self,
            client: client.to_string(),
            executing: false,
            released: false,
        })
    }

    /// Flips the gate shut: every subsequent [`Admission::try_admit`]
    /// returns [`Denial::Draining`]. Already-admitted work proceeds.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        // Wake queued waiters so they observe the drain promptly (their
        // tickets stay valid — admitted work is finished, not shed).
        self.changed.notify_all();
    }

    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Admitted requests currently queued or executing.
    pub fn in_flight(&self) -> usize {
        let state = lock(&self.state);
        state.queued + state.executing
    }

    /// Blocks until nothing is queued or executing (the drain
    /// barrier). Polling with a condvar timeout keeps this robust to a
    /// missed notify from a panicking handler.
    pub fn await_idle(&self) {
        let mut state = lock(&self.state);
        while state.queued + state.executing > 0 {
            state = self
                .changed
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    fn publish_depths(&self, state: &State) {
        ca_obs::global()
            .gauge("ca_serve.queue.depth")
            .set(state.queued as u64);
        ca_obs::global()
            .gauge("ca_serve.executing")
            .set(state.executing as u64);
    }
}

/// The request's deadline expired while it waited in queue for an
/// execution slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueTimeout;

/// One admitted request's hold on the gate; see the module docs.
#[derive(Debug)]
pub struct Ticket<'a> {
    gate: &'a Admission,
    client: String,
    executing: bool,
    released: bool,
}

impl Ticket<'_> {
    /// Waits for an execution slot, but never past `deadline`.
    /// [`QueueTimeout`] means the deadline expired first; the ticket
    /// stays valid (its capacity is released on drop as usual).
    pub fn acquire_slot(&mut self, deadline: Deadline) -> Result<(), QueueTimeout> {
        let mut state = lock(&self.gate.state);
        loop {
            if state.executing < self.gate.config.slots {
                state.executing += 1;
                state.queued -= 1;
                self.executing = true;
                self.gate.publish_depths(&state);
                // A freed queue position is capacity for the accept
                // threads, not a slot: no notify needed (admission
                // re-checks under the same lock).
                return Ok(());
            }
            if deadline.expired() {
                ca_obs::counter!("ca_serve.shed.deadline_in_queue", Ops).inc();
                return Err(QueueTimeout);
            }
            // Wait for a slot release, re-checking the deadline at
            // least every 50ms even if notifies go missing.
            let wait = deadline.remaining().map_or(Duration::from_millis(50), |r| {
                r.min(Duration::from_millis(50))
            });
            state = self
                .gate
                .changed
                .wait_timeout(state, wait)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        self.released = true;
        let mut state = lock(&self.gate.state);
        if self.executing {
            state.executing -= 1;
        } else {
            state.queued -= 1;
        }
        if let Some(entry) = state.clients.get_mut(&self.client) {
            entry.active = entry.active.saturating_sub(1);
        }
        self.gate.publish_depths(&state);
        self.gate.changed.notify_all();
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(slots: usize, queue: usize, per_client: usize) -> Admission {
        Admission::new(AdmissionConfig {
            slots,
            queue,
            per_client,
            client_budget: None,
        })
    }

    #[test]
    fn capacity_is_bounded_and_released_on_drop() {
        let gate = gate(1, 2, 10);
        let t1 = gate.try_admit("a").unwrap();
        let t2 = gate.try_admit("a").unwrap();
        assert_eq!(gate.try_admit("a").unwrap_err(), Denial::Overloaded);
        drop(t1);
        let t3 = gate.try_admit("a").unwrap();
        assert_eq!(gate.in_flight(), 2);
        drop((t2, t3));
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn per_client_quota_sheds_before_global_capacity() {
        let gate = gate(4, 16, 2);
        let _a1 = gate.try_admit("a").unwrap();
        let _a2 = gate.try_admit("a").unwrap();
        assert_eq!(gate.try_admit("a").unwrap_err(), Denial::QuotaExceeded);
        // A different client still gets in.
        assert!(gate.try_admit("b").is_ok());
    }

    #[test]
    fn lifetime_budget_is_charged_even_after_release() {
        let gate = Admission::new(AdmissionConfig {
            slots: 4,
            queue: 16,
            per_client: 8,
            client_budget: Some(2),
        });
        drop(gate.try_admit("a").unwrap());
        drop(gate.try_admit("a").unwrap());
        assert_eq!(gate.try_admit("a").unwrap_err(), Denial::QuotaExceeded);
        assert!(gate.try_admit("b").is_ok(), "budget is per-client");
    }

    #[test]
    fn slots_gate_execution_and_deadline_bounds_the_wait() {
        let gate = gate(1, 8, 8);
        let mut t1 = gate.try_admit("a").unwrap();
        t1.acquire_slot(Deadline::never()).unwrap();
        // The slot is taken: an expired deadline sheds from the queue.
        let mut t2 = gate.try_admit("a").unwrap();
        assert!(t2.acquire_slot(Deadline::after(Duration::ZERO)).is_err());
        // Releasing the executor lets the next waiter promote.
        drop(t1);
        let mut t3 = gate.try_admit("a").unwrap();
        t3.acquire_slot(Deadline::after(Duration::from_secs(5)))
            .unwrap();
    }

    #[test]
    fn drain_closes_the_gate_and_await_idle_returns() {
        let gate = gate(2, 8, 8);
        let t = gate.try_admit("a").unwrap();
        gate.begin_drain();
        assert_eq!(gate.try_admit("b").unwrap_err(), Denial::Draining);
        assert_eq!(gate.in_flight(), 1, "admitted work survives drain");
        drop(t);
        gate.await_idle();
        assert_eq!(gate.in_flight(), 0);
    }
}
