//! The `ca-serve` daemon binary.
//!
//! ```text
//! ca-serve --uds /tmp/ca.sock --store /data/lib.caj [--tech c40] \
//!          [--profile quick|full] [--cells N] [--tcp 127.0.0.1:7543] \
//!          [--slots N] [--queue N] [--per-client N] [--client-budget N] \
//!          [--attempts N] [--default-deadline-ms N] [--service-delay-ms N]
//! ```
//!
//! Prints `CA-SERVE-READY <endpoints>` once listening and
//! `CA-SERVE-DRAINED` after a graceful drain — fixed protocol markers
//! for harnesses driving the daemon as a child process. `SIGTERM` and
//! `SIGINT` trigger the drain; `SIGKILL` is the crash path the journal
//! recovers from on the next start.

use ca_netlist::library::{generate_library, LibraryConfig, Technology};
use ca_obs::protocol_marker;
use ca_serve::server::{Endpoint, ServeConfig, Server};
use ca_serve::signal;
use std::time::Duration;

fn die(detail: &str) -> ! {
    ca_obs::warn("ca_serve.main", "fatal", &[("detail", detail)]);
    let _ = ca_obs::flush();
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.map(|v| v.parse::<T>()) {
        Some(Ok(parsed)) => parsed,
        _ => die(&format!("{flag} needs a valid value")),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut endpoints = Vec::new();
    let mut store = None;
    let mut tech = Technology::C40;
    let mut full_profile = false;
    let mut cells = None;
    let mut config_slots = None;
    let mut queue = None;
    let mut per_client = None;
    let mut client_budget = None;
    let mut attempts = None;
    let mut default_deadline_ms = None;
    let mut service_delay_ms = 0u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--uds" => endpoints.push(Endpoint::Uds(parse("--uds", args.next()))),
            "--tcp" => endpoints.push(Endpoint::Tcp(parse("--tcp", args.next()))),
            "--store" => store = Some(parse::<std::path::PathBuf>("--store", args.next())),
            "--tech" => {
                tech = match args.next().as_deref() {
                    Some("c40") => Technology::C40,
                    Some("soi28") => Technology::Soi28,
                    Some("c28") => Technology::C28,
                    other => die(&format!("--tech must be c40|soi28|c28, got {other:?}")),
                }
            }
            "--profile" => {
                full_profile = match args.next().as_deref() {
                    Some("quick") => false,
                    Some("full") => true,
                    other => die(&format!("--profile must be quick|full, got {other:?}")),
                }
            }
            "--cells" => cells = Some(parse::<usize>("--cells", args.next())),
            "--slots" => config_slots = Some(parse::<usize>("--slots", args.next())),
            "--queue" => queue = Some(parse::<usize>("--queue", args.next())),
            "--per-client" => per_client = Some(parse::<usize>("--per-client", args.next())),
            "--client-budget" => client_budget = Some(parse::<u64>("--client-budget", args.next())),
            "--attempts" => attempts = Some(parse::<u32>("--attempts", args.next())),
            "--default-deadline-ms" => {
                default_deadline_ms = Some(parse::<u64>("--default-deadline-ms", args.next()))
            }
            "--service-delay-ms" => {
                service_delay_ms = parse::<u64>("--service-delay-ms", args.next())
            }
            other => die(&format!("unknown flag {other}")),
        }
    }
    let Some(store) = store else {
        die("--store is required");
    };
    if endpoints.is_empty() {
        die("at least one --uds or --tcp endpoint is required");
    }
    let lib_config = if full_profile {
        LibraryConfig::full(tech)
    } else {
        LibraryConfig::quick(tech)
    };
    let mut library = generate_library(&lib_config);
    if let Some(n) = cells {
        library.cells.truncate(n);
    }
    let mut config = ServeConfig::new(store, library);
    if let Some(slots) = config_slots {
        config.admission.slots = slots.max(1);
    } else {
        config.admission.slots = ca_core::Executor::from_env().threads().max(1);
    }
    if let Some(queue) = queue {
        config.admission.queue = queue;
    }
    if let Some(per_client) = per_client {
        config.admission.per_client = per_client.max(1);
    }
    config.admission.client_budget = client_budget;
    if let Some(attempts) = attempts {
        config.attempts = attempts.max(1);
    }
    config.default_deadline = default_deadline_ms.map(Duration::from_millis);
    config.service_delay = Duration::from_millis(service_delay_ms);

    signal::install();
    let server = match Server::start(config, &endpoints) {
        Ok(server) => server,
        Err(e) => die(&e.to_string()),
    };
    let mut ready = String::from("CA-SERVE-READY");
    if let Some(path) = server.uds_path() {
        ready.push_str(&format!(" uds={}", path.display()));
    }
    if let Some(addr) = server.tcp_addr() {
        ready.push_str(&format!(" tcp={addr}"));
    }
    protocol_marker(&ready);

    while !signal::termination_requested() && !server.draining() {
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
    protocol_marker("CA-SERVE-DRAINED");
    // Trace spans and structured events buffered in the sink survive
    // only if flushed before exit (CA_OBS_PATH picks the file).
    let _ = ca_obs::flush();
}
