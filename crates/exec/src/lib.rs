//! Scoped parallel executor for embarrassingly parallel batch stages.
//!
//! Every expensive stage of the characterization pipeline — per-cell
//! conventional flows, per-tree forest fits, per-cell predictions — is a
//! map over independent items. This crate provides that map once, with
//! the three properties each hand-rolled copy used to get only partially
//! right:
//!
//! - **Deterministic result ordering** — results come back in item order
//!   regardless of which worker ran what. Work distribution is a shared
//!   atomic cursor (work-*pulling*: a fast worker pulls the next item the
//!   moment it finishes, so no static chunking can strand a slow chunk on
//!   one thread).
//! - **Per-item panic isolation** — a panicking item never takes down a
//!   worker or poisons its siblings' results. [`Executor::map`] re-raises
//!   the lowest-index panic after the batch; [`Executor::map_isolated`]
//!   converts each panic into an `Err(message)` for quarantine flows.
//! - **`CA_THREADS` override** — [`Executor::from_env`] honours the
//!   `CA_THREADS` environment variable, else uses
//!   [`std::thread::available_parallelism`]. `CA_THREADS=1` reproduces
//!   the serial behaviour exactly (items run inline on the caller's
//!   thread, in order).
//!
//! The workspace is hermetic (no external crates), so this is plain
//! `std::thread::scope` + `AtomicUsize`, not a dependency on rayon.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on auto-detected worker threads (a safety valve for
/// many-core CI machines; `CA_THREADS` may exceed it explicitly).
const MAX_AUTO_THREADS: usize = 16;

/// A fixed-width scoped executor. Cheap to construct; spawns its worker
/// threads per [`map`](Executor::map) call and joins them before
/// returning, so no state outlives a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Executor {
        Executor::from_env()
    }
}

impl Executor {
    /// An executor with exactly `threads` workers (at least 1).
    pub fn with_threads(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// Reads the width from the `CA_THREADS` environment variable when it
    /// is set to a positive integer, else uses the machine's available
    /// parallelism (capped at 16).
    ///
    /// A `CA_THREADS` value that is set but *not* a positive integer
    /// (`0`, empty, garbage) is a configuration mistake, not a request
    /// for the default: this constructor prints a loud warning to stderr
    /// naming the bad value and falls back to auto-detected parallelism.
    /// Batch entry points that would rather refuse to start should use
    /// [`Executor::try_from_env`].
    pub fn from_env() -> Executor {
        match Executor::try_from_env() {
            Ok(exec) => exec,
            Err(err) => {
                ca_obs::warn(
                    "ca_exec",
                    &format!("warning: {err}; falling back to auto-detected parallelism"),
                    &[("raw", &err.value)],
                );
                Executor::auto()
            }
        }
    }

    /// Like [`Executor::from_env`], but a set-yet-invalid `CA_THREADS`
    /// is an error instead of a warning-and-fallback — for entry points
    /// where silently ignoring an explicit (mis)configuration would be
    /// worse than not starting.
    ///
    /// An *unset* `CA_THREADS` is not an error: it means auto-detect.
    ///
    /// # Errors
    ///
    /// [`BadThreadsVar`] echoing the rejected value.
    pub fn try_from_env() -> Result<Executor, BadThreadsVar> {
        match std::env::var("CA_THREADS") {
            Err(_) => Ok(Executor::auto()),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Executor::with_threads(n)),
                _ => Err(BadThreadsVar { value: raw }),
            },
        }
    }

    /// The machine's available parallelism, capped at
    /// [`MAX_AUTO_THREADS`].
    fn auto() -> Executor {
        Executor::with_threads(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_AUTO_THREADS),
        )
    }

    /// Number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in item order.
    ///
    /// # Panics
    ///
    /// If one or more items panic, the whole batch still runs (other
    /// items are unaffected), then the payload of the *lowest-index*
    /// panicking item is re-raised — so the surfacing panic is
    /// deterministic across thread counts.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        let mut first_panic = None;
        for result in self.run(items, &f) {
            match result {
                Ok(r) => out.push(r),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = first_panic {
            resume_unwind(payload);
        }
        out
    }

    /// Like [`map`](Executor::map), but converts each item's panic into
    /// `Err(message)` instead of re-raising, preserving item order.
    pub fn map_isolated<T, R, F>(&self, items: &[T], f: F) -> Vec<Result<R, String>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items, &f)
            .into_iter()
            .map(|r| r.map_err(|payload| panic_message(payload.as_ref())))
            .collect()
    }

    /// Shared driver: runs every item under `catch_unwind`, returning the
    /// raw per-item outcomes in item order.
    fn run<T, R, F>(&self, items: &[T], f: &F) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Batch/item/panic counts are `work`-class: what ran is fixed
        // by the input, not by scheduling (DESIGN.md §9). Worker and
        // steal telemetry is `ops`-class — it legitimately varies with
        // CA_THREADS and carries no determinism promise.
        ca_obs::counter!("ca_exec.batches", Work).inc();
        ca_obs::counter!("ca_exec.items", Work).add(items.len() as u64);
        let results = self.run_inner(items, f);
        let panics = results.iter().filter(|r| r.is_err()).count();
        ca_obs::counter!("ca_exec.panics", Work).add(panics as u64);
        results
    }

    fn run_inner<T, R, F>(
        &self,
        items: &[T],
        f: &F,
    ) -> Vec<Result<R, Box<dyn std::any::Any + Send>>>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len()).max(1);
        // Trace adoption: capture the caller's context once, then
        // re-establish it per item keyed by the item index — on the
        // inline path exactly as on worker threads — so the spans an
        // item opens derive identical ids at every CA_THREADS setting
        // (DESIGN.md §14).
        let fork = ca_obs::trace::fork();
        if workers == 1 {
            ca_obs::counter!("ca_exec.inline_batches", Ops).inc();
            return items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    let _trace = fork.as_ref().map(|fp| fp.adopt(i as u64));
                    catch_unwind(AssertUnwindSafe(|| f(i, item)))
                })
                .collect();
        }
        ca_obs::counter!("ca_exec.workers_spawned", Ops).add(workers as u64);
        let cursor = AtomicUsize::new(0);
        let batch_start = ca_obs::Stopwatch::start();
        let mut parts: Vec<Vec<(usize, Result<R, _>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Queue wait: spawn-to-first-pull latency, the
                        // scheduling overhead a work-pulling design pays
                        // per worker rather than per item.
                        let mut first_pull = true;
                        let mut local = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if first_pull {
                                first_pull = false;
                                ca_obs::timer!("ca_exec.queue_wait")
                                    .record_ns(batch_start.elapsed_ns());
                            }
                            if i >= items.len() {
                                break;
                            }
                            let _trace = fork.as_ref().map(|fp| fp.adopt(i as u64));
                            local.push((i, catch_unwind(AssertUnwindSafe(|| f(i, &items[i])))));
                        }
                        // Every pull after a worker's first competes on
                        // the shared cursor: count those as steals.
                        ca_obs::counter!("ca_exec.steals", Ops)
                            .add(local.len().saturating_sub(1) as u64);
                        ca_obs::histogram!(
                            "ca_exec.worker_items",
                            Ops,
                            &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024]
                        )
                        .observe(local.len() as u64);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                // Workers only unwind through catch_unwind, so a join
                // error would mean the panic payload itself panicked on
                // drop; nothing to recover there.
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        let mut slots: Vec<Option<Result<R, _>>> = (0..items.len()).map(|_| None).collect();
        for part in &mut parts {
            for (i, result) in part.drain(..) {
                // PANIC-OK: `i` is an item index the worker received from
                // this function; `slots` spans every item index.
                slots[i] = Some(result);
            }
        }
        slots
            .into_iter()
            .map(|s| s.unwrap_or_else(|| Err(Box::new("item lost by worker".to_string()) as _)))
            .collect()
    }
}

/// The `CA_THREADS` environment variable was set to something other than
/// a positive integer (see [`Executor::try_from_env`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadThreadsVar {
    /// The rejected value, verbatim.
    pub value: String,
}

impl std::fmt::Display for BadThreadsVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CA_THREADS must be a positive integer, got `{}`",
            self.value
        )
    }
}

impl std::error::Error for BadThreadsVar {}

/// Extracts a human-readable message from a panic payload (the `&str` /
/// `String` payloads `panic!` produces; anything else gets a marker).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&'static str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_item_order() {
        for threads in [1, 2, 8] {
            let exec = Executor::with_threads(threads);
            let items: Vec<usize> = (0..100).collect();
            let out = exec.map(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_isolated_converts_panics_per_item() {
        let exec = Executor::with_threads(4);
        let items: Vec<usize> = (0..20).collect();
        let out = exec.map_isolated(&items, |_, &x| {
            if x % 5 == 0 {
                panic!("boom {x}");
            }
            x
        });
        assert_eq!(out.len(), 20);
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 0 {
                assert_eq!(r.as_ref().unwrap_err(), &format!("boom {i}"));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }

    #[test]
    fn map_reraises_lowest_index_panic() {
        for threads in [1, 3] {
            let exec = Executor::with_threads(threads);
            let items: Vec<usize> = (0..32).collect();
            let caught = catch_unwind(AssertUnwindSafe(|| {
                exec.map(&items, |_, &x| {
                    if x == 7 || x == 23 {
                        panic!("panic at {x}");
                    }
                    x
                })
            }))
            .unwrap_err();
            assert_eq!(panic_message(caught.as_ref()), "panic at 7");
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let exec = Executor::with_threads(1);
        let main_thread = std::thread::current().id();
        let items = [0u8; 4];
        exec.map(&items, |_, _| {
            assert_eq!(std::thread::current().id(), main_thread);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let exec = Executor::with_threads(8);
        let out: Vec<u32> = exec.map(&[] as &[u32], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn threads_floor_is_one() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
    }

    #[test]
    fn results_outnumbering_threads_still_complete() {
        let exec = Executor::with_threads(3);
        let items: Vec<u64> = (0..1000).collect();
        let sum: u64 = exec.map(&items, |_, &x| x).into_iter().sum();
        assert_eq!(sum, 999 * 1000 / 2);
    }

    /// Serializes the `CA_THREADS` tests: the environment is process
    /// state and the test harness runs on several threads.
    fn with_env_var(value: Option<&str>, check: impl FnOnce()) {
        static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let saved = std::env::var("CA_THREADS").ok();
        match value {
            Some(v) => std::env::set_var("CA_THREADS", v),
            None => std::env::remove_var("CA_THREADS"),
        }
        let outcome = catch_unwind(AssertUnwindSafe(check));
        match saved {
            Some(v) => std::env::set_var("CA_THREADS", v),
            None => std::env::remove_var("CA_THREADS"),
        }
        if let Err(payload) = outcome {
            resume_unwind(payload);
        }
    }

    #[test]
    fn try_from_env_accepts_valid_overrides() {
        with_env_var(Some("3"), || {
            assert_eq!(Executor::try_from_env().unwrap().threads(), 3);
            assert_eq!(Executor::from_env().threads(), 3);
        });
        // Whitespace is operator noise, not an error.
        with_env_var(Some(" 2 "), || {
            assert_eq!(Executor::try_from_env().unwrap().threads(), 2);
        });
        with_env_var(None, || {
            let auto = Executor::auto().threads();
            assert_eq!(Executor::try_from_env().unwrap().threads(), auto);
            assert_eq!(Executor::from_env().threads(), auto);
        });
    }

    #[test]
    fn try_from_env_rejects_zero_and_garbage() {
        for bad in ["0", "", "eight", "-2", "1.5"] {
            with_env_var(Some(bad), || {
                let err = Executor::try_from_env().unwrap_err();
                assert_eq!(err.value, bad);
                assert_eq!(
                    err.to_string(),
                    format!("CA_THREADS must be a positive integer, got `{bad}`")
                );
            });
        }
    }

    #[test]
    fn from_env_falls_back_loudly_on_bad_values() {
        // The warning itself goes to stderr; what must hold for the
        // batch is that the executor still comes up at auto width.
        for bad in ["0", "not-a-number"] {
            with_env_var(Some(bad), || {
                assert_eq!(Executor::from_env().threads(), Executor::auto().threads());
            });
        }
    }

    /// Batch metrics land in the global `ca-obs` registry. Sibling
    /// tests run concurrently against the same registry, so this
    /// checks growth bounds, not exact deltas — the strict
    /// thread-invariance contract is enforced by the dedicated
    /// `obs_determinism` integration suite.
    #[test]
    fn batches_feed_the_metric_registry() {
        let before = ca_obs::global().snapshot();
        let items: Vec<usize> = (0..40).collect();
        let out = Executor::with_threads(4).map_isolated(&items, |_, &x| {
            if x == 3 {
                panic!("instrumented panic");
            }
            x
        });
        assert_eq!(out.iter().filter(|r| r.is_err()).count(), 1);
        let delta = ca_obs::global().snapshot().delta(&before);
        let count = |name: &str| delta.counters.get(name).map(|(_, v)| *v).unwrap_or(0);
        assert!(count("ca_exec.batches") >= 1);
        assert!(count("ca_exec.items") >= 40);
        assert!(count("ca_exec.panics") >= 1);
        assert!(count("ca_exec.workers_spawned") >= 4);
    }

    /// The executor forks the caller's trace context per item, keyed by
    /// item index: the span ids an item derives must be identical at
    /// every thread count and distinct across items.
    #[test]
    fn trace_contexts_fork_identically_across_thread_counts() {
        ca_obs::trace::set_enabled(Some(true));
        let ids_at = |threads: usize| {
            let exec = Executor::with_threads(threads);
            let _root = ca_obs::trace::root("exec-trace-test", 42, "test");
            let items: Vec<usize> = (0..32).collect();
            exec.map(&items, |_, _| ca_obs::trace::span("item").id())
        };
        let serial = ids_at(1);
        let parallel = ids_at(4);
        ca_obs::trace::set_enabled(None);
        assert_eq!(serial, parallel, "span ids must not depend on CA_THREADS");
        assert!(serial.iter().all(Option::is_some));
        let distinct: std::collections::BTreeSet<_> = serial.iter().collect();
        assert_eq!(
            distinct.len(),
            serial.len(),
            "sibling items must not collide"
        );
    }

    #[test]
    fn panic_message_extracts_both_payload_kinds() {
        let s = catch_unwind(|| panic!("literal")).unwrap_err();
        assert_eq!(panic_message(s.as_ref()), "literal");
        let owned = catch_unwind(|| panic!("{}", String::from("owned"))).unwrap_err();
        assert_eq!(panic_message(owned.as_ref()), "owned");
    }
}
