//! Switch-level transistor simulator with defect injection.
//!
//! This crate is the workspace's stand-in for the electrical (SPICE)
//! simulator of the conventional cell-aware generation flow (paper Fig. 1).
//! It simulates CMOS standard cells at the transistor (switch) level:
//!
//! - four-valued stimuli `{0, 1, R, F}` per input pin ([`Stimulus`]),
//!   covering the full `4^n` static + dynamic pattern space;
//! - steady-state solving by fixpoint over a conduction graph, with
//!   *must/may* rail reachability, strength-aware fight resolution (shorts
//!   beat channels) and charge retention on floating nodes
//!   ([`solver::CellGraph`]);
//! - first-class defect injection ([`Injection`]): terminal opens,
//!   terminal-terminal shorts and net-net shorts;
//! - detection semantics via [`DetectionPolicy`], distinguishing driven
//!   conflicts ([`Value::Xd`]) from floating unknowns ([`Value::Xf`]) so
//!   that stuck-open defects require two-pattern tests, exactly as in
//!   cell-aware practice.
//!
//! # Example: detecting a stuck-open defect
//!
//! ```
//! use ca_netlist::{spice, Terminal};
//! use ca_sim::{detection_row, DetectionPolicy, Injection, Stimulus};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cell = spice::parse_cell(
//!     ".SUBCKT NAND2 A B Z VDD VSS\n\
//!      MP0 Z A VDD VDD pch\nMP1 Z B VDD VDD pch\n\
//!      MN0 Z A net0 VSS nch\nMN1 net0 B VSS VSS nch\n.ENDS",
//! )?;
//! let open = Injection::Open {
//!     transistor: cell.find_transistor("MN0").ok_or("missing")?,
//!     terminal: Terminal::Drain,
//! };
//! let stimuli = Stimulus::all(2); // 16 stimuli: 4 static + 12 dynamic
//! let row = detection_row(&cell, open, &stimuli, DetectionPolicy::default());
//! assert!(row.iter().any(|&detected| detected)); // dynamically detectable
//! # Ok(())
//! # }
//! ```

pub mod budget;
pub mod injection;
pub mod kernel;
pub mod packed;
pub mod simulator;
pub mod solver;
pub mod values;

pub use budget::{BudgetClock, SimBudget, SimError};
pub use injection::Injection;
pub use kernel::CellKernel;
pub use packed::{
    packed_enabled, set_packed_override, BlockResult, LaneOutcome, PackedSim, PackedStimulus,
    PackedValue, StimulusBlock,
};
pub use simulator::{detection_row, detection_row_scalar, DetectionPolicy, SimResult, Simulator};
pub use solver::SolveOutcome;
pub use values::{Stimulus, Value, Wave};
