//! Defect injection descriptors.
//!
//! An [`Injection`] tells the simulator how to perturb a cell's conduction
//! graph. The descriptors mirror the paper's defect universe (§IV):
//! intra-transistor terminal opens and terminal-terminal shorts, plus
//! inter-transistor net-net shorts (representable in the CA-matrix but not
//! evaluated in the paper's experiments).

use ca_netlist::{NetId, Terminal, TransistorId};
use std::fmt;

/// A single cell-internal defect to inject, or nothing (golden).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Injection {
    /// Defect-free simulation.
    None,
    /// Open on one terminal of a transistor.
    ///
    /// A drain/source open removes the channel edge; a gate open leaves the
    /// device permanently non-conducting (floating-gate devices are modelled
    /// as stuck open, the standard cell-aware abstraction).
    Open {
        /// Affected device.
        transistor: TransistorId,
        /// Opened terminal.
        terminal: Terminal,
    },
    /// Short between two terminals of one transistor.
    ///
    /// Drain-source shorts bridge the channel (stuck-on); gate-drain and
    /// gate-source shorts bridge the gate net into the channel graph.
    Short {
        /// Affected device.
        transistor: TransistorId,
        /// First shorted terminal.
        a: Terminal,
        /// Second shorted terminal.
        b: Terminal,
    },
    /// Short between two arbitrary nets (inter-transistor defect).
    NetShort {
        /// First net.
        a: NetId,
        /// Second net.
        b: NetId,
    },
}

impl Injection {
    /// Whether this is the defect-free case.
    pub fn is_none(self) -> bool {
        matches!(self, Injection::None)
    }
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Injection::None => write!(f, "free"),
            Injection::Open {
                transistor,
                terminal,
            } => write!(f, "open({transistor}.{terminal})"),
            Injection::Short { transistor, a, b } => {
                write!(f, "short({transistor}.{a}-{b})")
            }
            Injection::NetShort { a, b } => write!(f, "short({a}-{b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let open = Injection::Open {
            transistor: TransistorId(3),
            terminal: Terminal::Drain,
        };
        assert_eq!(open.to_string(), "open(mos#3.D)");
        assert_eq!(Injection::None.to_string(), "free");
        assert!(Injection::None.is_none());
        assert!(!open.is_none());
    }
}
