//! Compiled cell kernels: the netlist graph flattened, once per cell,
//! into struct-of-arrays tables the packed solver's tight loops iterate
//! over (DESIGN.md §12).
//!
//! [`CellGraph`](crate::solver::CellGraph) re-walks `Cell`'s pointer-rich
//! transistor objects on every solve; a [`CellKernel`] pays that walk
//! once and stores only the integers the inner loops need — per
//! transistor the gate/channel net indices and polarity, plus the driver
//! nets. The compiler *declines* pathological cells (see
//! [`CellKernel::compile`]) so callers always have the interpreted
//! scalar path to fall back to; compile and decline counts are reported
//! as `ca_sim.kernel.{compiled,fallback}`.

use ca_netlist::{Cell, MosKind, Terminal};

/// Largest net count the kernel compiler accepts. Beyond this the
/// packed solver's dense per-net planes stop paying for themselves and
/// the caller falls back to the interpreted scalar path.
pub const MAX_KERNEL_NETS: usize = 512;

/// Largest transistor count the kernel compiler accepts.
pub const MAX_KERNEL_TRANSISTORS: usize = 2048;

/// One cell's channel graph compiled to flat struct-of-arrays tables.
///
/// All nets are plain `usize` indices into the cell's net list; all
/// per-transistor tables are parallel arrays indexed by transistor id.
#[derive(Debug, Clone)]
pub struct CellKernel {
    n_nets: usize,
    n_inputs: usize,
    power: usize,
    ground: usize,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    // Per-transistor SoA: gate net, channel ends, polarity, bulk (for
    // terminal resolution of injected shorts).
    t_gate: Vec<u32>,
    t_drain: Vec<u32>,
    t_source: Vec<u32>,
    t_bulk: Vec<u32>,
    t_pmos: Vec<bool>,
}

impl CellKernel {
    /// Compiles `cell` into a kernel, or declines (`None`) when the cell
    /// is outside the compiler's envelope ([`MAX_KERNEL_NETS`] /
    /// [`MAX_KERNEL_TRANSISTORS`]). Every decision bumps
    /// `ca_sim.kernel.compiled` or `ca_sim.kernel.fallback`.
    pub fn compile(cell: &Cell) -> Option<CellKernel> {
        let n_nets = cell.nets().len();
        let n_transistors = cell.num_transistors();
        if n_nets > MAX_KERNEL_NETS || n_transistors > MAX_KERNEL_TRANSISTORS {
            ca_obs::counter!("ca_sim.kernel.fallback", Work).inc();
            return None;
        }
        let mut t_gate = Vec::with_capacity(n_transistors);
        let mut t_drain = Vec::with_capacity(n_transistors);
        let mut t_source = Vec::with_capacity(n_transistors);
        let mut t_bulk = Vec::with_capacity(n_transistors);
        let mut t_pmos = Vec::with_capacity(n_transistors);
        for (_, t) in cell.transistor_ids() {
            t_gate.push(t.gate().index() as u32);
            t_drain.push(t.drain().index() as u32);
            t_source.push(t.source().index() as u32);
            t_bulk.push(t.bulk().index() as u32);
            t_pmos.push(t.kind() == MosKind::Pmos);
        }
        ca_obs::counter!("ca_sim.kernel.compiled", Work).inc();
        Some(CellKernel {
            n_nets,
            n_inputs: cell.num_inputs(),
            power: cell.power().index(),
            ground: cell.ground().index(),
            inputs: cell.inputs().iter().map(|n| n.index()).collect(),
            outputs: cell.outputs().iter().map(|n| n.index()).collect(),
            t_gate,
            t_drain,
            t_source,
            t_bulk,
            t_pmos,
        })
    }

    /// Number of nets.
    pub fn n_nets(&self) -> usize {
        self.n_nets
    }

    /// Number of primary inputs.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of transistors.
    pub fn n_transistors(&self) -> usize {
        self.t_gate.len()
    }

    /// Power-rail net index.
    pub fn power(&self) -> usize {
        self.power
    }

    /// Ground-rail net index.
    pub fn ground(&self) -> usize {
        self.ground
    }

    /// Primary-input net indices, pin order.
    pub fn inputs(&self) -> &[usize] {
        &self.inputs
    }

    /// Primary-output net indices.
    pub fn outputs(&self) -> &[usize] {
        &self.outputs
    }

    /// Gate net of transistor `t`.
    pub fn gate(&self, t: usize) -> usize {
        self.t_gate[t] as usize
    }

    /// Drain net of transistor `t`.
    pub fn drain(&self, t: usize) -> usize {
        self.t_drain[t] as usize
    }

    /// Source net of transistor `t`.
    pub fn source(&self, t: usize) -> usize {
        self.t_source[t] as usize
    }

    /// Whether transistor `t` is a PMOS.
    pub fn is_pmos(&self, t: usize) -> bool {
        self.t_pmos[t]
    }

    /// Net index of `terminal` on transistor `t` (for resolving injected
    /// terminal-terminal shorts).
    pub fn terminal(&self, t: usize, terminal: Terminal) -> usize {
        (match terminal {
            Terminal::Drain => self.t_drain[t],
            Terminal::Gate => self.t_gate[t],
            Terminal::Source => self.t_source[t],
            Terminal::Bulk => self.t_bulk[t],
        }) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn compiles_small_cells() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let kernel = CellKernel::compile(&cell).expect("NAND2 compiles");
        assert_eq!(kernel.n_nets(), cell.nets().len());
        assert_eq!(kernel.n_transistors(), 4);
        assert_eq!(kernel.n_inputs(), 2);
        assert_eq!(kernel.power(), cell.power().index());
        assert_eq!(kernel.ground(), cell.ground().index());
        assert_eq!(kernel.outputs(), &[cell.output().index()]);
        let mn0 = cell.find_transistor("MN0").unwrap().index();
        assert!(!kernel.is_pmos(mn0));
        assert_eq!(
            kernel.terminal(mn0, Terminal::Gate),
            cell.transistor(cell.find_transistor("MN0").unwrap())
                .gate()
                .index()
        );
    }

    #[test]
    fn flat_tables_mirror_the_cell() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        for (id, t) in cell.transistor_ids() {
            let i = id.index();
            assert_eq!(kernel.gate(i), t.gate().index());
            assert_eq!(kernel.drain(i), t.drain().index());
            assert_eq!(kernel.source(i), t.source().index());
            assert_eq!(kernel.is_pmos(i), t.kind() == MosKind::Pmos);
        }
    }
}
