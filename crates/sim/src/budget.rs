//! Resource budgets for simulation and characterization.
//!
//! A [`SimBudget`] caps the work a characterization run may spend on one
//! cell: solver fixpoint iterations, stimuli simulated, defects injected,
//! and (optionally) wall-clock time. Budgets exist so that a single
//! pathological cell — an oscillator, a huge pattern space, a defect
//! universe that explodes combinatorially — cannot stall a whole library
//! run: exhaustion is reported as a first-class outcome instead of
//! looping forever or silently forcing `X`.
//!
//! The default budget is unlimited, which preserves the historical
//! behaviour of every existing entry point.

use ca_obs::Deadline;
use std::time::Duration;

/// Resource limits for simulating and characterizing one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimBudget {
    /// Cap on solver fixpoint iterations per phase. `None` uses the
    /// natural bound (`2 * nets + 8`), which is large enough that
    /// non-convergence implies true oscillation.
    pub max_solver_iterations: Option<usize>,
    /// Cap on the number of stimuli simulated per defect. Exceeding it
    /// truncates the stimulus set and marks the result degraded.
    pub max_stimuli: Option<usize>,
    /// Cap on the number of defects characterized per cell. Exceeding it
    /// truncates the defect universe and marks the result degraded.
    pub max_defects: Option<usize>,
    /// Wall-clock deadline for the whole per-cell run. Checked *between*
    /// stimuli, never mid-solve, so results stay deterministic in shape:
    /// a run either finishes or reports `BudgetExceeded`.
    pub wall_clock: Option<Duration>,
}

impl Default for SimBudget {
    fn default() -> SimBudget {
        SimBudget::unlimited()
    }
}

impl SimBudget {
    /// No limits: the historical behaviour of the flow.
    pub const fn unlimited() -> SimBudget {
        SimBudget {
            max_solver_iterations: None,
            max_stimuli: None,
            max_defects: None,
            wall_clock: None,
        }
    }

    /// Starts the wall clock for one per-cell run.
    pub fn start(&self) -> BudgetClock {
        BudgetClock {
            deadline: self.wall_clock.map_or(Deadline::never(), Deadline::after),
        }
    }

    /// Applies `max_stimuli` to a count, returning the number to keep.
    /// An actual truncation — the budget spend that marks a result
    /// degraded — is counted in the metric registry.
    pub fn clamp_stimuli(&self, n: usize) -> usize {
        let kept = self.max_stimuli.map_or(n, |cap| n.min(cap));
        if kept < n {
            ca_obs::counter!("ca_sim.budget.stimuli_clamped", Work).inc();
            ca_obs::counter!("ca_sim.budget.stimuli_dropped", Work).add((n - kept) as u64);
        }
        kept
    }

    /// Applies `max_defects` to a count, returning the number to keep.
    /// Truncations are counted like [`SimBudget::clamp_stimuli`].
    pub fn clamp_defects(&self, n: usize) -> usize {
        let kept = self.max_defects.map_or(n, |cap| n.min(cap));
        if kept < n {
            ca_obs::counter!("ca_sim.budget.defects_clamped", Work).inc();
            ca_obs::counter!("ca_sim.budget.defects_dropped", Work).add((n - kept) as u64);
        }
        kept
    }
}

/// A running wall-clock deadline created by [`SimBudget::start`].
#[derive(Debug, Clone, Copy)]
pub struct BudgetClock {
    deadline: Deadline,
}

impl BudgetClock {
    /// Whether the deadline has passed. Always `false` for unlimited
    /// budgets. Expiries are wall-clock events, so their counter is
    /// `ops`-class: no determinism promise.
    pub fn expired(&self) -> bool {
        let expired = self.deadline.expired();
        if expired {
            ca_obs::counter!("ca_sim.budget.wall_clock_expired", Ops).inc();
        }
        expired
    }
}

/// Error from a budgeted or checked simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The solver failed to reach a fixpoint within the natural iteration
    /// bound: the cell genuinely oscillates on this stimulus.
    Oscillated {
        /// Names of the nets that were still changing.
        nets: Vec<String>,
    },
    /// A resource budget was exhausted before the run finished.
    BudgetExceeded {
        /// Which budget ran out (`"solver iterations"`, `"wall clock"`, …).
        resource: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Oscillated { nets } => {
                write!(f, "solver oscillated on nets [{}]", nets.join(", "))
            }
            SimError::BudgetExceeded { resource } => {
                write!(f, "simulation budget exceeded: {resource}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_expires() {
        let clock = SimBudget::unlimited().start();
        assert!(!clock.expired());
    }

    #[test]
    fn zero_wall_clock_expires_immediately() {
        let budget = SimBudget {
            wall_clock: Some(Duration::ZERO),
            ..SimBudget::unlimited()
        };
        assert!(budget.start().expired());
    }

    #[test]
    fn clamps_apply_only_when_set() {
        let mut budget = SimBudget::unlimited();
        assert_eq!(budget.clamp_stimuli(100), 100);
        assert_eq!(budget.clamp_defects(100), 100);
        budget.max_stimuli = Some(8);
        budget.max_defects = Some(3);
        assert_eq!(budget.clamp_stimuli(100), 8);
        assert_eq!(budget.clamp_stimuli(5), 5);
        assert_eq!(budget.clamp_defects(100), 3);
    }

    #[test]
    fn errors_display() {
        let e = SimError::Oscillated {
            nets: vec!["Z".into(), "net0".into()],
        };
        assert_eq!(e.to_string(), "solver oscillated on nets [Z, net0]");
        let e = SimError::BudgetExceeded {
            resource: "wall clock",
        };
        assert_eq!(e.to_string(), "simulation budget exceeded: wall clock");
    }
}
