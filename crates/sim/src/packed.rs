//! Bit-parallel pattern-packed simulation (PPSFP, DESIGN.md §12).
//!
//! The scalar solver evaluates one `(stimulus, defect)` pair per
//! fixpoint solve. This module packs **64 stimuli into one solve**: a
//! net's four-valued [`Value`] is encoded as two bitplanes
//! ([`PackedValue`]), one `u64` bit per stimulus *lane*, and every
//! solver operation — conduction, rail reachability, fight resolution,
//! convergence detection, oscillation forcing — becomes a handful of
//! word-wide boolean ops that act on all 64 lanes at once. Per lane,
//! the trajectory is *exactly* the scalar solver's: no operation mixes
//! bits across lanes, so convergence, oscillation and budget semantics
//! are preserved lane-by-lane and the results are bit-identical to
//! [`CellGraph::solve_phase_checked`](crate::solver::CellGraph).
//!
//! The scalar solver's four Dijkstra passes are replaced by a
//! level-synchronous reachability sweep: `R[d]` masks ("distance ≤ d"
//! per lane) grow level by level (rails seed level 0, input drivers
//! level 1, conducting channels relax at weight 2, hard shorts close at
//! weight 0), and the strict `must < may` strength comparison is
//! accumulated as `∃d: must ≤ d < may` — see DESIGN.md §12 for the
//! correctness argument.
//!
//! On top sits single-fault cone restriction for stuck-open defects:
//! the golden solve records, per transistor, the lanes where the device
//! never conducted in any iteration; for those lanes an `Open` on that
//! device provably cannot change the trajectory, so the faulty solve
//! skips them and reuses the cached golden bitplanes
//! (`ca_sim.packed.cone_skips`).
//!
//! The packed path is selected by the `CA_PACKED` environment switch
//! (default **on**; `0`/`off`/`false` disable) read by
//! [`packed_enabled`], with a process-local programmatic override for
//! benches and tests ([`set_packed_override`]).

use crate::injection::Injection;
use crate::kernel::CellKernel;
use crate::simulator::DetectionPolicy;
use crate::solver::CellGraph;
use crate::values::{Stimulus, Value};
use ca_netlist::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

/// Number of stimulus lanes per packed word.
pub const LANES: usize = 64;

/// 64 lanes of a four-valued [`Value`], encoded as two bitplanes:
/// `hi` is set for `{One, Xd}`, `x` is set for `{Xf, Xd}`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackedValue {
    /// Lanes whose value is `One` or `Xd`.
    pub hi: u64,
    /// Lanes whose value is `Xf` or `Xd`.
    pub x: u64,
}

impl PackedValue {
    /// The same value in every lane.
    pub fn splat(v: Value) -> PackedValue {
        match v {
            Value::Zero => PackedValue { hi: 0, x: 0 },
            Value::One => PackedValue { hi: !0, x: 0 },
            Value::Xf => PackedValue { hi: 0, x: !0 },
            Value::Xd => PackedValue { hi: !0, x: !0 },
        }
    }

    /// The value in `lane`.
    pub fn get(self, lane: usize) -> Value {
        let hi = (self.hi >> lane) & 1 == 1;
        let x = (self.x >> lane) & 1 == 1;
        match (hi, x) {
            (false, false) => Value::Zero,
            (true, false) => Value::One,
            (false, true) => Value::Xf,
            (true, true) => Value::Xd,
        }
    }

    /// Sets `lane` to `v`.
    pub fn set(&mut self, lane: usize, v: Value) {
        let bit = 1u64 << lane;
        let s = PackedValue::splat(v);
        self.hi = (self.hi & !bit) | (s.hi & bit);
        self.x = (self.x & !bit) | (s.x & bit);
    }

    /// Lane-wise [`Value::retained`]: fights decay to floating unknowns
    /// (`Xd → Xf`), binaries keep their level.
    pub fn retained(self) -> PackedValue {
        PackedValue {
            hi: self.hi & !self.x,
            x: self.x,
        }
    }
}

/// Up to 64 stimuli transposed into per-pin lane masks.
#[derive(Debug, Clone)]
pub struct StimulusBlock {
    /// Mask of occupied lanes (lane `i` carries stimulus `base + i`).
    pub lanes: u64,
    /// Lanes whose stimulus has a transition (two-phase lanes).
    pub dynamic: u64,
    /// Per input pin: lanes where the pin is high in phase 1.
    pub initial: Vec<u64>,
    /// Per input pin: lanes where the pin is high in phase 2.
    pub final_inputs: Vec<u64>,
}

impl StimulusBlock {
    /// Number of occupied lanes.
    pub fn occupancy(&self) -> usize {
        self.lanes.count_ones() as usize
    }
}

/// A stimulus list transposed into [`StimulusBlock`]s of 64 lanes.
#[derive(Debug, Clone)]
pub struct PackedStimulus {
    n_inputs: usize,
    blocks: Vec<StimulusBlock>,
}

impl PackedStimulus {
    /// Transposes `stimuli` into blocks of up to 64 lanes, in order:
    /// stimulus `i` occupies lane `i % 64` of block `i / 64`.
    ///
    /// # Panics
    ///
    /// Panics if any stimulus pin count differs from `n_inputs`.
    pub fn pack(n_inputs: usize, stimuli: &[Stimulus]) -> PackedStimulus {
        let mut blocks = Vec::with_capacity(stimuli.len().div_ceil(LANES));
        for chunk in stimuli.chunks(LANES) {
            let mut block = StimulusBlock {
                lanes: 0,
                dynamic: 0,
                initial: vec![0; n_inputs],
                final_inputs: vec![0; n_inputs],
            };
            for (lane, stimulus) in chunk.iter().enumerate() {
                assert_eq!(
                    stimulus.num_pins(),
                    n_inputs,
                    "stimulus pin count mismatch in packed block"
                );
                let bit = 1u64 << lane;
                block.lanes |= bit;
                if !stimulus.is_static() {
                    block.dynamic |= bit;
                }
                for (pin, wave) in stimulus.waves().iter().enumerate() {
                    if wave.initial() {
                        block.initial[pin] |= bit;
                    }
                    if wave.final_value() {
                        block.final_inputs[pin] |= bit;
                    }
                }
            }
            blocks.push(block);
        }
        PackedStimulus { n_inputs, blocks }
    }

    /// The blocks, in stimulus order.
    pub fn blocks(&self) -> &[StimulusBlock] {
        &self.blocks
    }

    /// Input pin count the blocks were packed for.
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }
}

/// How one lane's phase solve ended — the packed mirror of
/// [`SolveOutcome`](crate::solver::SolveOutcome)'s three classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneOutcome {
    /// The lane reached a fixpoint.
    Converged,
    /// The natural iteration bound ran out: true oscillation.
    Oscillated,
    /// A reduced iteration budget ran out before the natural bound.
    BudgetExceeded,
}

/// Per-lane outcome masks of one packed phase solve.
#[derive(Debug, Clone, Default)]
pub struct PhaseOutcomes {
    /// Lanes that reached a fixpoint.
    pub converged: u64,
    /// Lanes that exhausted the natural iteration bound.
    pub oscillated: u64,
    /// Lanes that exhausted a reduced (budget) iteration cap.
    pub budget_exceeded: u64,
    /// Per net: lanes where the net was still changing at the cap (the
    /// nets scalar `SolveOutcome::Oscillated` reports, X-forced).
    pub unstable: Vec<u64>,
    /// Per transistor: lanes where the device's conduction was `Off` in
    /// *every* executed iteration — the activation mask cone restriction
    /// keys on.
    pub off_all: Vec<u64>,
}

impl PhaseOutcomes {
    /// The outcome class of `lane`.
    pub fn lane(&self, lane: usize) -> LaneOutcome {
        let bit = 1u64 << lane;
        if self.oscillated & bit != 0 {
            LaneOutcome::Oscillated
        } else if self.budget_exceeded & bit != 0 {
            LaneOutcome::BudgetExceeded
        } else {
            LaneOutcome::Converged
        }
    }
}

/// Result of running one [`StimulusBlock`] through both phases.
#[derive(Debug, Clone)]
pub struct BlockResult {
    /// Mask of lanes the block occupied.
    pub lanes: u64,
    /// Lanes that ran a second phase.
    pub dynamic: u64,
    /// Per net: steady-state planes at the end of phase 1.
    pub phase1: Vec<PackedValue>,
    /// Per net: phase-1 planes after charge retention (`Xd → Xf`) — the
    /// stored charge phase 2 starts from.
    pub retained1: Vec<PackedValue>,
    /// Per net: final planes (phase 1 for static lanes, phase 2 for
    /// dynamic ones).
    pub final_values: Vec<PackedValue>,
    /// Phase-1 outcome masks.
    pub p1: PhaseOutcomes,
    /// Phase-2 outcome masks (meaningful on `dynamic` lanes only).
    pub p2: PhaseOutcomes,
}

impl BlockResult {
    /// Value of `net` in `lane` at the end of phase `phase` (0-based;
    /// phase 1 of a static lane is also its final phase).
    pub fn value(&self, phase: usize, net: usize, lane: usize) -> Value {
        match phase {
            0 => self.phase1[net].get(lane),
            1 => self.final_values[net].get(lane),
            _ => panic!("phase {phase} out of range"),
        }
    }

    /// One lane's per-phase net values, in [`SimResult`] shape (one
    /// phase for static lanes, two for dynamic ones).
    ///
    /// [`SimResult`]: crate::simulator::SimResult
    pub fn lane_phases(&self, lane: usize) -> Vec<Vec<Value>> {
        let unpack = |planes: &[PackedValue]| planes.iter().map(|p| p.get(lane)).collect();
        if self.dynamic & (1u64 << lane) != 0 {
            vec![unpack(&self.phase1), unpack(&self.final_values)]
        } else {
            vec![unpack(&self.phase1)]
        }
    }
}

// Reachability family indices: must/may × level.
const M1: usize = 0;
const M0: usize = 1;
const Y1: usize = 2;
const Y0: usize = 3;

/// Scratch buffers for the level-synchronous reachability sweep,
/// allocated once per phase solve and reused across fixpoint iterations.
struct DistScratch {
    cur: [Vec<u64>; 4],
    prev: [Vec<u64>; 4],
    prev2: [Vec<u64>; 4],
    win1: Vec<u64>,
    win0: Vec<u64>,
}

impl DistScratch {
    fn new(n_nets: usize) -> DistScratch {
        let z = || {
            [
                vec![0; n_nets],
                vec![0; n_nets],
                vec![0; n_nets],
                vec![0; n_nets],
            ]
        };
        DistScratch {
            cur: z(),
            prev: z(),
            prev2: z(),
            win1: vec![0; n_nets],
            win0: vec![0; n_nets],
        }
    }

    fn reset(&mut self) {
        for f in 0..4 {
            self.cur[f].fill(0);
            self.prev[f].fill(0);
            self.prev2[f].fill(0);
        }
        self.win1.fill(0);
        self.win0.fill(0);
    }
}

/// Bucket bounds for the iterations-to-convergence histogram, shared
/// with the scalar solver so both paths feed one distribution.
pub(crate) const ITER_HIST_BOUNDS: &[u64] = &[1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];

/// The packed evaluator for one cell kernel with one injected defect:
/// the word-parallel counterpart of
/// [`Simulator`](crate::simulator::Simulator).
#[derive(Debug, Clone)]
pub struct PackedSim<'k> {
    kernel: &'k CellKernel,
    forced_off: Vec<bool>,
    /// Injected hard short (weight-0 edge), if any.
    short_edge: Option<(usize, usize)>,
    max_iterations: usize,
}

impl<'k> PackedSim<'k> {
    /// Builds the evaluator for `kernel` with `injection` applied and an
    /// optional solver iteration cap (floored at 1, mirroring
    /// [`CellGraph::with_max_iterations`]).
    pub fn new(
        kernel: &'k CellKernel,
        injection: Injection,
        max_iterations: Option<usize>,
    ) -> PackedSim<'k> {
        let mut forced_off = vec![false; kernel.n_transistors()];
        let mut short_edge = None;
        match injection {
            Injection::None => {}
            Injection::Open { transistor, .. } => forced_off[transistor.index()] = true,
            Injection::Short { transistor, a, b } => {
                let t = transistor.index();
                short_edge = Some((kernel.terminal(t, a), kernel.terminal(t, b)));
            }
            Injection::NetShort { a, b } => short_edge = Some((a.index(), b.index())),
        }
        let natural = CellGraph::natural_iterations(kernel.n_nets());
        PackedSim {
            kernel,
            forced_off,
            short_edge,
            max_iterations: max_iterations.map_or(natural, |l| l.max(1)),
        }
    }

    /// The solver iteration cap in force.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Runs `block` through both phases from an unknown initial state —
    /// the packed counterpart of [`Simulator::run`] for all lanes at
    /// once, with identical per-lane values and outcome classes.
    ///
    /// [`Simulator::run`]: crate::simulator::Simulator::run
    pub fn run_block(&self, block: &StimulusBlock) -> BlockResult {
        ca_obs::counter!("ca_sim.packed.blocks", Work).inc();
        ca_obs::counter!("ca_sim.packed.lanes", Work).add(u64::from(block.lanes.count_ones()));
        let n = self.kernel.n_nets();
        let fresh = vec![PackedValue::splat(Value::Xf); n];
        let (phase1, p1) = self.solve_phase(&block.initial, &fresh, block.lanes);
        let retained1: Vec<PackedValue> = phase1.iter().map(|p| p.retained()).collect();
        let (final_values, p2) = if block.dynamic != 0 {
            let (mut p2v, p2) = self.solve_phase(&block.final_inputs, &retained1, block.dynamic);
            // Static lanes end at phase 1; only dynamic lanes take the
            // phase-2 planes.
            for (v2, v1) in p2v.iter_mut().zip(&phase1) {
                v2.hi = (v1.hi & !block.dynamic) | (v2.hi & block.dynamic);
                v2.x = (v1.x & !block.dynamic) | (v2.x & block.dynamic);
            }
            (p2v, p2)
        } else {
            (phase1.clone(), PhaseOutcomes::default())
        };
        BlockResult {
            lanes: block.lanes,
            dynamic: block.dynamic,
            phase1,
            retained1,
            final_values,
            p1,
            p2,
        }
    }

    /// Like [`PackedSim::run_block`], but with single-fault cone
    /// restriction against a cached golden result: when this evaluator
    /// injects `Open` on `open_transistor` and the golden solve proves
    /// the device never conducted in a lane (its
    /// [`PhaseOutcomes::off_all`] bit), that lane's faulty trajectory is
    /// identical to the golden one, so the solve skips it and reuses the
    /// golden bitplanes (counted as `ca_sim.packed.cone_skips`).
    ///
    /// `golden` must be the defect-free result of the *same* block.
    pub fn run_block_against(
        &self,
        block: &StimulusBlock,
        golden: &BlockResult,
        open_transistor: Option<usize>,
    ) -> BlockResult {
        let Some(t) = open_transistor else {
            return self.run_block(block);
        };
        let n = self.kernel.n_nets();
        let skip1 = golden.p1.off_all[t] & block.lanes;
        let solve1 = block.lanes & !skip1;
        ca_obs::counter!("ca_sim.packed.cone_skips", Work).add(u64::from(skip1.count_ones()));
        ca_obs::counter!("ca_sim.packed.blocks", Work).inc();
        ca_obs::counter!("ca_sim.packed.lanes", Work).add(u64::from(solve1.count_ones()));
        let fresh = vec![PackedValue::splat(Value::Xf); n];
        let (mut phase1, mut p1) = if solve1 != 0 {
            self.solve_phase(&block.initial, &fresh, solve1)
        } else {
            (fresh, empty_outcomes(self.kernel))
        };
        // Skipped lanes reuse the golden planes and inherit the golden
        // outcome masks (the trajectories are identical by construction).
        merge_planes(&mut phase1, &golden.phase1, skip1);
        merge_outcomes(&mut p1, &golden.p1, skip1);
        let retained1: Vec<PackedValue> = phase1.iter().map(|p| p.retained()).collect();

        // Phase 2 can be skipped where the stored charge entering it is
        // identical to the golden one *and* the device never conducted
        // in the golden phase 2.
        let mut same_retained = !0u64;
        for (f, g) in retained1.iter().zip(&golden.retained1) {
            same_retained &= !((f.hi ^ g.hi) | (f.x ^ g.x));
        }
        let skip2 = block.dynamic & same_retained & golden.p2.off_all.get(t).copied().unwrap_or(0);
        let solve2 = block.dynamic & !skip2;
        ca_obs::counter!("ca_sim.packed.cone_skips", Work).add(u64::from(skip2.count_ones()));
        let (final_values, p2) = if block.dynamic != 0 {
            let (mut p2v, mut p2) = if solve2 != 0 {
                self.solve_phase(&block.final_inputs, &retained1, solve2)
            } else {
                (retained1.clone(), empty_outcomes(self.kernel))
            };
            merge_planes(&mut p2v, &golden.final_values, skip2);
            merge_outcomes(&mut p2, &golden.p2, skip2);
            for (v2, v1) in p2v.iter_mut().zip(&phase1) {
                v2.hi = (v1.hi & !block.dynamic) | (v2.hi & block.dynamic);
                v2.x = (v1.x & !block.dynamic) | (v2.x & block.dynamic);
            }
            (p2v, p2)
        } else {
            (phase1.clone(), PhaseOutcomes::default())
        };
        BlockResult {
            lanes: block.lanes,
            dynamic: block.dynamic,
            phase1,
            retained1,
            final_values,
            p1,
            p2,
        }
    }

    /// Solves one phase for the lanes in `solve`, replicating
    /// [`CellGraph::solve_phase_checked`] lane-by-lane: same seeding,
    /// same per-iteration update, same convergence test, same
    /// oscillation forcing and iteration accounting.
    ///
    /// [`CellGraph::solve_phase_checked`]: crate::solver::CellGraph::solve_phase_checked
    fn solve_phase(
        &self,
        inputs_hi: &[u64],
        stored: &[PackedValue],
        solve: u64,
    ) -> (Vec<PackedValue>, PhaseOutcomes) {
        let kernel = self.kernel;
        let n = kernel.n_nets();
        let n_t = kernel.n_transistors();
        ca_obs::counter!("ca_sim.solver.solves", Work).add(u64::from(solve.count_ones()));

        let mut values = stored.to_vec();
        // Seed drivers so the first conduction pass sees them, exactly
        // like the scalar `apply_drivers`.
        values[kernel.power()] = PackedValue::splat(Value::One);
        values[kernel.ground()] = PackedValue::splat(Value::Zero);
        for (pin, &net) in kernel.inputs().iter().enumerate() {
            values[net] = PackedValue {
                hi: inputs_hi[pin],
                x: 0,
            };
        }

        let mut outcomes = empty_outcomes(kernel);
        let mut scratch = DistScratch::new(n);
        let mut on = vec![0u64; n_t];
        let mut unknown = vec![0u64; n_t];
        let mut next = vec![PackedValue::default(); n];
        let mut diff_prev = vec![0u64; n];
        let mut diff_now = vec![0u64; n];
        let mut active = solve;
        let mut iters = [0u32; LANES];

        for iteration in 0..self.max_iterations {
            ca_obs::counter!("ca_sim.solver.iterations", Work).add(u64::from(active.count_ones()));
            let mut m = active;
            while m != 0 {
                iters[m.trailing_zeros() as usize] += 1;
                m &= m - 1;
            }
            // Conduction from current net values (lane-wise).
            for t in 0..n_t {
                if self.forced_off[t] {
                    on[t] = 0;
                    unknown[t] = 0;
                    outcomes.off_all[t] &= !0;
                    continue;
                }
                let gate = values[kernel.gate(t)];
                let binary = !gate.x;
                let (t_on, t_off) = if kernel.is_pmos(t) {
                    (!gate.hi & binary, gate.hi & binary)
                } else {
                    (gate.hi & binary, !gate.hi & binary)
                };
                on[t] = t_on;
                unknown[t] = gate.x;
                outcomes.off_all[t] &= t_off;
            }
            self.net_values(&mut scratch, &on, &unknown, inputs_hi, stored, &mut next);
            // Lane-wise convergence: a lane converges when no net's
            // planes changed in it.
            let mut changed = 0u64;
            for i in 0..n {
                let d = (values[i].hi ^ next[i].hi) | (values[i].x ^ next[i].x);
                diff_now[i] = d;
                changed |= d;
            }
            let newly = active & !changed;
            if newly != 0 {
                outcomes.converged |= newly;
                let hist = ca_obs::histogram!(
                    "ca_sim.solver.iterations_to_convergence",
                    Work,
                    ITER_HIST_BOUNDS
                );
                let mut m = newly;
                while m != 0 {
                    hist.observe(u64::from(iters[m.trailing_zeros() as usize]));
                    m &= m - 1;
                }
            }
            active &= changed;
            if active == 0 {
                values.copy_from_slice(&next);
                break;
            }
            if iteration + 1 == self.max_iterations {
                // Cap hit with lanes still changing: force the nets that
                // were unstable in the *previous* iterate to Xd, exactly
                // like the scalar solver (`previous[i] != values[i]`).
                for i in 0..n {
                    let m = diff_prev[i] & active;
                    if m != 0 {
                        next[i].hi |= m;
                        next[i].x |= m;
                        outcomes.unstable[i] = m;
                    }
                }
                let natural = CellGraph::natural_iterations(n);
                if self.max_iterations < natural {
                    ca_obs::counter!("ca_sim.solver.budget_exceeded", Work)
                        .add(u64::from(active.count_ones()));
                    outcomes.budget_exceeded = active;
                } else {
                    ca_obs::counter!("ca_sim.solver.oscillations", Work)
                        .add(u64::from(active.count_ones()));
                    outcomes.oscillated = active;
                }
                values.copy_from_slice(&next);
                break;
            }
            std::mem::swap(&mut diff_prev, &mut diff_now);
            values.copy_from_slice(&next);
        }
        (values, outcomes)
    }

    /// Word-parallel counterpart of the scalar `net_values`: four
    /// level-synchronous reachability sweeps (must/may × 1/0) with
    /// strict-strength win accumulation, then the value-composition
    /// rules, written into `out` for all lanes.
    fn net_values(
        &self,
        scratch: &mut DistScratch,
        on: &[u64],
        unknown: &[u64],
        inputs_hi: &[u64],
        stored: &[PackedValue],
        out: &mut [PackedValue],
    ) {
        let kernel = self.kernel;
        let n = kernel.n_nets();
        scratch.reset();
        // Max finite distance: a shortest path uses at most n-1 channel
        // edges (weight 2) from a seed at distance ≤ 1.
        let dmax = 2 * n + 2;
        let mut stable_streak = 0usize;
        let mut d = 0usize;
        loop {
            for f in 0..4 {
                let (cur, prev) = (&mut scratch.cur[f], &scratch.prev[f]);
                cur.copy_from_slice(prev);
            }
            match d {
                0 => {
                    // Rails: the strongest drivers, every lane.
                    scratch.cur[M1][kernel.power()] = !0;
                    scratch.cur[Y1][kernel.power()] = !0;
                    scratch.cur[M0][kernel.ground()] = !0;
                    scratch.cur[Y0][kernel.ground()] = !0;
                }
                1 => {
                    // Primary inputs: driven through the previous stage,
                    // in the lanes where the pin sits at that level.
                    for (pin, &net) in kernel.inputs().iter().enumerate() {
                        let hi = inputs_hi[pin];
                        scratch.cur[M1][net] |= hi;
                        scratch.cur[Y1][net] |= hi;
                        scratch.cur[M0][net] |= !hi;
                        scratch.cur[Y0][net] |= !hi;
                    }
                }
                _ => {
                    // Channel relax at weight 2: from the planes two
                    // levels back, gated per lane by conduction (must:
                    // definitely on; may: on or unknown).
                    for t in 0..on.len() {
                        let (a, b) = (kernel.drain(t), kernel.source(t));
                        let on_m = on[t];
                        let may_m = on[t] | unknown[t];
                        if may_m == 0 {
                            continue;
                        }
                        scratch.cur[M1][b] |= scratch.prev2[M1][a] & on_m;
                        scratch.cur[M1][a] |= scratch.prev2[M1][b] & on_m;
                        scratch.cur[M0][b] |= scratch.prev2[M0][a] & on_m;
                        scratch.cur[M0][a] |= scratch.prev2[M0][b] & on_m;
                        scratch.cur[Y1][b] |= scratch.prev2[Y1][a] & may_m;
                        scratch.cur[Y1][a] |= scratch.prev2[Y1][b] & may_m;
                        scratch.cur[Y0][b] |= scratch.prev2[Y0][a] & may_m;
                        scratch.cur[Y0][a] |= scratch.prev2[Y0][b] & may_m;
                    }
                }
            }
            // Hard shorts close at weight 0 inside the level.
            if let Some((a, b)) = self.short_edge {
                for f in 0..4 {
                    let u = scratch.cur[f][a] | scratch.cur[f][b];
                    scratch.cur[f][a] = u;
                    scratch.cur[f][b] = u;
                }
            }
            // Strict-strength wins: `must < may` holds iff some level d
            // has must ≤ d < may (including the may-unreachable case).
            for i in 0..n {
                scratch.win1[i] |= scratch.cur[M1][i] & !scratch.cur[Y0][i];
                scratch.win0[i] |= scratch.cur[M0][i] & !scratch.cur[Y1][i];
            }
            // Two consecutive unchanged levels mean both relax sources
            // (d-1 and d-2) are at their fixpoint: nothing can grow.
            let stable = (0..4).all(|f| scratch.cur[f] == scratch.prev[f]);
            if stable {
                stable_streak += 1;
            } else {
                stable_streak = 0;
            }
            // Break with `cur` holding the final planes — the value
            // composition below reads them — both on early stability and
            // on natural exhaustion at `dmax`.
            if stable_streak >= 2 || d == dmax {
                break;
            }
            // Rotate: prev2 <- prev, prev <- cur. The three buffers are
            // distinct struct fields, so the swaps borrow disjointly.
            for f in 0..4 {
                std::mem::swap(&mut scratch.prev[f], &mut scratch.prev2[f]);
                std::mem::swap(&mut scratch.cur[f], &mut scratch.prev[f]);
            }
            d += 1;
        }
        // Value composition, lane-wise (the scalar rules verbatim).
        for i in 0..n {
            let m1 = scratch.cur[M1][i];
            let m0 = scratch.cur[M0][i];
            let y1 = scratch.cur[Y1][i];
            let y0 = scratch.cur[Y0][i];
            let iso = !(y1 | y0);
            let drv = m1 | m0;
            let flo = (y1 | y0) & !drv;
            let one = drv & scratch.win1[i] & !scratch.win0[i];
            let zero = drv & scratch.win0[i] & !scratch.win1[i];
            let xd = drv & !one & !zero;
            out[i] = PackedValue {
                hi: (iso & stored[i].hi) | one | xd,
                x: (iso & stored[i].x) | flo | xd,
            };
        }
    }
}

fn empty_outcomes(kernel: &CellKernel) -> PhaseOutcomes {
    PhaseOutcomes {
        converged: 0,
        oscillated: 0,
        budget_exceeded: 0,
        unstable: vec![0; kernel.n_nets()],
        off_all: vec![!0; kernel.n_transistors()],
    }
}

fn merge_planes(dst: &mut [PackedValue], src: &[PackedValue], lanes: u64) {
    if lanes == 0 {
        return;
    }
    for (d, s) in dst.iter_mut().zip(src) {
        d.hi = (d.hi & !lanes) | (s.hi & lanes);
        d.x = (d.x & !lanes) | (s.x & lanes);
    }
}

fn merge_outcomes(dst: &mut PhaseOutcomes, src: &PhaseOutcomes, lanes: u64) {
    if lanes == 0 {
        return;
    }
    dst.converged |= src.converged & lanes;
    dst.oscillated |= src.oscillated & lanes;
    dst.budget_exceeded |= src.budget_exceeded & lanes;
    for (d, s) in dst.unstable.iter_mut().zip(&src.unstable) {
        *d |= s & lanes;
    }
    // off_all starts all-ones; skipped lanes take the golden device
    // activity (identical trajectories imply identical conduction).
    for (d, s) in dst.off_all.iter_mut().zip(&src.off_all) {
        *d = (*d & !lanes) | (s & lanes);
    }
}

/// Lanes of a block where `faulty` deviates detectably from `golden` on
/// any of `outputs`, under `policy` — the packed counterpart of
/// [`DetectionPolicy::detects`] applied per lane and OR-ed over outputs.
pub fn detect_mask(
    golden: &BlockResult,
    faulty: &BlockResult,
    outputs: &[usize],
    policy: DetectionPolicy,
) -> u64 {
    let driven = if policy.driven_x_detects { !0u64 } else { 0 };
    let floating = if policy.floating_x_detects { !0u64 } else { 0 };
    let mut detected = 0u64;
    for &o in outputs {
        let g = golden.final_values[o];
        let f = faulty.final_values[o];
        let golden_binary = !g.x;
        let flips = !f.x & (f.hi ^ g.hi);
        let xd = f.x & f.hi & driven;
        let xf = f.x & !f.hi & floating;
        detected |= golden_binary & (flips | xd | xf);
    }
    detected & golden.lanes
}

// --- CA_PACKED switch ----------------------------------------------------

/// Process-local override of the `CA_PACKED` switch:
/// 0 = none (read the environment), 1 = force on, 2 = force off.
static PACKED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Programmatically forces the packed engine on/off (`Some`) or restores
/// the `CA_PACKED` environment switch (`None`). Meant for benches and
/// differential tests that must pin one path regardless of environment.
pub fn set_packed_override(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    PACKED_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether the packed engine is selected. Defaults to **on**; the
/// `CA_PACKED` environment variable set to `0`, `off` or `false`
/// disables it (any other value enables). A programmatic override
/// ([`set_packed_override`]) wins over the environment. Read fresh on
/// every call so tests can toggle it.
pub fn packed_enabled() -> bool {
    match PACKED_OVERRIDE.load(Ordering::Relaxed) {
        1 => return true,
        2 => return false,
        _ => {}
    }
    match std::env::var("CA_PACKED") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v == "0" || v == "off" || v == "false")
        }
        Err(_) => true,
    }
}

/// Packed implementation of [`detection_row`](crate::detection_row):
/// golden blocks solved once, every lane of every block compared under
/// `policy`, with cone restriction for `Open` injections. Returns
/// `None` when the kernel compiler declines the cell.
pub fn detection_flags(
    cell: &Cell,
    injection: Injection,
    stimuli: &[Stimulus],
    policy: DetectionPolicy,
) -> Option<Vec<bool>> {
    let kernel = CellKernel::compile(cell)?;
    // One trace span per packed batch (a whole golden+faulty sweep for
    // one injection), not per 64-lane block: coarse enough to stay
    // within the event cap and the <3% tracing-overhead budget.
    let _span = ca_obs::trace::span("packed_batch");
    let packed = PackedStimulus::pack(cell.num_inputs(), stimuli);
    let outputs: Vec<usize> = cell.outputs().iter().map(|o| o.index()).collect();
    let golden = PackedSim::new(&kernel, Injection::None, None);
    let faulty = PackedSim::new(&kernel, injection, None);
    let open_t = match injection {
        Injection::Open { transistor, .. } => Some(transistor.index()),
        _ => None,
    };
    let mut flags = Vec::with_capacity(stimuli.len());
    for block in packed.blocks() {
        let g = golden.run_block(block);
        let f = faulty.run_block_against(block, &g, open_t);
        let mask = detect_mask(&g, &f, &outputs, policy);
        for lane in 0..block.occupancy() {
            flags.push(mask & (1u64 << lane) != 0);
        }
    }
    Some(flags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::Simulator;
    use crate::solver::SolveOutcome;
    use ca_netlist::{spice, Terminal};

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    const RING: &str = "\
.SUBCKT OSC A Z VDD VSS
MP0 Z A VDD VDD pch
MN0 Z Z net0 VSS nch
MN1 net0 A VSS VSS nch
.ENDS
";

    #[test]
    fn packed_value_round_trip() {
        for v in [Value::Zero, Value::One, Value::Xf, Value::Xd] {
            let p = PackedValue::splat(v);
            assert_eq!(p.get(0), v);
            assert_eq!(p.get(63), v);
            assert_eq!(p.retained().get(7), v.retained());
        }
        let mut p = PackedValue::splat(Value::Zero);
        p.set(3, Value::Xd);
        p.set(5, Value::One);
        assert_eq!(p.get(3), Value::Xd);
        assert_eq!(p.get(5), Value::One);
        assert_eq!(p.get(4), Value::Zero);
    }

    #[test]
    fn pack_transposes_waves() {
        let stimuli = Stimulus::all(2);
        let packed = PackedStimulus::pack(2, &stimuli);
        assert_eq!(packed.blocks().len(), 1);
        let block = &packed.blocks()[0];
        assert_eq!(block.occupancy(), 16);
        assert_eq!(block.dynamic.count_ones(), 12);
        for (lane, s) in stimuli.iter().enumerate() {
            for pin in 0..2 {
                assert_eq!(
                    block.initial[pin] >> lane & 1 == 1,
                    s.waves()[pin].initial(),
                    "lane {lane} pin {pin}"
                );
                assert_eq!(
                    block.final_inputs[pin] >> lane & 1 == 1,
                    s.waves()[pin].final_value()
                );
            }
        }
    }

    /// The packed golden run must reproduce the scalar simulator's
    /// per-phase values on every lane.
    #[test]
    fn golden_block_matches_scalar() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        let stimuli = Stimulus::all(2);
        let packed = PackedStimulus::pack(2, &stimuli);
        let sim = PackedSim::new(&kernel, Injection::None, None);
        let scalar = Simulator::new(&cell);
        let block = sim.run_block(&packed.blocks()[0]);
        for (lane, s) in stimuli.iter().enumerate() {
            let want = scalar.run(s);
            let got = block.lane_phases(lane);
            assert_eq!(got.len(), want.num_phases(), "{s}");
            for (phase, values) in got.iter().enumerate() {
                for (i, &v) in values.iter().enumerate() {
                    assert_eq!(
                        v,
                        want.value(phase, ca_netlist::NetId(i as u32)),
                        "{s} phase {phase} net {i}"
                    );
                }
            }
        }
    }

    /// Every injected defect, every stimulus: the packed per-lane values
    /// must equal the scalar faulty simulator's.
    #[test]
    fn faulty_blocks_match_scalar() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        let stimuli = Stimulus::all(2);
        let packed = PackedStimulus::pack(2, &stimuli);
        let golden = PackedSim::new(&kernel, Injection::None, None).run_block(&packed.blocks()[0]);
        let mut injections = vec![];
        for (id, _) in cell.transistor_ids() {
            for terminal in Terminal::CHANNEL_AND_GATE {
                injections.push(Injection::Open {
                    transistor: id,
                    terminal,
                });
            }
            for (a, b) in [
                (Terminal::Drain, Terminal::Source),
                (Terminal::Gate, Terminal::Source),
                (Terminal::Gate, Terminal::Drain),
            ] {
                injections.push(Injection::Short {
                    transistor: id,
                    a,
                    b,
                });
            }
        }
        for injection in injections {
            let open_t = match injection {
                Injection::Open { transistor, .. } => Some(transistor.index()),
                _ => None,
            };
            let block = PackedSim::new(&kernel, injection, None).run_block_against(
                &packed.blocks()[0],
                &golden,
                open_t,
            );
            let scalar = Simulator::with_injection(&cell, injection);
            for (lane, s) in stimuli.iter().enumerate() {
                let want = scalar.run(s);
                let got = block.lane_phases(lane);
                for (phase, values) in got.iter().enumerate() {
                    for (i, &v) in values.iter().enumerate() {
                        assert_eq!(
                            v,
                            want.value(phase, ca_netlist::NetId(i as u32)),
                            "{injection} {s} phase {phase} net {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn detection_flags_match_scalar_rows() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let stimuli = Stimulus::all(2);
        let mn0 = cell.find_transistor("MN0").unwrap();
        for injection in [
            Injection::Open {
                transistor: mn0,
                terminal: Terminal::Source,
            },
            Injection::Short {
                transistor: mn0,
                a: Terminal::Drain,
                b: Terminal::Source,
            },
        ] {
            let policy = DetectionPolicy::default();
            let golden = Simulator::new(&cell);
            let faulty = Simulator::with_injection(&cell, injection);
            let scalar: Vec<bool> = stimuli
                .iter()
                .map(|s| {
                    let g = golden.run(s);
                    let f = faulty.run(s);
                    cell.outputs()
                        .iter()
                        .any(|&o| policy.detects(g.final_value(o), f.final_value(o)))
                })
                .collect();
            let packed = detection_flags(&cell, injection, &stimuli, policy).unwrap();
            assert_eq!(packed, scalar, "{injection}");
        }
    }

    /// Per-lane oscillation and budget classes mirror the scalar
    /// checked solver, including the forced-Xd values.
    #[test]
    fn lane_outcomes_mirror_scalar_classes() {
        let cell = spice::parse_cell(RING).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        let stimuli = vec![
            Stimulus::static_pattern(1, 0),
            Stimulus::from_patterns(1, 0, 1),
            Stimulus::static_pattern(1, 1),
        ];
        let packed = PackedStimulus::pack(1, &stimuli);
        for cap in [None, Some(2)] {
            let sim = PackedSim::new(&kernel, Injection::None, cap);
            let block = sim.run_block(&packed.blocks()[0]);
            let graph = match cap {
                Some(c) => CellGraph::new(&cell, Injection::None).with_max_iterations(c),
                None => CellGraph::new(&cell, Injection::None),
            };
            for (lane, s) in stimuli.iter().enumerate() {
                let fresh = vec![Value::Xf; cell.nets().len()];
                let initial: Vec<bool> = s.waves().iter().map(|w| w.initial()).collect();
                let o1 = graph.solve_phase_checked(&initial, &fresh);
                let want1 = match &o1 {
                    SolveOutcome::Converged(_) => LaneOutcome::Converged,
                    SolveOutcome::Oscillated { .. } => LaneOutcome::Oscillated,
                    SolveOutcome::BudgetExceeded { .. } => LaneOutcome::BudgetExceeded,
                };
                assert_eq!(block.p1.lane(lane), want1, "{s} cap {cap:?}");
                for (i, &v) in o1.values().iter().enumerate() {
                    assert_eq!(block.phase1[i].get(lane), v, "{s} cap {cap:?} net {i}");
                }
                if !s.is_static() {
                    let stored: Vec<Value> = o1.values().iter().map(|v| v.retained()).collect();
                    let finals: Vec<bool> = s.waves().iter().map(|w| w.final_value()).collect();
                    let o2 = graph.solve_phase_checked(&finals, &stored);
                    let want2 = match &o2 {
                        SolveOutcome::Converged(_) => LaneOutcome::Converged,
                        SolveOutcome::Oscillated { .. } => LaneOutcome::Oscillated,
                        SolveOutcome::BudgetExceeded { .. } => LaneOutcome::BudgetExceeded,
                    };
                    assert_eq!(block.p2.lane(lane), want2, "{s} cap {cap:?} phase 2");
                    for (i, &v) in o2.values().iter().enumerate() {
                        assert_eq!(block.final_values[i].get(lane), v);
                    }
                }
            }
        }
    }

    /// An unstable lane's oscillating nets are reported per net, in the
    /// same index order the scalar `SolveOutcome::Oscillated` lists.
    #[test]
    fn unstable_nets_match_scalar() {
        let cell = spice::parse_cell(RING).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        let stimuli = vec![Stimulus::from_patterns(1, 0, 1)];
        let packed = PackedStimulus::pack(1, &stimuli);
        let block = PackedSim::new(&kernel, Injection::None, None).run_block(&packed.blocks()[0]);
        assert_eq!(block.p2.lane(0), LaneOutcome::Oscillated);
        let graph = CellGraph::new(&cell, Injection::None);
        let fresh = vec![Value::Xf; cell.nets().len()];
        let phase1 = graph.solve_phase(&[false], &fresh);
        let stored: Vec<Value> = phase1.iter().map(|v| v.retained()).collect();
        match graph.solve_phase_checked(&[true], &stored) {
            SolveOutcome::Oscillated { nets, .. } => {
                let packed_nets: Vec<usize> = (0..cell.nets().len())
                    .filter(|&i| block.p2.unstable[i] & 1 != 0)
                    .collect();
                let scalar_nets: Vec<usize> = nets.iter().map(|n| n.index()).collect();
                assert_eq!(packed_nets, scalar_nets);
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    /// The cone restriction must actually fire: an `Open` on a device
    /// that never conducts under some lanes skips those lanes and still
    /// produces scalar-identical values everywhere.
    #[test]
    fn cone_restriction_skips_inactive_lanes() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let kernel = CellKernel::compile(&cell).unwrap();
        let stimuli = Stimulus::all(2);
        let packed = PackedStimulus::pack(2, &stimuli);
        let golden = PackedSim::new(&kernel, Injection::None, None).run_block(&packed.blocks()[0]);
        let mn1 = cell.find_transistor("MN1").unwrap();
        // MN1's gate is input B: with B=0 in both phases the device
        // never conducts, so lanes with B held low are skippable.
        assert_ne!(
            golden.p1.off_all[mn1.index()] & golden.lanes,
            0,
            "expected some always-off lanes for MN1"
        );
        let injection = Injection::Open {
            transistor: mn1,
            terminal: Terminal::Drain,
        };
        let faulty = PackedSim::new(&kernel, injection, None).run_block_against(
            &packed.blocks()[0],
            &golden,
            Some(mn1.index()),
        );
        let scalar = Simulator::with_injection(&cell, injection);
        for (lane, s) in stimuli.iter().enumerate() {
            let want = scalar.run(s);
            for i in 0..cell.nets().len() {
                assert_eq!(
                    faulty.final_values[i].get(lane),
                    want.final_value(ca_netlist::NetId(i as u32)),
                    "{s} net {i}"
                );
            }
        }
    }

    #[test]
    fn override_wins_over_environment() {
        set_packed_override(Some(false));
        assert!(!packed_enabled());
        set_packed_override(Some(true));
        assert!(packed_enabled());
        set_packed_override(None);
    }
}
