//! Logic values, waveforms and stimuli.
//!
//! Cell-aware test generation uses a four-valued algebra `{0, 1, R, F}` per
//! input pin ([`Wave`]): a *static* stimulus holds every pin constant, a
//! *dynamic* stimulus is an ordered two-pattern pair where at least one pin
//! rises (`R`) or falls (`F`). Internally the simulator computes per-phase
//! steady-state [`Value`]s which distinguish a *driven* unknown (a rail
//! fight, [`Value::Xd`]) from a *floating* unknown (an uncharged or
//! disturbed storage node, [`Value::Xf`]) — the distinction decides
//! detectability (see [`crate::simulator::DetectionPolicy`]).

use std::fmt;

/// Steady-state value of a net at the end of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Driven to ground.
    Zero,
    /// Driven to power.
    One,
    /// Floating / unknown charge: the net is (or may be) disconnected from
    /// every driver.
    Xf,
    /// Driven conflict: paths to both rails (or uncertain drive) fight.
    Xd,
}

impl Value {
    /// Whether the value is a definite binary level.
    pub fn is_binary(self) -> bool {
        matches!(self, Value::Zero | Value::One)
    }

    /// Whether the value is unknown (either kind of X).
    pub fn is_x(self) -> bool {
        !self.is_binary()
    }

    /// The charge a net retains after holding this value (fights decay to
    /// an unknown charge).
    pub fn retained(self) -> Value {
        match self {
            Value::Zero => Value::Zero,
            Value::One => Value::One,
            Value::Xf | Value::Xd => Value::Xf,
        }
    }

    /// Converts a Boolean level.
    pub fn from_bool(b: bool) -> Value {
        if b {
            Value::One
        } else {
            Value::Zero
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Value::Zero => '0',
            Value::One => '1',
            Value::Xf => 'x',
            Value::Xd => 'X',
        };
        write!(f, "{c}")
    }
}

/// Per-pin waveform of a (possibly two-phase) stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Wave {
    /// Constant 0.
    Zero,
    /// Constant 1.
    One,
    /// Rising transition 0 → 1.
    Rise,
    /// Falling transition 1 → 0.
    Fall,
}

impl Wave {
    /// Value during the first phase.
    pub fn initial(self) -> bool {
        matches!(self, Wave::One | Wave::Fall)
    }

    /// Value during the second (final) phase.
    pub fn final_value(self) -> bool {
        matches!(self, Wave::One | Wave::Rise)
    }

    /// Whether the pin transitions.
    pub fn is_transition(self) -> bool {
        matches!(self, Wave::Rise | Wave::Fall)
    }

    /// Builds the wave from an initial/final value pair.
    pub fn from_pair(initial: bool, final_value: bool) -> Wave {
        match (initial, final_value) {
            (false, false) => Wave::Zero,
            (true, true) => Wave::One,
            (false, true) => Wave::Rise,
            (true, false) => Wave::Fall,
        }
    }

    /// Small-integer feature encoding used by the CA-matrix (0, 1, 2 = R,
    /// 3 = F).
    pub fn code(self) -> u8 {
        match self {
            Wave::Zero => 0,
            Wave::One => 1,
            Wave::Rise => 2,
            Wave::Fall => 3,
        }
    }
}

impl fmt::Display for Wave {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Wave::Zero => '0',
            Wave::One => '1',
            Wave::Rise => 'R',
            Wave::Fall => 'F',
        };
        write!(f, "{c}")
    }
}

/// A complete input stimulus: one [`Wave`] per primary input pin.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Stimulus {
    waves: Vec<Wave>,
}

impl Stimulus {
    /// Creates a stimulus from per-pin waves.
    pub fn new(waves: Vec<Wave>) -> Stimulus {
        Stimulus { waves }
    }

    /// Builds a stimulus from an initial and final input pattern
    /// (bit `i` of a pattern drives pin `i`).
    pub fn from_patterns(n: usize, initial: u32, final_pattern: u32) -> Stimulus {
        let waves = (0..n)
            .map(|i| Wave::from_pair((initial >> i) & 1 == 1, (final_pattern >> i) & 1 == 1))
            .collect();
        Stimulus { waves }
    }

    /// A static stimulus holding `pattern`.
    pub fn static_pattern(n: usize, pattern: u32) -> Stimulus {
        Stimulus::from_patterns(n, pattern, pattern)
    }

    /// Per-pin waves.
    pub fn waves(&self) -> &[Wave] {
        &self.waves
    }

    /// Number of input pins.
    pub fn num_pins(&self) -> usize {
        self.waves.len()
    }

    /// Whether no pin transitions (single-phase stimulus).
    pub fn is_static(&self) -> bool {
        self.waves.iter().all(|w| !w.is_transition())
    }

    /// First-phase input pattern as a bit vector.
    pub fn initial_pattern(&self) -> u32 {
        self.waves
            .iter()
            .enumerate()
            .fold(0, |acc, (i, w)| acc | ((w.initial() as u32) << i))
    }

    /// Final-phase input pattern as a bit vector.
    pub fn final_pattern(&self) -> u32 {
        self.waves
            .iter()
            .enumerate()
            .fold(0, |acc, (i, w)| acc | ((w.final_value() as u32) << i))
    }

    /// Enumerates all `2^n` static stimuli in ascending pattern order.
    pub fn all_static(n: usize) -> Vec<Stimulus> {
        (0..(1u32 << n))
            .map(|p| Stimulus::static_pattern(n, p))
            .collect()
    }

    /// Enumerates the full CA stimulus set: `2^n` static stimuli followed
    /// by all `2^n (2^n - 1)` ordered dynamic pairs — `4^n` rows total
    /// (paper §III.A).
    pub fn all(n: usize) -> Vec<Stimulus> {
        let size = 1u32 << n;
        let mut out = Vec::with_capacity((size as usize) * (size as usize));
        out.extend(Stimulus::all_static(n));
        for initial in 0..size {
            for final_pattern in 0..size {
                if initial != final_pattern {
                    out.push(Stimulus::from_patterns(n, initial, final_pattern));
                }
            }
        }
        out
    }
}

impl fmt::Display for Stimulus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in &self.waves {
            write!(f, "{w}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wave_pair_round_trip() {
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let w = Wave::from_pair(a, b);
            assert_eq!(w.initial(), a);
            assert_eq!(w.final_value(), b);
        }
    }

    #[test]
    fn stimulus_count_is_4_pow_n() {
        for n in 1..=3 {
            let all = Stimulus::all(n);
            assert_eq!(all.len(), 4usize.pow(n as u32));
            let statics = all.iter().filter(|s| s.is_static()).count();
            assert_eq!(statics, 1 << n);
        }
    }

    #[test]
    fn stimulus_patterns() {
        let s = Stimulus::from_patterns(2, 0b01, 0b10);
        assert_eq!(s.waves()[0], Wave::Fall);
        assert_eq!(s.waves()[1], Wave::Rise);
        assert_eq!(s.initial_pattern(), 0b01);
        assert_eq!(s.final_pattern(), 0b10);
        assert!(!s.is_static());
        assert_eq!(s.to_string(), "FR");
    }

    #[test]
    fn retention_decays_fights() {
        assert_eq!(Value::Xd.retained(), Value::Xf);
        assert_eq!(Value::One.retained(), Value::One);
    }

    #[test]
    fn all_stimuli_are_distinct() {
        let all = Stimulus::all(2);
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }
}
