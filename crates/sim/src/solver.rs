//! Steady-state phase solver.
//!
//! Models the cell as a conduction graph: nets are nodes; each transistor
//! contributes a channel edge that conducts according to its gate value;
//! shorts contribute always-conducting zero-weight edges. Value *drivers*
//! are the two rails and the primary input pins.
//!
//! A phase is solved to a fixpoint: transistor conduction is derived from
//! the current net values, then net values are recomputed from multi-source
//! 0-1 BFS distances to 1-drivers and 0-drivers:
//!
//! - definite ("must") paths use only definitely-conducting edges,
//! - possible ("may") paths additionally use unknown-conduction edges,
//! - a net reached by must-paths to both rails is a *fight*, resolved in
//!   favour of the strictly shorter (stronger) path — shorts have weight 0,
//!   channels weight 1 — or [`Value::Xd`] on a tie,
//! - a net with no may-path to any driver floats and retains its stored
//!   charge.

use crate::injection::Injection;
use crate::values::Value;
use ca_netlist::{Cell, MosKind, NetId, Terminal};

const INF: u32 = u32::MAX;

/// Result of solving one phase with [`CellGraph::solve_phase_checked`].
///
/// Non-convergence is a first-class outcome: callers decide whether an
/// oscillation is an error (golden simulation must converge) or
/// acceptable conservatism (faulty simulation may force the unstable
/// nets to [`Value::Xd`], which is what [`CellGraph::solve_phase`] does).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A fixpoint was reached; these are the steady-state net values.
    Converged(Vec<Value>),
    /// The natural iteration bound was exhausted without a fixpoint: the
    /// phase genuinely oscillates. `nets` lists the unstable nets;
    /// `values` is the last iterate with those nets forced to
    /// [`Value::Xd`].
    Oscillated {
        values: Vec<Value>,
        nets: Vec<NetId>,
    },
    /// An externally reduced iteration budget ran out before the natural
    /// bound; convergence is unknown. `values` is the last iterate with
    /// the still-changing nets forced to [`Value::Xd`].
    BudgetExceeded { values: Vec<Value> },
}

impl SolveOutcome {
    /// The net values, regardless of how the solve ended.
    pub fn values(&self) -> &[Value] {
        match self {
            SolveOutcome::Converged(v) => v,
            SolveOutcome::Oscillated { values, .. } => values,
            SolveOutcome::BudgetExceeded { values } => values,
        }
    }

    /// Consumes the outcome, returning the net values.
    pub fn into_values(self) -> Vec<Value> {
        match self {
            SolveOutcome::Converged(v) => v,
            SolveOutcome::Oscillated { values, .. } => values,
            SolveOutcome::BudgetExceeded { values } => values,
        }
    }

    /// Whether the solve reached a fixpoint.
    pub fn converged(&self) -> bool {
        matches!(self, SolveOutcome::Converged(_))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Conduction {
    On,
    Off,
    Unknown,
}

#[derive(Debug, Clone, Copy)]
enum EdgeKind {
    /// Channel of transistor `t` (weight 1, conduction from gate).
    Channel(usize),
    /// Hard short (weight 0, always conducting).
    Short,
}

#[derive(Debug, Clone, Copy)]
struct Edge {
    a: usize,
    b: usize,
    kind: EdgeKind,
}

/// The conduction graph of one cell with one injected defect.
#[derive(Debug, Clone)]
pub struct CellGraph<'c> {
    cell: &'c Cell,
    edges: Vec<Edge>,
    adj: Vec<Vec<(usize, usize)>>,
    forced_off: Vec<bool>,
    max_iterations: usize,
}

impl<'c> CellGraph<'c> {
    /// Builds the graph for `cell` with `injection` applied.
    pub fn new(cell: &'c Cell, injection: Injection) -> CellGraph<'c> {
        let n_nets = cell.nets().len();
        let n_transistors = cell.num_transistors();
        let mut forced_off = vec![false; n_transistors];
        let mut edges: Vec<Edge> = Vec::with_capacity(n_transistors + 2);
        for (id, t) in cell.transistor_ids() {
            edges.push(Edge {
                a: t.drain().index(),
                b: t.source().index(),
                kind: EdgeKind::Channel(id.index()),
            });
        }
        match injection {
            Injection::None => {}
            Injection::Open { transistor, .. } => {
                // Any terminal open leaves the device unable to conduct:
                // drain/source opens break the channel edge, a floating
                // gate is modelled as stuck-open.
                forced_off[transistor.index()] = true;
            }
            Injection::Short { transistor, a, b } => {
                let t = cell.transistor(transistor);
                let net_of = |term: Terminal| t.terminal(term).index();
                edges.push(Edge {
                    a: net_of(a),
                    b: net_of(b),
                    kind: EdgeKind::Short,
                });
            }
            Injection::NetShort { a, b } => {
                edges.push(Edge {
                    a: a.index(),
                    b: b.index(),
                    kind: EdgeKind::Short,
                });
            }
        }
        let mut adj = vec![Vec::new(); n_nets];
        for (i, e) in edges.iter().enumerate() {
            adj[e.a].push((i, e.b));
            adj[e.b].push((i, e.a));
        }
        CellGraph {
            cell,
            edges,
            adj,
            forced_off,
            max_iterations: CellGraph::natural_iterations(n_nets),
        }
    }

    /// The natural fixpoint iteration bound for a cell with `n_nets`
    /// nets: large enough that non-convergence implies true oscillation.
    pub fn natural_iterations(n_nets: usize) -> usize {
        2 * n_nets + 8
    }

    /// Caps the solver's fixpoint iterations at `limit` (floored at 1).
    /// A cap below the natural bound makes non-convergence report
    /// [`SolveOutcome::BudgetExceeded`] instead of `Oscillated`.
    pub fn with_max_iterations(mut self, limit: usize) -> CellGraph<'c> {
        self.max_iterations = limit.max(1);
        self
    }

    /// The current fixpoint iteration cap.
    pub fn max_iterations(&self) -> usize {
        self.max_iterations
    }

    /// Solves one phase, reporting convergence as a first-class outcome.
    /// `inputs[i]` is the level on primary input `i`; `stored` is the
    /// charge each net holds at the start of the phase.
    pub fn solve_phase_checked(&self, inputs: &[bool], stored: &[Value]) -> SolveOutcome {
        debug_assert_eq!(inputs.len(), self.cell.num_inputs());
        debug_assert_eq!(stored.len(), self.cell.nets().len());
        // Solve and sweep counts are `work`-class: the synchronous
        // fixpoint sweep count is a function of the graph and stimulus
        // alone (all nets update per sweep), so it is invariant across
        // thread counts and net orderings (DESIGN.md §9).
        ca_obs::counter!("ca_sim.solver.solves", Work).inc();
        let mut values = stored.to_vec();
        // Seed with driver levels so the first conduction pass sees them.
        self.apply_drivers(&mut values, inputs);
        let mut previous = values.clone();
        for iteration in 0..self.max_iterations {
            let conduction = self.conduction(&values);
            let next = self.net_values(&conduction, inputs, stored);
            if next == values {
                ca_obs::counter!("ca_sim.solver.iterations", Work).add(iteration as u64 + 1);
                // Iterations-to-convergence distribution, shared with the
                // packed solver so both paths feed one histogram.
                ca_obs::histogram!(
                    "ca_sim.solver.iterations_to_convergence",
                    Work,
                    crate::packed::ITER_HIST_BOUNDS
                )
                .observe(iteration as u64 + 1);
                return SolveOutcome::Converged(next);
            }
            if iteration + 1 == self.max_iterations {
                ca_obs::counter!("ca_sim.solver.iterations", Work).add(self.max_iterations as u64);
                // No fixpoint within the cap: conservatively mark the
                // unstable nets as driven-unknown and report why.
                let mut unstable = Vec::new();
                let mut forced = next;
                for (i, v) in forced.iter_mut().enumerate() {
                    if previous[i] != values[i] {
                        *v = Value::Xd;
                        unstable.push(NetId(i as u32));
                    }
                }
                let natural = CellGraph::natural_iterations(self.cell.nets().len());
                return if self.max_iterations < natural {
                    ca_obs::counter!("ca_sim.solver.budget_exceeded", Work).inc();
                    SolveOutcome::BudgetExceeded { values: forced }
                } else {
                    ca_obs::counter!("ca_sim.solver.oscillations", Work).inc();
                    SolveOutcome::Oscillated {
                        values: forced,
                        nets: unstable,
                    }
                };
            }
            previous = std::mem::replace(&mut values, next);
        }
        SolveOutcome::Converged(values)
    }

    /// Solves one phase, forcing unstable nets to [`Value::Xd`] on
    /// non-convergence — the historical conservative behaviour, correct
    /// for *faulty* simulation where an injected defect may create a
    /// ring. Golden simulation should use [`solve_phase_checked`] so
    /// oscillation surfaces as an error instead.
    ///
    /// [`solve_phase_checked`]: CellGraph::solve_phase_checked
    pub fn solve_phase(&self, inputs: &[bool], stored: &[Value]) -> Vec<Value> {
        self.solve_phase_checked(inputs, stored).into_values()
    }

    fn apply_drivers(&self, values: &mut [Value], inputs: &[bool]) {
        values[self.cell.power().index()] = Value::One;
        values[self.cell.ground().index()] = Value::Zero;
        for (i, &net) in self.cell.inputs().iter().enumerate() {
            values[net.index()] = Value::from_bool(inputs[i]);
        }
    }

    fn conduction(&self, values: &[Value]) -> Vec<Conduction> {
        self.cell
            .transistor_ids()
            .map(|(id, t)| {
                if self.forced_off[id.index()] {
                    return Conduction::Off;
                }
                let gate = values[t.gate().index()];
                match (t.kind(), gate) {
                    (MosKind::Nmos, Value::One) | (MosKind::Pmos, Value::Zero) => Conduction::On,
                    (MosKind::Nmos, Value::Zero) | (MosKind::Pmos, Value::One) => Conduction::Off,
                    _ => Conduction::Unknown,
                }
            })
            .collect()
    }

    /// 0-1 BFS from all driver nets of `level`, using edges admitted by
    /// `admit_unknown`.
    fn distances(
        &self,
        conduction: &[Conduction],
        inputs: &[bool],
        level: bool,
        admit_unknown: bool,
    ) -> Vec<u32> {
        let n = self.adj.len();
        let mut dist = vec![INF; n];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u32, usize)>> =
            std::collections::BinaryHeap::new();
        // Graded strength model: rails are the strongest drivers (0),
        // primary inputs are driven through the previous stage's devices
        // (1), every conducting channel adds 2, hard shorts add 0. A hard
        // short to a rail therefore beats an input driver, which in turn
        // beats any transistor path.
        let rail = if level {
            self.cell.power()
        } else {
            self.cell.ground()
        };
        dist[rail.index()] = 0;
        heap.push(std::cmp::Reverse((0, rail.index())));
        for (i, &net) in self.cell.inputs().iter().enumerate() {
            if inputs[i] == level && dist[net.index()] > 1 {
                dist[net.index()] = 1;
                heap.push(std::cmp::Reverse((1, net.index())));
            }
        }
        while let Some(std::cmp::Reverse((du, u))) = heap.pop() {
            if du > dist[u] {
                continue;
            }
            for &(edge_idx, v) in &self.adj[u] {
                let edge = self.edges[edge_idx];
                let weight = match edge.kind {
                    EdgeKind::Short => 0,
                    EdgeKind::Channel(t) => match conduction[t] {
                        Conduction::On => 2,
                        Conduction::Unknown if admit_unknown => 2,
                        _ => continue,
                    },
                };
                let candidate = du.saturating_add(weight);
                if candidate < dist[v] {
                    dist[v] = candidate;
                    heap.push(std::cmp::Reverse((candidate, v)));
                }
            }
        }
        dist
    }

    fn net_values(
        &self,
        conduction: &[Conduction],
        inputs: &[bool],
        stored: &[Value],
    ) -> Vec<Value> {
        let must1 = self.distances(conduction, inputs, true, false);
        let must0 = self.distances(conduction, inputs, false, false);
        let may1 = self.distances(conduction, inputs, true, true);
        let may0 = self.distances(conduction, inputs, false, true);
        (0..self.adj.len())
            .map(|n| {
                let (m1, m0) = (must1[n] != INF, must0[n] != INF);
                let (y1, y0) = (may1[n] != INF, may0[n] != INF);
                if !y1 && !y0 {
                    // Fully isolated: the node keeps its charge.
                    stored[n]
                } else if !m1 && !m0 {
                    // Possibly driven, possibly floating: unknown charge.
                    Value::Xf
                } else {
                    // A side wins when its definite drive is strictly
                    // stronger than everything the opposite side might
                    // muster (its *may* distance).
                    let win1 = m1 && must1[n] < may0[n];
                    let win0 = m0 && must0[n] < may1[n];
                    match (win1, win0) {
                        (true, false) => Value::One,
                        (false, true) => Value::Zero,
                        _ => Value::Xd,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn fresh(cell: &Cell) -> Vec<Value> {
        vec![Value::Xf; cell.nets().len()]
    }

    #[test]
    fn nand2_truth_table() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let graph = CellGraph::new(&cell, Injection::None);
        let z = cell.output().index();
        for (a, b, expected) in [
            (false, false, Value::One),
            (false, true, Value::One),
            (true, false, Value::One),
            (true, true, Value::Zero),
        ] {
            let values = graph.solve_phase(&[a, b], &fresh(&cell));
            assert_eq!(values[z], expected, "a={a} b={b}");
        }
    }

    #[test]
    fn open_floats_output_statically() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        let graph = CellGraph::new(
            &cell,
            Injection::Open {
                transistor: mn0,
                terminal: Terminal::Drain,
            },
        );
        let values = graph.solve_phase(&[true, true], &fresh(&cell));
        assert_eq!(values[cell.output().index()], Value::Xf);
    }

    #[test]
    fn open_retains_previous_charge() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        let graph = CellGraph::new(
            &cell,
            Injection::Open {
                transistor: mn0,
                terminal: Terminal::Drain,
            },
        );
        // Phase 1: AB=01 drives Z to 1 through MP0.
        let phase1 = graph.solve_phase(&[false, true], &fresh(&cell));
        assert_eq!(phase1[cell.output().index()], Value::One);
        // Phase 2: AB=11 floats Z (pull-down broken), so it keeps the 1.
        let stored: Vec<Value> = phase1.iter().map(|v| v.retained()).collect();
        let phase2 = graph.solve_phase(&[true, true], &stored);
        assert_eq!(phase2[cell.output().index()], Value::One);
    }

    #[test]
    fn drain_source_short_wins_fight() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mp1 = cell.find_transistor("MP1").unwrap();
        let graph = CellGraph::new(
            &cell,
            Injection::Short {
                transistor: mp1,
                a: Terminal::Drain,
                b: Terminal::Source,
            },
        );
        // AB=11: golden pulls Z low (weight 2), the short offers VDD at
        // weight 0 — the short wins the fight.
        let values = graph.solve_phase(&[true, true], &fresh(&cell));
        assert_eq!(values[cell.output().index()], Value::One);
    }

    #[test]
    fn balanced_fight_is_driven_x() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        // Short MN0 drain-source: bridges Z to net0 at weight 0.
        let graph = CellGraph::new(
            &cell,
            Injection::Short {
                transistor: mn0,
                a: Terminal::Drain,
                b: Terminal::Source,
            },
        );
        // AB=01: pull-up through MP0 (weight 1) vs pull-down short+MN1
        // (weight 0+1=1): balanced fight.
        let values = graph.solve_phase(&[false, true], &fresh(&cell));
        assert_eq!(values[cell.output().index()], Value::Xd);
    }

    #[test]
    fn gate_short_propagates_input() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mp0 = cell.find_transistor("MP0").unwrap();
        // MP0 gate-drain short bridges input A to output Z at weight 0.
        let graph = CellGraph::new(
            &cell,
            Injection::Short {
                transistor: mp0,
                a: Terminal::Gate,
                b: Terminal::Drain,
            },
        );
        // AB=01: golden Z=1. With the short, A=0 reaches Z through the
        // defect at strength 1 (input driver) + 0 (short), beating MP0's
        // pull-up at strength 2 (one channel): Z is dragged to 0.
        let values = graph.solve_phase(&[false, true], &fresh(&cell));
        assert_eq!(values[cell.output().index()], Value::Zero);
    }

    #[test]
    fn feedback_loop_terminates_with_unknown() {
        // Z gates its own pull-down: with the pull-up off this is a
        // self-inverting loop — the solver must terminate and report an
        // unknown rather than oscillate forever.
        let src = "\
.SUBCKT OSC A Z VDD VSS
MP0 Z A VDD VDD pch
MN0 Z Z VSS VSS nch
.ENDS
";
        let cell = spice::parse_cell(src).unwrap();
        let graph = CellGraph::new(&cell, Injection::None);
        let values = graph.solve_phase(&[true], &fresh(&cell));
        assert!(
            values[cell.output().index()].is_x(),
            "got {}",
            values[cell.output().index()]
        );
    }

    #[test]
    fn checked_solve_reports_convergence() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let graph = CellGraph::new(&cell, Injection::None);
        let outcome = graph.solve_phase_checked(&[true, true], &fresh(&cell));
        assert!(outcome.converged());
        assert_eq!(outcome.values()[cell.output().index()], Value::Zero);
    }

    // A genuine binary oscillator: with A=1 the pull-up is off and Z
    // gates its own pull-down, so a stored 1 on Z discharges, floats
    // back to the stored 1, and discharges again — a period-2 cycle the
    // fixpoint iteration can never escape.
    const RING: &str = "\
.SUBCKT OSC A Z VDD VSS
MP0 Z A VDD VDD pch
MN0 Z Z net0 VSS nch
MN1 net0 A VSS VSS nch
.ENDS
";

    fn ring_armed(cell: &Cell) -> Vec<Value> {
        let mut stored = fresh(cell);
        stored[cell.output().index()] = Value::One;
        stored
    }

    #[test]
    fn checked_solve_reports_oscillation_with_nets() {
        let cell = spice::parse_cell(RING).unwrap();
        let graph = CellGraph::new(&cell, Injection::None);
        match graph.solve_phase_checked(&[true], &ring_armed(&cell)) {
            SolveOutcome::Oscillated { values, nets } => {
                assert!(nets.contains(&cell.output()), "unstable nets: {nets:?}");
                assert!(values[cell.output().index()].is_x());
            }
            other => panic!("expected oscillation, got {other:?}"),
        }
    }

    #[test]
    fn reduced_iteration_budget_reports_budget_exceeded() {
        let cell = spice::parse_cell(RING).unwrap();
        let graph = CellGraph::new(&cell, Injection::None).with_max_iterations(2);
        match graph.solve_phase_checked(&[true], &ring_armed(&cell)) {
            SolveOutcome::BudgetExceeded { values } => {
                assert!(values[cell.output().index()].is_x());
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn reduced_budget_still_converges_on_easy_cells() {
        // NAND2 settles in a couple of iterations; a tight budget that is
        // still sufficient must report Converged, not BudgetExceeded.
        let cell = spice::parse_cell(NAND2).unwrap();
        let graph = CellGraph::new(&cell, Injection::None).with_max_iterations(6);
        let outcome = graph.solve_phase_checked(&[false, true], &fresh(&cell));
        assert!(outcome.converged());
        assert_eq!(outcome.values()[cell.output().index()], Value::One);
    }

    #[test]
    fn rails_hold_their_levels() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let graph = CellGraph::new(&cell, Injection::None);
        let values = graph.solve_phase(&[false, false], &fresh(&cell));
        assert_eq!(values[cell.power().index()], Value::One);
        assert_eq!(values[cell.ground().index()], Value::Zero);
    }
}
