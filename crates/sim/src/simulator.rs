//! Public simulation API: golden and defective cell simulation, detection.

use crate::budget::{SimBudget, SimError};
use crate::injection::Injection;
use crate::solver::{CellGraph, SolveOutcome};
use crate::values::{Stimulus, Value, Wave};
use ca_netlist::{Cell, NetId};

/// How unknown faulty responses count towards detection.
///
/// The default matches industrial practice: a *driven* conflict (rail
/// fight) is observable and counts as detected, a *floating* node cannot be
/// relied upon by the tester and does not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectionPolicy {
    /// Whether a faulty [`Value::Xd`] (fight) counts as detected.
    pub driven_x_detects: bool,
    /// Whether a faulty [`Value::Xf`] (floating) counts as detected.
    pub floating_x_detects: bool,
}

impl Default for DetectionPolicy {
    fn default() -> DetectionPolicy {
        DetectionPolicy {
            driven_x_detects: true,
            floating_x_detects: false,
        }
    }
}

impl DetectionPolicy {
    /// Pessimistic policy: any unknown faulty response counts as detected.
    pub fn pessimistic() -> DetectionPolicy {
        DetectionPolicy {
            driven_x_detects: true,
            floating_x_detects: true,
        }
    }

    /// Optimistic policy: only a definite opposite level detects.
    pub fn optimistic() -> DetectionPolicy {
        DetectionPolicy {
            driven_x_detects: false,
            floating_x_detects: false,
        }
    }

    /// Whether observing `faulty` where the golden cell shows `golden`
    /// detects the defect.
    pub fn detects(self, golden: Value, faulty: Value) -> bool {
        if !golden.is_binary() {
            return false;
        }
        match faulty {
            Value::Zero | Value::One => faulty != golden,
            Value::Xd => self.driven_x_detects,
            Value::Xf => self.floating_x_detects,
        }
    }
}

/// Result of simulating one stimulus: the steady-state net values of each
/// phase (one for static stimuli, two for dynamic ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    phases: Vec<Vec<Value>>,
}

impl SimResult {
    /// Net values at the end of the final phase.
    pub fn final_values(&self) -> &[Value] {
        self.phases.last().expect("at least one phase")
    }

    /// Value of `net` at the end of phase `phase` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `phase` or `net` is out of range.
    pub fn value(&self, phase: usize, net: NetId) -> Value {
        self.phases[phase][net.index()]
    }

    /// Value of `net` at the end of the final phase.
    pub fn final_value(&self, net: NetId) -> Value {
        self.final_values()[net.index()]
    }

    /// Number of phases simulated (1 = static, 2 = dynamic).
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The waveform seen on `net` across the stimulus, if the net is
    /// binary in every phase.
    pub fn wave(&self, net: NetId) -> Option<Wave> {
        let level = |v: Value| match v {
            Value::Zero => Some(false),
            Value::One => Some(true),
            _ => None,
        };
        let first = level(self.phases[0][net.index()])?;
        let last = level(self.final_values()[net.index()])?;
        Some(Wave::from_pair(first, last))
    }
}

/// Switch-level simulator for one cell with one (optional) injected defect.
///
/// # Example
///
/// ```
/// use ca_netlist::spice;
/// use ca_sim::{Simulator, Stimulus, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cell = spice::parse_cell(
///     ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS",
/// )?;
/// let sim = Simulator::new(&cell);
/// let result = sim.run(&Stimulus::static_pattern(1, 0b1));
/// assert_eq!(result.final_value(cell.output()), Value::Zero);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'c> {
    cell: &'c Cell,
    graph: CellGraph<'c>,
}

impl<'c> Simulator<'c> {
    /// Golden (defect-free) simulator.
    pub fn new(cell: &'c Cell) -> Simulator<'c> {
        Simulator::with_injection(cell, Injection::None)
    }

    /// Simulator with `injection` applied.
    pub fn with_injection(cell: &'c Cell, injection: Injection) -> Simulator<'c> {
        Simulator {
            cell,
            graph: CellGraph::new(cell, injection),
        }
    }

    /// Simulator with `injection` applied and the solver iteration cap
    /// taken from `budget` (other budget axes are enforced by the
    /// characterization layers, not per-stimulus simulation).
    pub fn with_budget(cell: &'c Cell, injection: Injection, budget: &SimBudget) -> Simulator<'c> {
        let mut graph = CellGraph::new(cell, injection);
        if let Some(limit) = budget.max_solver_iterations {
            graph = graph.with_max_iterations(limit);
        }
        Simulator { cell, graph }
    }

    /// The simulated cell.
    pub fn cell(&self) -> &Cell {
        self.cell
    }

    /// Simulates `stimulus` from an unknown initial state.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus pin count does not match the cell.
    pub fn run(&self, stimulus: &Stimulus) -> SimResult {
        assert_eq!(
            stimulus.num_pins(),
            self.cell.num_inputs(),
            "stimulus pin count mismatch for cell `{}`",
            self.cell.name()
        );
        ca_obs::counter!("ca_sim.sim.runs", Work).inc();
        let fresh = vec![Value::Xf; self.cell.nets().len()];
        let initial: Vec<bool> = stimulus.waves().iter().map(|w| w.initial()).collect();
        let phase1 = self.graph.solve_phase(&initial, &fresh);
        if stimulus.is_static() {
            return SimResult {
                phases: vec![phase1],
            };
        }
        let stored: Vec<Value> = phase1.iter().map(|v| v.retained()).collect();
        let final_inputs: Vec<bool> = stimulus.waves().iter().map(|w| w.final_value()).collect();
        let phase2 = self.graph.solve_phase(&final_inputs, &stored);
        SimResult {
            phases: vec![phase1, phase2],
        }
    }

    /// Simulates `stimulus`, reporting non-convergence as an error
    /// instead of conservatively forcing unstable nets to `X`.
    ///
    /// This is the right entry point for *golden* simulation: a
    /// defect-free cell that oscillates (or exhausts a reduced solver
    /// budget) has no meaningful truth table, and characterizing it
    /// against silently X-forced responses would produce a garbage model.
    /// Faulty simulation should keep using [`Simulator::run`], where
    /// X-forcing is the correct conservative semantics.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus pin count does not match the cell.
    pub fn try_run(&self, stimulus: &Stimulus) -> Result<SimResult, SimError> {
        assert_eq!(
            stimulus.num_pins(),
            self.cell.num_inputs(),
            "stimulus pin count mismatch for cell `{}`",
            self.cell.name()
        );
        ca_obs::counter!("ca_sim.sim.checked_runs", Work).inc();
        let fresh = vec![Value::Xf; self.cell.nets().len()];
        let initial: Vec<bool> = stimulus.waves().iter().map(|w| w.initial()).collect();
        let phase1 = self.checked_phase(&initial, &fresh)?;
        if stimulus.is_static() {
            return Ok(SimResult {
                phases: vec![phase1],
            });
        }
        let stored: Vec<Value> = phase1.iter().map(|v| v.retained()).collect();
        let final_inputs: Vec<bool> = stimulus.waves().iter().map(|w| w.final_value()).collect();
        let phase2 = self.checked_phase(&final_inputs, &stored)?;
        Ok(SimResult {
            phases: vec![phase1, phase2],
        })
    }

    fn checked_phase(&self, inputs: &[bool], stored: &[Value]) -> Result<Vec<Value>, SimError> {
        match self.graph.solve_phase_checked(inputs, stored) {
            SolveOutcome::Converged(values) => Ok(values),
            SolveOutcome::Oscillated { nets, .. } => Err(SimError::Oscillated {
                nets: nets
                    .into_iter()
                    .map(|n| self.cell.nets()[n.index()].name().to_string())
                    .collect(),
            }),
            SolveOutcome::BudgetExceeded { .. } => Err(SimError::BudgetExceeded {
                resource: "solver iterations",
            }),
        }
    }

    /// Convenience: final value on the cell's (single) output.
    pub fn output(&self, stimulus: &Stimulus) -> Value {
        self.run(stimulus).final_value(self.cell.output())
    }

    /// Simulates an arbitrary pattern *sequence* with state carried
    /// between patterns (charge retention across the whole run) — the
    /// tester-like mode used by diagnosis experiments. Returns the
    /// steady-state net values after each pattern.
    ///
    /// # Panics
    ///
    /// Panics if any pattern exceeds the cell's input count (patterns are
    /// plain levels; bit `i` drives input `i`).
    pub fn run_sequence(&self, patterns: &[u32]) -> Vec<Vec<Value>> {
        let n = self.cell.num_inputs();
        let mut stored = vec![Value::Xf; self.cell.nets().len()];
        let mut out = Vec::with_capacity(patterns.len());
        for &p in patterns {
            assert!(
                (p as u64) < (1u64 << n),
                "pattern {p:#b} exceeds {n} inputs"
            );
            let inputs: Vec<bool> = (0..n).map(|i| (p >> i) & 1 == 1).collect();
            let values = self.graph.solve_phase(&inputs, &stored);
            stored = values.iter().map(|v| v.retained()).collect();
            out.push(values);
        }
        out
    }
}

/// Simulates `cell` against every stimulus with and without `injection`
/// and reports which stimuli detect the defect under `policy`. A stimulus
/// detects when *any* output pin deviates (multi-output cells are fully
/// observed).
///
/// Returns one flag per stimulus, in order. Uses the bit-parallel packed
/// engine (64 stimuli per solver pass) when the `CA_PACKED` switch allows
/// it and the cell compiles to a kernel; the flags are bit-identical
/// either way.
pub fn detection_row(
    cell: &Cell,
    injection: Injection,
    stimuli: &[Stimulus],
    policy: DetectionPolicy,
) -> Vec<bool> {
    if crate::packed::packed_enabled() {
        if let Some(flags) = crate::packed::detection_flags(cell, injection, stimuli, policy) {
            return flags;
        }
    }
    detection_row_scalar(cell, injection, stimuli, policy)
}

/// The interpreted per-stimulus path of [`detection_row`] — always
/// available, and the reference the packed path is differentially tested
/// against.
pub fn detection_row_scalar(
    cell: &Cell,
    injection: Injection,
    stimuli: &[Stimulus],
    policy: DetectionPolicy,
) -> Vec<bool> {
    let golden = Simulator::new(cell);
    let faulty = Simulator::with_injection(cell, injection);
    stimuli
        .iter()
        .map(|s| {
            let g = golden.run(s);
            let f = faulty.run(s);
            cell.outputs()
                .iter()
                .any(|&out| policy.detects(g.final_value(out), f.final_value(out)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::{spice, Terminal};

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn golden_nand2_matches_truth_table() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        for p in 0..4u32 {
            let expected = Value::from_bool(!((p & 1 == 1) && (p & 2 == 2)));
            assert_eq!(sim.output(&Stimulus::static_pattern(2, p)), expected);
        }
    }

    #[test]
    fn dynamic_stimulus_runs_two_phases() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        let result = sim.run(&Stimulus::from_patterns(2, 0b01, 0b11));
        assert_eq!(result.num_phases(), 2);
        assert_eq!(result.final_value(cell.output()), Value::Zero);
        assert_eq!(result.wave(cell.output()), Some(Wave::Fall));
    }

    #[test]
    fn stuck_open_needs_two_patterns() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        let open = Injection::Open {
            transistor: mn0,
            terminal: Terminal::Source,
        };
        let policy = DetectionPolicy::default();
        // Statically undetected: output floats (Xf does not detect).
        let statics = Stimulus::all_static(2);
        let static_hits = detection_row(&cell, open, &statics, policy);
        assert!(static_hits.iter().all(|&d| !d));
        // The classic two-pattern test 01 -> 11 detects it.
        let pair = vec![Stimulus::from_patterns(2, 0b01, 0b11)];
        let hits = detection_row(&cell, open, &pair, policy);
        assert!(hits[0]);
    }

    #[test]
    fn stuck_on_short_detected_statically() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mp1 = cell.find_transistor("MP1").unwrap();
        let short = Injection::Short {
            transistor: mp1,
            a: Terminal::Drain,
            b: Terminal::Source,
        };
        let statics = Stimulus::all_static(2);
        let hits = detection_row(&cell, short, &statics, DetectionPolicy::default());
        // AB=11 sees the fight won by the short (Z stays 1, golden 0).
        assert!(hits[3]);
        // AB=00/01/10 are unaffected (golden already 1).
        assert!(!hits[0] && !hits[1]);
    }

    #[test]
    fn policies_differ_on_floating_x() {
        assert!(!DetectionPolicy::default().detects(Value::One, Value::Xf));
        assert!(DetectionPolicy::pessimistic().detects(Value::One, Value::Xf));
        assert!(!DetectionPolicy::optimistic().detects(Value::One, Value::Xd));
        assert!(DetectionPolicy::default().detects(Value::One, Value::Zero));
        assert!(!DetectionPolicy::default().detects(Value::Xd, Value::Zero));
    }

    #[test]
    fn sequence_matches_pairwise_simulation() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        // Sequence 00 -> 01 -> 11: the last transition is the classic
        // two-pattern test; its final state must match run() on (01, 11).
        let seq = sim.run_sequence(&[0b00, 0b01, 0b11]);
        assert_eq!(seq.len(), 3);
        let pairwise = sim.run(&Stimulus::from_patterns(2, 0b01, 0b11));
        assert_eq!(
            seq[2][cell.output().index()],
            pairwise.final_value(cell.output())
        );
    }

    #[test]
    fn sequence_retains_charge_through_opens() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        let sim = Simulator::with_injection(
            &cell,
            Injection::Open {
                transistor: mn0,
                terminal: Terminal::Drain,
            },
        );
        // Charge Z high, then float it for two consecutive patterns: the
        // stored 1 persists across the whole tail of the sequence.
        let seq = sim.run_sequence(&[0b01, 0b11, 0b11]);
        let z = cell.output().index();
        assert_eq!(seq[0][z], Value::One);
        assert_eq!(seq[1][z], Value::One);
        assert_eq!(seq[2][z], Value::One);
    }

    #[test]
    fn try_run_matches_run_on_stable_cells() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        for p in 0..4u32 {
            let s = Stimulus::static_pattern(2, p);
            let checked = sim.try_run(&s).expect("NAND2 converges");
            assert_eq!(checked, sim.run(&s));
        }
    }

    // With A=0 the pull-up charges Z; raising A opens the pull-up and
    // closes the foot of Z's self-gated pull-down, so the stored 1
    // discharges, floats back and discharges again: a binary oscillation
    // in the second phase of the rising stimulus.
    const RING: &str = "\
.SUBCKT OSC A Z VDD VSS
MP0 Z A VDD VDD pch
MN0 Z Z net0 VSS nch
MN1 net0 A VSS VSS nch
.ENDS
";

    #[test]
    fn try_run_reports_oscillation_by_net_name() {
        let cell = spice::parse_cell(RING).unwrap();
        let sim = Simulator::new(&cell);
        let err = sim
            .try_run(&Stimulus::from_patterns(1, 0b0, 0b1))
            .expect_err("armed feedback loop oscillates");
        match err {
            crate::SimError::Oscillated { nets } => {
                assert!(nets.contains(&"Z".to_string()), "nets: {nets:?}")
            }
            other => panic!("expected oscillation, got {other}"),
        }
    }

    #[test]
    fn budgeted_simulator_reports_exhaustion() {
        let cell = spice::parse_cell(RING).unwrap();
        let budget = crate::SimBudget {
            max_solver_iterations: Some(2),
            ..crate::SimBudget::unlimited()
        };
        let sim = Simulator::with_budget(&cell, Injection::None, &budget);
        let err = sim
            .try_run(&Stimulus::from_patterns(1, 0b0, 0b1))
            .expect_err("budget too small to converge");
        assert_eq!(
            err,
            crate::SimError::BudgetExceeded {
                resource: "solver iterations"
            }
        );
        // run() still X-forces under the same budget.
        let result = sim.run(&Stimulus::from_patterns(1, 0b0, 0b1));
        assert!(result.final_value(cell.output()).is_x());
    }

    #[test]
    #[should_panic(expected = "exceeds 2 inputs")]
    fn sequence_checks_pattern_width() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        let _ = sim.run_sequence(&[0b100]);
    }

    #[test]
    #[should_panic(expected = "stimulus pin count mismatch")]
    fn pin_count_mismatch_panics() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let sim = Simulator::new(&cell);
        let _ = sim.run(&Stimulus::static_pattern(3, 0));
    }
}
