//! Per-stage flow profiling.
//!
//! A [`FlowProfile`] wraps each pipeline stage in a registry snapshot
//! pair plus wall/CPU clocks, producing per-stage metric deltas. It
//! renders both the machine artifact (`BENCH_profile.json`, schema
//! `ca-obs-profile/1`) and a human-readable table, and exposes the
//! canonical count fingerprints the determinism tests byte-compare.
//!
//! Counts and timings are kept strictly apart: the JSON carries
//! `counts` (outcome), `work` and `ops` sections per stage for the
//! count metrics, and `timers`/`wall_s`/`cpu_s` for the wall-clock
//! side that is excluded from every determinism check.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::json::{escape_json, JsonValue};
use crate::registry::{global, HistogramSnapshot, MetricClass, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Schema tag embedded in (and required from) `BENCH_profile.json`.
pub const PROFILE_SCHEMA: &str = "ca-obs-profile/1";

/// Process CPU time (user + system) in seconds, read from
/// `/proc/self/stat`. Best-effort: `None` off Linux or on parse
/// trouble. Assumes the (universal in practice) USER_HZ of 100.
pub fn cpu_time_s() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // comm may contain spaces/parens; fields resume after the last ')'.
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) as f64 / 100.0)
}

/// One profiled stage: the registry delta it produced plus its clocks.
#[derive(Debug, Clone)]
pub struct StageProfile {
    pub name: String,
    pub wall_s: f64,
    /// Process-wide CPU seconds spent during the stage; `None` when
    /// the platform offers no cheap reading.
    pub cpu_s: Option<f64>,
    pub delta: Snapshot,
}

/// Aggregates a run's stages into one report.
#[derive(Debug, Clone)]
pub struct FlowProfile {
    pub label: String,
    pub threads: usize,
    /// Free-form integer facts about the run (cell count, …).
    pub meta: BTreeMap<String, u64>,
    /// Derived ratios (cache hit rate, quarantine rate, …) in [0, 1].
    pub rates: BTreeMap<String, f64>,
    pub stages: Vec<StageProfile>,
}

impl FlowProfile {
    pub fn new(label: impl Into<String>, threads: usize) -> Self {
        FlowProfile {
            label: label.into(),
            threads,
            meta: BTreeMap::new(),
            rates: BTreeMap::new(),
            stages: Vec::new(),
        }
    }

    /// Runs `f` as a named stage: snapshots the global registry and
    /// both clocks around it and records the delta. Also opens a span
    /// (`profile/<name>`) so nested span timings land under the stage.
    pub fn stage<R>(&mut self, name: &str, f: impl FnOnce() -> R) -> R {
        let before = global().snapshot();
        let cpu_before = cpu_time_s();
        let wall = Instant::now();
        // When tracing is on, each stage is also a trace span: inert
        // otherwise, and sequential on the calling thread either way,
        // so stage span ids are deterministic (DESIGN.md §14).
        let trace_span = crate::trace::span(name);
        let result = crate::span::timed(name, f);
        drop(trace_span);
        let wall_s = wall.elapsed().as_secs_f64();
        let cpu_s = match (cpu_before, cpu_time_s()) {
            (Some(a), Some(b)) => Some((b - a).max(0.0)),
            _ => None,
        };
        self.stages.push(StageProfile {
            name: name.to_string(),
            wall_s,
            cpu_s,
            delta: global().snapshot().delta(&before),
        });
        result
    }

    pub fn set_meta(&mut self, key: impl Into<String>, value: u64) {
        self.meta.insert(key.into(), value);
    }

    pub fn set_rate(&mut self, key: impl Into<String>, value: f64) {
        self.rates.insert(key.into(), value);
    }

    /// Sum of one counter across all stages.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.stages
            .iter()
            .filter_map(|s| s.delta.counters.get(name).map(|(_, v)| *v))
            .sum()
    }

    /// All counters of `class`, summed across stages.
    pub fn totals_of(&self, class: MetricClass) -> BTreeMap<String, u64> {
        let mut out: BTreeMap<String, u64> = BTreeMap::new();
        for stage in &self.stages {
            for (name, value) in stage.delta.counts_of(class) {
                *out.entry(name).or_insert(0) += value;
            }
        }
        out
    }

    /// Canonical per-stage rendering of every deterministically
    /// promised counter (`outcome` + `work`): the byte string that
    /// must be identical across `CA_THREADS=1` and `4`.
    pub fn deterministic_fingerprint(&self) -> String {
        self.fingerprint(|snap| snap.deterministic_counts())
    }

    /// Canonical per-stage rendering of the `outcome` counters only:
    /// the byte string that must additionally survive a crash-resume
    /// cycle unchanged.
    pub fn outcome_fingerprint(&self) -> String {
        self.fingerprint(|snap| snap.counts_of(MetricClass::Outcome))
    }

    fn fingerprint(&self, pick: impl Fn(&Snapshot) -> BTreeMap<String, u64>) -> String {
        let mut out = String::new();
        for stage in &self.stages {
            let _ = writeln!(out, "[{}]", stage.name);
            out.push_str(&Snapshot::render_counts(&pick(&stage.delta)));
        }
        out
    }

    /// Renders the `BENCH_profile.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": \"{PROFILE_SCHEMA}\",");
        let _ = writeln!(out, "  \"profile\": \"{}\",", escape_json(&self.label));
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        for (k, v) in &self.meta {
            let _ = writeln!(out, "  \"{}\": {},", escape_json(k), v);
        }
        let _ = writeln!(out, "  \"wall_s\": {:.6},", self.total_wall_s());
        match self.total_cpu_s() {
            Some(cpu) => {
                let _ = writeln!(out, "  \"cpu_s\": {cpu:.6},");
            }
            None => {
                let _ = writeln!(out, "  \"cpu_s\": null,");
            }
        }
        out.push_str("  \"rates\": {");
        let rates: Vec<String> = self
            .rates
            .iter()
            .map(|(k, v)| format!("\"{}\": {:.6}", escape_json(k), v))
            .collect();
        out.push_str(&rates.join(", "));
        out.push_str("},\n");
        out.push_str("  \"stages\": [\n");
        for (i, stage) in self.stages.iter().enumerate() {
            out.push_str(&stage.to_json("    "));
            out.push_str(if i + 1 < self.stages.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    pub fn total_wall_s(&self) -> f64 {
        self.stages.iter().map(|s| s.wall_s).sum()
    }

    pub fn total_cpu_s(&self) -> Option<f64> {
        self.stages.iter().map(|s| s.cpu_s).sum()
    }

    /// Human-readable report: stage table, rates, and the summed
    /// deterministic counters.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== flow profile: {} (threads={}) ==",
            self.label, self.threads
        );
        for (k, v) in &self.meta {
            let _ = writeln!(out, "   {k}: {v}");
        }
        let _ = writeln!(out, "{:<18} {:>9} {:>9}", "stage", "wall_s", "cpu_s");
        for stage in &self.stages {
            let cpu = stage
                .cpu_s
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "-".to_string());
            let _ = writeln!(out, "{:<18} {:>9.3} {:>9}", stage.name, stage.wall_s, cpu);
        }
        let cpu = self
            .total_cpu_s()
            .map(|c| format!("{c:.3}"))
            .unwrap_or_else(|| "-".to_string());
        let _ = writeln!(
            out,
            "{:<18} {:>9.3} {:>9}",
            "total",
            self.total_wall_s(),
            cpu
        );
        if !self.rates.is_empty() {
            let rates: Vec<String> = self
                .rates
                .iter()
                .map(|(k, v)| format!("{k}={:.1}%", v * 100.0))
                .collect();
            let _ = writeln!(out, "rates: {}", rates.join("  "));
        }
        for class in [MetricClass::Outcome, MetricClass::Work] {
            let totals = self.totals_of(class);
            if totals.is_empty() {
                continue;
            }
            let _ = writeln!(out, "counters ({}):", class.as_str());
            for (name, value) in totals {
                let _ = writeln!(out, "  {name:<44} {value}");
            }
        }
        // Histogram distributions summed across stages (e.g. the solver's
        // iterations-to-convergence), rendered as `<=bound:count` pairs.
        let mut hists: BTreeMap<String, HistogramSnapshot> = BTreeMap::new();
        for stage in &self.stages {
            for (name, h) in &stage.delta.histograms {
                if h.count == 0 {
                    continue;
                }
                hists
                    .entry(name.clone())
                    .and_modify(|acc| {
                        for (a, b) in acc.buckets.iter_mut().zip(&h.buckets) {
                            *a += b;
                        }
                        acc.count += h.count;
                        acc.sum += h.sum;
                    })
                    .or_insert_with(|| h.clone());
            }
        }
        if !hists.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in hists {
                let mean = h.sum as f64 / h.count as f64;
                let mut cells: Vec<String> = h
                    .bounds
                    .iter()
                    .zip(&h.buckets)
                    .filter(|(_, &c)| c > 0)
                    .map(|(b, c)| format!("<={b}:{c}"))
                    .collect();
                if let (Some(&overflow), Some(last)) =
                    (h.buckets.get(h.bounds.len()), h.bounds.last())
                {
                    if overflow > 0 {
                        cells.push(format!(">{last}:{overflow}"));
                    }
                }
                let _ = writeln!(
                    out,
                    "  {name:<44} count={} mean={mean:.2} {}",
                    h.count,
                    cells.join(" ")
                );
            }
        }
        out
    }
}

impl StageProfile {
    fn to_json(&self, indent: &str) -> String {
        let mut out = format!("{indent}{{\n");
        let _ = writeln!(out, "{indent}  \"name\": \"{}\",", escape_json(&self.name));
        let _ = writeln!(out, "{indent}  \"wall_s\": {:.6},", self.wall_s);
        match self.cpu_s {
            Some(cpu) => {
                let _ = writeln!(out, "{indent}  \"cpu_s\": {cpu:.6},");
            }
            None => {
                let _ = writeln!(out, "{indent}  \"cpu_s\": null,");
            }
        }
        for (key, class) in [
            ("counts", MetricClass::Outcome),
            ("work", MetricClass::Work),
            ("ops", MetricClass::Ops),
        ] {
            let counts = self.delta.counts_of(class);
            let members: Vec<String> = counts
                .iter()
                .map(|(k, v)| format!("\"{}\": {}", escape_json(k), v))
                .collect();
            let _ = writeln!(out, "{indent}  \"{key}\": {{{}}},", members.join(", "));
        }
        let hists: Vec<String> = self
            .delta
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(k, h)| {
                let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
                let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
                format!(
                    "\"{}\": {{\"bounds\": [{}], \"buckets\": [{}], \"count\": {}, \"sum\": {}}}",
                    escape_json(k),
                    bounds.join(", "),
                    buckets.join(", "),
                    h.count,
                    h.sum
                )
            })
            .collect();
        let _ = writeln!(out, "{indent}  \"hist\": {{{}}},", hists.join(", "));
        let timers: Vec<String> = self
            .delta
            .timers
            .iter()
            .filter(|(_, t)| t.count > 0)
            .map(|(k, t)| {
                format!(
                    "\"{}\": {{\"count\": {}, \"total_ms\": {:.3}, \"max_ms\": {:.3}}}",
                    escape_json(k),
                    t.count,
                    t.total_ns as f64 / 1e6,
                    t.max_ns as f64 / 1e6
                )
            })
            .collect();
        let _ = writeln!(out, "{indent}  \"timers\": {{{}}}", timers.join(", "));
        let _ = write!(out, "{indent}}}");
        out
    }
}

/// The seven crates whose counters a complete profile must carry.
pub const INSTRUMENTED_PREFIXES: [&str; 7] = [
    "ca_exec.",
    "ca_sim.",
    "ca_ml.",
    "ca_core.",
    "ca_store.",
    "ca_bench.",
    "ca_serve.",
];

/// Validates a `BENCH_profile.json` document against schema
/// `ca-obs-profile/1`, including coverage of all seven instrumented
/// crates. Used by the `ca-bench profile-check` CI gate.
pub fn validate_profile_json(text: &str) -> Result<(), String> {
    validate_profile_json_with(text, &INSTRUMENTED_PREFIXES)
}

/// Validates like [`validate_profile_json`] but against an explicit
/// prefix list — `ca-bench profile-check` passes the prefixes of the
/// statically-extracted metric inventory so the gate and the sources
/// can never drift apart.
pub fn validate_profile_json_with(text: &str, required_prefixes: &[&str]) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    match obj.get("schema").and_then(JsonValue::as_str) {
        Some(PROFILE_SCHEMA) => {}
        other => return Err(format!("schema must be {PROFILE_SCHEMA:?}, got {other:?}")),
    }
    obj.get("profile")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field: profile")?;
    let threads = obj
        .get("threads")
        .and_then(JsonValue::as_u64)
        .ok_or("missing integer field: threads")?;
    if threads == 0 {
        return Err("threads must be >= 1".to_string());
    }
    obj.get("wall_s")
        .and_then(JsonValue::as_f64)
        .ok_or("missing number field: wall_s")?;
    match obj.get("cpu_s") {
        Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
        other => return Err(format!("cpu_s must be number or null, got {other:?}")),
    }
    let rates = obj
        .get("rates")
        .and_then(JsonValue::as_object)
        .ok_or("missing object field: rates")?;
    for (key, value) in rates {
        let v = value
            .as_f64()
            .ok_or_else(|| format!("rate {key:?} must be a number"))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("rate {key:?} out of [0,1]: {v}"));
        }
    }
    let stages = obj
        .get("stages")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field: stages")?;
    if stages.is_empty() {
        return Err("stages must be non-empty".to_string());
    }
    let mut seen_counters: Vec<String> = Vec::new();
    for stage in stages {
        let name = stage
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("stage missing string field: name")?;
        stage
            .get("wall_s")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("stage {name:?} missing number field: wall_s"))?;
        match stage.get("cpu_s") {
            Some(JsonValue::Null) | Some(JsonValue::Number(_)) => {}
            other => return Err(format!("stage {name:?} cpu_s invalid: {other:?}")),
        }
        for section in ["counts", "work", "ops"] {
            let map = stage
                .get(section)
                .and_then(JsonValue::as_object)
                .ok_or_else(|| format!("stage {name:?} missing object field: {section}"))?;
            for (counter, value) in map {
                value.as_u64().ok_or_else(|| {
                    format!("stage {name:?} counter {counter:?} must be a non-negative integer")
                })?;
                seen_counters.push(counter.clone());
            }
        }
        let timers = stage
            .get("timers")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("stage {name:?} missing object field: timers"))?;
        for (timer, value) in timers {
            for field in ["count", "total_ms", "max_ms"] {
                value
                    .get(field)
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| format!("timer {timer:?} missing number field: {field}"))?;
            }
        }
    }
    for prefix in required_prefixes {
        if !seen_counters.iter().any(|c| c.starts_with(prefix)) {
            return Err(format!("no counters from instrumented crate {prefix:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let cpu = cpu_time_s().expect("/proc/self/stat parses");
            assert!(cpu >= 0.0);
        }
    }

    #[test]
    fn stage_captures_deltas_and_fingerprints() {
        let mut profile = FlowProfile::new("test", 2);
        profile.stage("alpha", || {
            crate::counter!("obs_test.profile.outcome", Outcome).add(2);
            crate::counter!("obs_test.profile.work", Work).add(3);
            crate::counter!("obs_test.profile.ops", Ops).add(5);
        });
        profile.stage("beta", || {
            crate::counter!("obs_test.profile.outcome", Outcome).inc();
        });
        assert_eq!(profile.counter_total("obs_test.profile.outcome"), 3);
        let det = profile.deterministic_fingerprint();
        assert!(det.contains("[alpha]"));
        assert!(det.contains("obs_test.profile.work=3"));
        assert!(!det.contains("obs_test.profile.ops"));
        let outcome = profile.outcome_fingerprint();
        assert!(outcome.contains("obs_test.profile.outcome=2"));
        assert!(!outcome.contains("obs_test.profile.work"));
    }

    /// A profile whose counters cover all seven instrumented crates
    /// must round-trip through its own validator.
    #[test]
    fn emitted_json_passes_validator() {
        let mut profile = FlowProfile::new("quick", 4);
        profile.set_meta("cells", 8);
        profile.set_rate("cache_hit_rate", 0.5);
        profile.stage("all", || {
            for prefix in INSTRUMENTED_PREFIXES {
                global()
                    .counter(&format!("{prefix}validator_probe"), MetricClass::Work)
                    .inc();
            }
            crate::span::timed("probe", || ());
        });
        let json = profile.to_json();
        validate_profile_json(&json).expect("emitted profile validates");
        let parsed = crate::json::parse(&json).expect("parses");
        assert_eq!(parsed.get("threads").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(parsed.get("cells").and_then(JsonValue::as_u64), Some(8));
    }

    #[test]
    fn validator_rejects_missing_sections() {
        let bad = format!(
            "{{\"schema\": \"{PROFILE_SCHEMA}\", \"profile\": \"q\", \"threads\": 1, \
             \"wall_s\": 0.1, \"cpu_s\": null, \"rates\": {{}}, \"stages\": []}}"
        );
        let err = validate_profile_json(&bad).expect_err("empty stages rejected");
        assert!(err.contains("non-empty"), "{err}");
        let err = validate_profile_json("{}").expect_err("schema required");
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn validator_rejects_out_of_range_rates() {
        let bad = format!(
            "{{\"schema\": \"{PROFILE_SCHEMA}\", \"profile\": \"q\", \"threads\": 1, \
             \"wall_s\": 0.1, \"cpu_s\": 0.2, \"rates\": {{\"x\": 1.5}}, \
             \"stages\": [{{\"name\": \"s\", \"wall_s\": 0.1, \"cpu_s\": null, \
             \"counts\": {{}}, \"work\": {{}}, \"ops\": {{}}, \"timers\": {{}}}}]}}"
        );
        let err = validate_profile_json(&bad).expect_err("rate 1.5 rejected");
        assert!(err.contains("out of [0,1]"), "{err}");
    }
}
