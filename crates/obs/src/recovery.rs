//! Structured surfacing of journal-recovery outcomes.
//!
//! `ca-store` deliberately carries no observability dependency (the
//! dependency points the other way: this crate uses its
//! `write_atomic`), so the store can only *report* recovery through the
//! plain [`ca_store::RecoveryReport`] value. Every layer that opens a
//! store — sessions, shard merges — funnels that report through
//! [`emit_recovery`] so torn tails, CRC mismatches and superseded
//! records land in the JSONL event sink instead of being silently
//! swallowed by the caller.

use crate::event::{info, warn};
use ca_store::RecoveryReport;
use std::path::Path;

/// Emits the outcome of one journal replay as structured events under
/// `target` (the opening layer, e.g. `ca_core.session` or
/// `ca_shard.merge`).
///
/// - Recovered corruption is a **warn** event (mirrored to stderr)
///   carrying the damage kind, byte offset, detail and truncation size,
///   plus an `Ops` counter `ca_store.recovery.reported`.
/// - A clean replay that superseded duplicate records is an **info**
///   event (last-writer-wins is normal after a resumed run, but worth a
///   line in the sink).
/// - A clean, duplicate-free replay emits nothing.
pub fn emit_recovery(target: &str, path: &Path, report: &RecoveryReport) {
    if let Some(ev) = &report.corruption {
        // Environment damage, not work done: `Ops`, so recovery noise
        // never joins determinism fingerprints.
        // ca-audit: allow(D11, recorded here on behalf of obs-free ca-store)
        crate::counter!("ca_store.recovery.reported", Ops).inc();
        let path = path.display().to_string();
        let kind = ev.kind.to_string();
        let offset = ev.offset.to_string();
        let truncated = report.truncated_bytes.to_string();
        let valid = report.valid_records.to_string();
        warn(
            target,
            "journal recovered from corruption",
            &[
                ("path", path.as_str()),
                ("kind", kind.as_str()),
                ("offset", offset.as_str()),
                ("detail", ev.detail.as_str()),
                ("truncated_bytes", truncated.as_str()),
                ("valid_records", valid.as_str()),
            ],
        );
    } else if report.duplicates > 0 {
        let path = path.display().to_string();
        let duplicates = report.duplicates.to_string();
        let valid = report.valid_records.to_string();
        info(
            target,
            "journal replayed with superseded records",
            &[
                ("path", path.as_str()),
                ("duplicates", duplicates.as_str()),
                ("valid_records", valid.as_str()),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_store::{CorruptionEvent, CorruptionKind};

    #[test]
    fn corruption_report_emits_a_warn_event() {
        let before = crate::buffered_events();
        emit_recovery(
            "ca_test.recovery",
            Path::new("/tmp/x.caj"),
            &RecoveryReport {
                valid_records: 3,
                duplicates: 0,
                corruption: Some(CorruptionEvent {
                    offset: 42,
                    kind: CorruptionKind::TornFrame,
                    detail: "frame body short".into(),
                }),
                truncated_bytes: 17,
            },
        );
        assert!(crate::buffered_events() > before);
    }

    #[test]
    fn clean_report_is_silent() {
        let before = crate::buffered_events();
        emit_recovery(
            "ca_test.recovery",
            Path::new("/tmp/x.caj"),
            &RecoveryReport::default(),
        );
        assert_eq!(crate::buffered_events(), before);
    }
}
