//! Monotonic clock facade — the workspace's only door to wall time.
//!
//! Invariant D2 (DESIGN.md §10): `Instant::now` / `SystemTime::now`
//! never appear outside `ca-obs`, so every time read in the flow is
//! visible here and auditable. Two shapes cover every legitimate use:
//!
//! - [`Stopwatch`]: elapsed-time measurement for telemetry (span
//!   timers, quarantine reports, queue-wait latency). Readings are
//!   `ops`-class data and must never feed canonical outputs.
//! - [`Deadline`]: a wall-clock budget checked *between* deterministic
//!   units of work (stimuli, cells), so expiry changes *whether* a run
//!   finishes, never *what* a finished run contains.
//!
//! `ca-audit` enforces the invariant statically; code that needs time
//! imports it from here instead of carrying a suppression pragma.

use std::time::{Duration, Instant};

/// A started monotonic timer; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// A wall-clock budget; `None` inside means "never expires".
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (the unlimited budget).
    pub const fn never() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + d),
        }
    }

    /// Whether the deadline has passed. Always `false` for
    /// [`Deadline::never`].
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_ns() < u64::MAX);
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn never_deadline_never_expires() {
        assert!(!Deadline::never().expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        assert!(Deadline::after(Duration::ZERO).expired());
    }

    #[test]
    fn far_deadline_is_live() {
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
    }
}
