//! Monotonic clock facade — the workspace's only door to wall time.
//!
//! Invariant D2 (DESIGN.md §10): `Instant::now` / `SystemTime::now`
//! never appear outside `ca-obs`, so every time read in the flow is
//! visible here and auditable. Two shapes cover every legitimate use:
//!
//! - [`Stopwatch`]: elapsed-time measurement for telemetry (span
//!   timers, quarantine reports, queue-wait latency). Readings are
//!   `ops`-class data and must never feed canonical outputs.
//! - [`Deadline`]: a wall-clock budget checked *between* deterministic
//!   units of work (stimuli, cells), so expiry changes *whether* a run
//!   finishes, never *what* a finished run contains.
//! - [`Backoff`]: a pure retry-delay schedule (capped exponential). It
//!   never reads a clock or randomness itself — it only *computes*
//!   durations from an attempt number — so retry pacing stays
//!   deterministic and injectable (invariants D2/D3).
//!
//! `ca-audit` enforces the invariant statically; code that needs time
//! imports it from here instead of carrying a suppression pragma.

use std::time::{Duration, Instant};

/// A started monotonic timer; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a stopwatch at the current instant.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (584 years).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Stopwatch {
    fn default() -> Stopwatch {
        Stopwatch::start()
    }
}

/// A wall-clock budget; `None` inside means "never expires".
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// A deadline that never expires (the unlimited budget).
    pub const fn never() -> Deadline {
        Deadline { at: None }
    }

    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Deadline {
        Deadline {
            at: Some(Instant::now() + d),
        }
    }

    /// Whether the deadline has passed. Always `false` for
    /// [`Deadline::never`].
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Time left before expiry: `None` for [`Deadline::never`],
    /// [`Duration::ZERO`] once expired. This is the one sanctioned way
    /// to turn a deadline back into a duration (condvar waits, socket
    /// timeouts, clamping a [`SimBudget`]-style wall-clock budget to the
    /// tighter of two limits) without reading the ambient clock.
    pub fn remaining(&self) -> Option<Duration> {
        self.at
            .map(|at| at.saturating_duration_since(Instant::now()))
    }
}

/// A deterministic capped-exponential retry-delay schedule.
///
/// `delay(n)` is the pause *before* retry `n` (1-based): `base` doubled
/// per prior retry, saturating at `cap`. Attempt 0 — the first try — has
/// no delay. The schedule is a pure function of its inputs: no jitter,
/// no ambient clock, so a supervisor's retry pacing replays identically
/// and tests can inject a zero schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
}

impl Backoff {
    /// A schedule starting at `base` and never exceeding `cap`.
    pub const fn new(base: Duration, cap: Duration) -> Backoff {
        Backoff { base, cap }
    }

    /// The all-zero schedule (retries pause nothing; test default).
    pub const fn none() -> Backoff {
        Backoff {
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// Delay before retry `retry` (1-based): `base * 2^(retry-1)`,
    /// capped. `retry == 0` (the initial attempt) is `ZERO`.
    pub fn delay(&self, retry: u32) -> Duration {
        if retry == 0 {
            return Duration::ZERO;
        }
        // 2^30 * any non-zero base already exceeds every practical cap;
        // clamping the exponent keeps the shift from overflowing.
        let factor = 1u32 << (retry - 1).min(30);
        self.base
            .checked_mul(factor)
            .unwrap_or(self.cap)
            .min(self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        assert!(sw.elapsed_ns() < u64::MAX);
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn never_deadline_never_expires() {
        assert!(!Deadline::never().expired());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        assert!(Deadline::after(Duration::ZERO).expired());
    }

    #[test]
    fn far_deadline_is_live() {
        assert!(!Deadline::after(Duration::from_secs(3600)).expired());
    }

    #[test]
    fn remaining_is_none_for_never_and_zero_after_expiry() {
        assert_eq!(Deadline::never().remaining(), None);
        assert_eq!(
            Deadline::after(Duration::ZERO).remaining(),
            Some(Duration::ZERO)
        );
        let left = Deadline::after(Duration::from_secs(3600))
            .remaining()
            .unwrap();
        assert!(left <= Duration::from_secs(3600));
        assert!(left > Duration::from_secs(3500));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(b.delay(0), Duration::ZERO);
        assert_eq!(b.delay(1), Duration::from_millis(10));
        assert_eq!(b.delay(2), Duration::from_millis(20));
        assert_eq!(b.delay(3), Duration::from_millis(35));
        assert_eq!(b.delay(4), Duration::from_millis(35));
        assert_eq!(b.delay(u32::MAX), Duration::from_millis(35));
    }

    #[test]
    fn backoff_none_is_always_zero() {
        let b = Backoff::none();
        for retry in [0, 1, 5, 31, 64] {
            assert_eq!(b.delay(retry), Duration::ZERO);
        }
    }

    #[test]
    fn backoff_is_pure() {
        let b = Backoff::new(Duration::from_millis(3), Duration::from_secs(1));
        assert_eq!(b.delay(4), b.delay(4));
        assert_eq!(
            b,
            Backoff::new(Duration::from_millis(3), Duration::from_secs(1))
        );
    }
}
