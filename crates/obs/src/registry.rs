//! Thread-safe metric registry: counters, gauges and fixed-bucket
//! histograms, each tagged with a [`MetricClass`] that states its
//! determinism contract (see DESIGN.md §9).
//!
//! The hot path is one relaxed atomic op: call sites cache their
//! [`Counter`] handle in a `OnceLock` (the [`crate::counter!`] macro
//! does this), so the registry's interior mutex is only taken at first
//! touch and at snapshot time.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Determinism contract of a count metric. Timings (spans, histograms
/// of durations) sit outside this taxonomy: they are never part of any
/// determinism check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricClass {
    /// Derivable from the converged outputs: byte-identical across
    /// `CA_THREADS` settings *and* across a crash-resume cycle.
    Outcome,
    /// Work actually performed this process: byte-identical across
    /// `CA_THREADS` settings for the same starting state, but a
    /// resumed run legitimately does less of it (that saving is the
    /// point of the session store).
    Work,
    /// Operational/scheduling telemetry (worker counts, steals, queue
    /// depths): no determinism promise at all.
    Ops,
}

impl MetricClass {
    pub fn as_str(self) -> &'static str {
        match self {
            MetricClass::Outcome => "outcome",
            MetricClass::Work => "work",
            MetricClass::Ops => "ops",
        }
    }
}

/// Cheap cloneable handle to a monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cheap cloneable handle to a last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram: cumulative-style observation counts per
/// upper bound, plus sum and count. Bounds are fixed at registration,
/// so observing is bucket search + two relaxed adds.
#[derive(Debug)]
pub struct HistogramInner {
    bounds: &'static [u64],
    /// One slot per bound plus a final overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Cheap cloneable handle to a fixed-bucket histogram.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    pub fn observe(&self, value: u64) {
        let inner = &self.0;
        let slot = inner
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[slot].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
    }
}

/// Aggregated span timings for one name: call count, total and max
/// elapsed nanoseconds. Always reported separately from counts and
/// excluded from determinism checks.
#[derive(Debug, Default)]
pub struct TimerInner {
    pub count: AtomicU64,
    pub total_ns: AtomicU64,
    pub max_ns: AtomicU64,
}

/// Cheap cloneable handle to a span-timing aggregate.
#[derive(Debug, Clone)]
pub struct Timer(pub(crate) Arc<TimerInner>);

impl Timer {
    pub fn record_ns(&self, ns: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct Tables {
    counters: BTreeMap<String, (MetricClass, Arc<AtomicU64>)>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, (MetricClass, Arc<HistogramInner>)>,
    timers: BTreeMap<String, Arc<TimerInner>>,
}

/// Thread-safe registry of named metrics. One global instance (see
/// [`global`]) serves the whole process; tests may build private ones.
#[derive(Default)]
pub struct MetricRegistry {
    tables: Mutex<Tables>,
}

/// Relocks a poisoned registry: metrics are plain atomics, so the worst
/// a panicking thread leaves behind is a half-registered name, which is
/// still structurally sound.
fn lock_recover(m: &Mutex<Tables>) -> MutexGuard<'_, Tables> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl MetricRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter `name`, creating it with `class` on first
    /// use. The class is fixed by the first registration; later calls
    /// keep it (classes are part of the metric's published contract,
    /// and flip-flopping them would corrupt profile sections).
    pub fn counter(&self, name: &str, class: MetricClass) -> Counter {
        let mut t = lock_recover(&self.tables);
        let (_, cell) = t
            .counters
            .entry(name.to_string())
            .or_insert_with(|| (class, Arc::new(AtomicU64::new(0))));
        Counter(Arc::clone(cell))
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut t = lock_recover(&self.tables);
        let cell = t
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Arc::clone(cell))
    }

    /// Returns the histogram `name`, creating it with the given static
    /// bucket upper bounds on first use.
    pub fn histogram(&self, name: &str, class: MetricClass, bounds: &'static [u64]) -> Histogram {
        let mut t = lock_recover(&self.tables);
        let (_, cell) = t.histograms.entry(name.to_string()).or_insert_with(|| {
            (
                class,
                Arc::new(HistogramInner {
                    bounds,
                    buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                }),
            )
        });
        Histogram(Arc::clone(cell))
    }

    pub fn timer(&self, name: &str) -> Timer {
        let mut t = lock_recover(&self.tables);
        let cell = t
            .timers
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(TimerInner::default()));
        Timer(Arc::clone(cell))
    }

    /// Point-in-time copy of every metric. Counters/histograms/timers
    /// are cumulative, so two snapshots [`Snapshot::delta`] into a
    /// per-stage view.
    pub fn snapshot(&self) -> Snapshot {
        let t = lock_recover(&self.tables);
        Snapshot {
            counters: t
                .counters
                .iter()
                .map(|(k, (class, v))| (k.clone(), (*class, v.load(Ordering::Relaxed))))
                .collect(),
            gauges: t
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: t
                .histograms
                .iter()
                .map(|(k, (class, h))| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            class: *class,
                            bounds: h.bounds,
                            buckets: h
                                .buckets
                                .iter()
                                .map(|b| b.load(Ordering::Relaxed))
                                .collect(),
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
            timers: t
                .timers
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        TimerSnapshot {
                            count: v.count.load(Ordering::Relaxed),
                            total_ns: v.total_ns.load(Ordering::Relaxed),
                            max_ns: v.max_ns.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub class: MetricClass,
    pub bounds: &'static [u64],
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerSnapshot {
    pub count: u64,
    pub total_ns: u64,
    pub max_ns: u64,
}

/// Point-in-time (or, after [`Snapshot::delta`], per-stage) view of a
/// registry's metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, (MetricClass, u64)>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub timers: BTreeMap<String, TimerSnapshot>,
}

impl Snapshot {
    /// `self - earlier` for the cumulative families (counters,
    /// histograms, timers; max_ns keeps the later value). Gauges are
    /// last-value-wins and carried over as-is. Metrics absent from
    /// `earlier` are treated as zero there.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, (class, v))| {
                let base = earlier.counters.get(k).map(|(_, b)| *b).unwrap_or(0);
                (k.clone(), (*class, v.saturating_sub(base)))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut out = h.clone();
                if let Some(base) = earlier.histograms.get(k) {
                    for (slot, b) in out.buckets.iter_mut().zip(&base.buckets) {
                        *slot = slot.saturating_sub(*b);
                    }
                    out.count = out.count.saturating_sub(base.count);
                    out.sum = out.sum.saturating_sub(base.sum);
                }
                (k.clone(), out)
            })
            .collect();
        let timers = self
            .timers
            .iter()
            .map(|(k, t)| {
                let base = earlier.timers.get(k).copied().unwrap_or_default();
                (
                    k.clone(),
                    TimerSnapshot {
                        count: t.count.saturating_sub(base.count),
                        total_ns: t.total_ns.saturating_sub(base.total_ns),
                        max_ns: t.max_ns,
                    },
                )
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            timers,
        }
    }

    /// Counters of one class, by name. Zero-valued entries are
    /// dropped: registration is first-touch, so whether an untouched
    /// counter exists at all depends on process history — filtering
    /// zeros makes renderings a function of the work done, not of
    /// which call sites happened to run earlier.
    pub fn counts_of(&self, class: MetricClass) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(_, (c, v))| *c == class && *v != 0)
            .map(|(k, (_, v))| (k.clone(), *v))
            .collect()
    }

    /// Every nonzero counter covered by a determinism promise
    /// (`outcome` + `work`): the set that must be byte-identical
    /// across `CA_THREADS` settings.
    pub fn deterministic_counts(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(_, (c, v))| *c != MetricClass::Ops && *v != 0)
            .map(|(k, (_, v))| (k.clone(), *v))
            .collect()
    }

    /// Canonical `name=value` line rendering of a count map, for
    /// byte-for-byte comparisons in determinism tests.
    pub fn render_counts(counts: &BTreeMap<String, u64>) -> String {
        let mut out = String::new();
        for (k, v) in counts {
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// The whole snapshot as one machine-readable JSON object (schema
    /// `ca-obs-metrics/1`) — the payload of a ca-serve
    /// `MetricsSnapshot` frame, so a live daemon is scrapeable without
    /// parsing the human-oriented `Stats` text. BTreeMap ordering makes
    /// the rendering canonical for a given snapshot.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"schema\":\"ca-obs-metrics/1\",\"counters\":{");
        for (i, (name, (class, value))) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{{\"class\":\"{}\",\"value\":{value}}}",
                if i == 0 { "" } else { "," },
                crate::json::escape_json(name),
                class.as_str(),
            );
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{value}",
                if i == 0 { "" } else { "," },
                crate::json::escape_json(name),
            );
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let bounds: Vec<String> = h.bounds.iter().map(u64::to_string).collect();
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            let _ = write!(
                out,
                "{}\"{}\":{{\"class\":\"{}\",\"bounds\":[{}],\"buckets\":[{}],\
                 \"count\":{},\"sum\":{}}}",
                if i == 0 { "" } else { "," },
                crate::json::escape_json(name),
                h.class.as_str(),
                bounds.join(","),
                buckets.join(","),
                h.count,
                h.sum,
            );
        }
        out.push_str("},\"timers\":{");
        for (i, (name, t)) in self.timers.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                if i == 0 { "" } else { "," },
                crate::json::escape_json(name),
                t.count,
                t.total_ns,
                t.max_ns,
            );
        }
        out.push_str("}}");
        out
    }
}

/// The process-wide registry every `ca-*` crate records into.
pub fn global() -> &'static MetricRegistry {
    static GLOBAL: OnceLock<MetricRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricRegistry::new)
}

/// Registers (on first use) and bumps a counter in the global registry,
/// caching the handle at the call site so the steady-state cost is one
/// relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr, $class:ident) => {{
        static SITE: std::sync::OnceLock<$crate::Counter> = std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::global().counter($name, $crate::MetricClass::$class))
    }};
}

/// Site-cached histogram handle in the global registry, mirroring
/// [`crate::counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr, $class:ident, $bounds:expr) => {{
        static SITE: std::sync::OnceLock<$crate::Histogram> = std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::global().histogram($name, $crate::MetricClass::$class, $bounds))
    }};
}

/// Site-cached timer handle in the global registry, mirroring
/// [`crate::counter!`] — for explicit duration recording where an RAII
/// span guard does not fit.
#[macro_export]
macro_rules! timer {
    ($name:expr) => {{
        static SITE: std::sync::OnceLock<$crate::Timer> = std::sync::OnceLock::new();
        SITE.get_or_init(|| $crate::global().timer($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip_and_delta() {
        let reg = MetricRegistry::new();
        let c = reg.counter("x.hits", MetricClass::Work);
        c.add(3);
        let before = reg.snapshot();
        c.add(4);
        reg.counter("x.new", MetricClass::Outcome).inc();
        let delta = reg.snapshot().delta(&before);
        assert_eq!(delta.counters["x.hits"], (MetricClass::Work, 4));
        assert_eq!(delta.counters["x.new"], (MetricClass::Outcome, 1));
    }

    #[test]
    fn counter_class_is_fixed_by_first_registration() {
        let reg = MetricRegistry::new();
        reg.counter("a", MetricClass::Outcome);
        let snap = {
            reg.counter("a", MetricClass::Ops).inc();
            reg.snapshot()
        };
        assert_eq!(snap.counters["a"], (MetricClass::Outcome, 1));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("sizes", MetricClass::Ops, &[1, 10, 100]);
        for v in [0, 1, 5, 50, 5000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hs = &snap.histograms["sizes"];
        assert_eq!(hs.buckets, vec![2, 1, 1, 1]);
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 5056);
    }

    #[test]
    fn deterministic_counts_exclude_ops() {
        let reg = MetricRegistry::new();
        reg.counter("o", MetricClass::Outcome).inc();
        reg.counter("w", MetricClass::Work).inc();
        reg.counter("s", MetricClass::Ops).inc();
        let det = reg.snapshot().deterministic_counts();
        assert_eq!(
            det.keys().map(String::as_str).collect::<Vec<_>>(),
            vec!["o", "w"]
        );
        assert_eq!(Snapshot::render_counts(&det), "o=1\nw=1\n");
    }

    #[test]
    fn timers_aggregate() {
        let reg = MetricRegistry::new();
        let t = reg.timer("span");
        t.record_ns(10);
        t.record_ns(30);
        let snap = reg.snapshot();
        let ts = snap.timers["span"];
        assert_eq!((ts.count, ts.total_ns, ts.max_ns), (2, 40, 30));
    }

    #[test]
    fn gauge_last_value_and_max() {
        let reg = MetricRegistry::new();
        let g = reg.gauge("depth");
        g.set(4);
        g.max(2);
        assert_eq!(g.get(), 4);
        g.max(9);
        assert_eq!(reg.snapshot().gauges["depth"], 9);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let c = reg.counter("shared", MetricClass::Work);
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counters["shared"].1, 4000);
    }

    #[test]
    fn snapshot_json_is_parseable_and_complete() {
        let reg = MetricRegistry::new();
        reg.counter("alpha.count", MetricClass::Outcome).add(3);
        reg.gauge("alpha.depth").set(7);
        reg.histogram("alpha.lat", MetricClass::Ops, &[10, 100])
            .observe(42);
        reg.timer("alpha.span").record_ns(1_500);
        let json = reg.snapshot().to_json();
        let parsed = crate::json::parse(&json).expect("snapshot JSON parses");
        assert_eq!(
            parsed.get("schema").and_then(|v| v.as_str()),
            Some("ca-obs-metrics/1")
        );
        let counters = parsed.get("counters").expect("counters object");
        let alpha = counters.get("alpha.count").expect("counter present");
        assert_eq!(alpha.get("class").and_then(|v| v.as_str()), Some("outcome"));
        assert_eq!(alpha.get("value").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(
            parsed
                .get("gauges")
                .and_then(|g| g.get("alpha.depth"))
                .and_then(|v| v.as_f64()),
            Some(7.0)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("alpha.lat"))
            .expect("histogram present");
        assert_eq!(hist.get("count").and_then(|v| v.as_f64()), Some(1.0));
        let timer = parsed
            .get("timers")
            .and_then(|t| t.get("alpha.span"))
            .expect("timer present");
        assert_eq!(timer.get("total_ns").and_then(|v| v.as_f64()), Some(1500.0));
    }
}
