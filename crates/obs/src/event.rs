//! Structured JSONL event sink.
//!
//! Events replace ad-hoc `eprintln!`s: each is one JSON object with a
//! level, target (the emitting crate/module), message and flat string
//! fields. Events buffer in memory and [`flush`] writes them as a JSON
//! Lines file via `ca_store::write_atomic`, so a flushed event log is
//! always a whole, parseable file — never a torn tail.
//!
//! Env control:
//! - `CA_OBS` — minimum captured level: `off`, `error`, `warn`,
//!   `info` (default) or `debug`.
//! - `CA_OBS_PATH` — where [`flush`] writes the JSONL file; unset
//!   means flush is a no-op.
//!
//! Warn and error events also mirror to stderr (unless captured off),
//! so converting an `eprintln!` warning into [`warn`] changes nothing
//! for a default invocation — the structured record is additive.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::json::escape_json;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Severity of an event, lowest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Parsed value of the `CA_OBS` env var: `None` is `off`.
fn parse_level(raw: &str) -> Result<Option<Level>, String> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "none" => Ok(None),
        "error" => Ok(Some(Level::Error)),
        "warn" | "warning" => Ok(Some(Level::Warn)),
        "" | "info" | "1" | "on" => Ok(Some(Level::Info)),
        "debug" | "all" => Ok(Some(Level::Debug)),
        other => Err(format!(
            "CA_OBS must be off|error|warn|info|debug, got {other:?}"
        )),
    }
}

/// Whether an event also echoes to stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mirror {
    /// Echo iff the level is warn or error — the default, preserving
    /// the visibility of the `eprintln!` paths events replace.
    Auto,
    /// Always echo (status lines a CLI user expects to see).
    Always,
    /// Never echo (high-volume diagnostics).
    Never,
}

/// Buffered events are capped so a pathological run cannot grow the
/// sink without bound; overflow is counted and reported at flush.
const EVENT_CAP: usize = 65_536;

#[derive(Default)]
struct SinkState {
    lines: Vec<String>,
    seq: u64,
    dropped: u64,
}

struct Sink {
    level: Option<Level>,
    state: Mutex<SinkState>,
}

fn lock_recover(m: &Mutex<SinkState>) -> MutexGuard<'_, SinkState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Sink {
    fn new(level: Option<Level>) -> Self {
        Sink {
            level,
            state: Mutex::new(SinkState::default()),
        }
    }

    fn emit(&self, level: Level, target: &str, msg: &str, fields: &[(&str, &str)], mirror: Mirror) {
        let Some(min) = self.level else { return };
        let echo = match mirror {
            Mirror::Auto => level >= Level::Warn,
            Mirror::Always => true,
            Mirror::Never => false,
        };
        if echo {
            eprintln!("[{target}] {msg}");
        }
        if level < min {
            return;
        }
        let ts_us = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros())
            .unwrap_or(0);
        let mut state = lock_recover(&self.state);
        if state.lines.len() >= EVENT_CAP {
            state.dropped += 1;
            return;
        }
        state.seq += 1;
        let mut line = format!(
            "{{\"seq\":{},\"ts_us\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
            state.seq,
            ts_us,
            level.as_str(),
            escape_json(target),
            escape_json(msg),
        );
        for (k, v) in fields {
            line.push_str(&format!(",\"{}\":\"{}\"", escape_json(k), escape_json(v)));
        }
        line.push('}');
        state.lines.push(line);
    }

    /// Renders the buffer as one JSONL document (with a final overflow
    /// marker if events were dropped) without clearing it.
    fn render(&self) -> String {
        let state = lock_recover(&self.state);
        let mut out = String::new();
        for line in &state.lines {
            out.push_str(line);
            out.push('\n');
        }
        if state.dropped > 0 {
            out.push_str(&format!(
                "{{\"seq\":{},\"level\":\"warn\",\"target\":\"ca_obs\",\"msg\":\"event buffer overflow\",\"dropped\":\"{}\"}}\n",
                state.seq + 1,
                state.dropped
            ));
        }
        out
    }

    fn len(&self) -> usize {
        lock_recover(&self.state).lines.len()
    }

    /// Takes the buffered lines out, resetting the overflow counter
    /// but keeping `seq` monotone across drains.
    fn drain(&self) -> Vec<String> {
        let mut state = lock_recover(&self.state);
        state.dropped = 0;
        std::mem::take(&mut state.lines)
    }
}

fn global_sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(|| {
        let level = match std::env::var("CA_OBS") {
            Ok(raw) => match parse_level(&raw) {
                Ok(level) => level,
                Err(err) => {
                    eprintln!("[ca_obs] warning: {err}; defaulting to info");
                    Some(Level::Info)
                }
            },
            Err(_) => Some(Level::Info),
        };
        Sink::new(level)
    })
}

/// Records a structured event in the global sink.
pub fn event(level: Level, target: &str, msg: &str, fields: &[(&str, &str)], mirror: Mirror) {
    global_sink().emit(level, target, msg, fields, mirror);
}

/// Warn-level event; mirrors to stderr like the `eprintln!` it
/// replaces.
pub fn warn(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Warn, target, msg, fields, Mirror::Auto);
}

/// Info-level event that still echoes to stderr — for CLI status lines
/// the user expects to see regardless of capture level.
pub fn info_status(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Info, target, msg, fields, Mirror::Always);
}

/// Prints a machine-readable protocol marker to stdout and flushes it.
///
/// Test harnesses that drive the flow as a child process (the
/// crash-recovery SIGKILL harness) grep stdout for fixed markers like
/// `CA-SESSION-HALT`. Those are inter-process protocol, not logging, so
/// they bypass the event sink — but they still live here so library
/// crates stay free of raw `println!` (invariant D5, DESIGN.md §10).
pub fn protocol_marker(msg: &str) {
    use std::io::Write as _;
    println!("{msg}");
    let _ = std::io::stdout().flush();
}

/// Info-level event with no stderr echo.
pub fn info(target: &str, msg: &str, fields: &[(&str, &str)]) {
    event(Level::Info, target, msg, fields, Mirror::Never);
}

/// Number of events currently buffered (diagnostic).
pub fn buffered_events() -> usize {
    global_sink().len()
}

/// Takes the buffered event lines out of the sink, emptying it. For
/// harnesses that compare event streams across phases of one process
/// (`tests/trace_determinism.rs`); ordinary flows use [`flush`], which
/// keeps the buffer. `seq` stays monotone across drains.
pub fn drain_events() -> Vec<String> {
    global_sink().drain()
}

/// Writes the buffered events as JSONL to `CA_OBS_PATH` (atomic tmp +
/// fsync + rename). Returns the path written, or `None` when
/// `CA_OBS_PATH` is unset or capture is off. The buffer is kept, so
/// repeated flushes rewrite a superset — crash-safe checkpointing, not
/// log rotation.
pub fn flush() -> std::io::Result<Option<PathBuf>> {
    let Ok(path) = std::env::var("CA_OBS_PATH") else {
        return Ok(None);
    };
    if path.trim().is_empty() {
        return Ok(None);
    }
    let path = PathBuf::from(path);
    flush_to(&path)?;
    Ok(Some(path))
}

/// Writes the buffered events as JSONL to an explicit path.
pub fn flush_to(path: &std::path::Path) -> std::io::Result<()> {
    ca_store::write_atomic(path, global_sink().render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_accepts_documented_values() {
        assert_eq!(parse_level("off"), Ok(None));
        assert_eq!(parse_level("ERROR"), Ok(Some(Level::Error)));
        assert_eq!(parse_level("warn"), Ok(Some(Level::Warn)));
        assert_eq!(parse_level(""), Ok(Some(Level::Info)));
        assert_eq!(parse_level("debug"), Ok(Some(Level::Debug)));
        assert!(parse_level("loud").is_err());
    }

    #[test]
    fn sink_filters_below_min_level_and_renders_jsonl() {
        let sink = Sink::new(Some(Level::Warn));
        sink.emit(Level::Info, "t", "dropped", &[], Mirror::Never);
        sink.emit(
            Level::Warn,
            "ca_exec",
            "bad CA_THREADS",
            &[("raw", "-3")],
            Mirror::Never,
        );
        let out = sink.render();
        assert_eq!(out.lines().count(), 1);
        assert!(out.contains("\"level\":\"warn\""));
        assert!(out.contains("\"target\":\"ca_exec\""));
        assert!(out.contains("\"raw\":\"-3\""));
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn off_sink_captures_nothing() {
        let sink = Sink::new(None);
        sink.emit(Level::Error, "t", "x", &[], Mirror::Always);
        assert_eq!(sink.render(), "");
    }

    #[test]
    fn escaped_payloads_stay_parseable() {
        let sink = Sink::new(Some(Level::Debug));
        sink.emit(
            Level::Info,
            "t",
            "quote \" and \\ back\nnewline",
            &[("k\"ey", "v\tal")],
            Mirror::Never,
        );
        let out = sink.render();
        let parsed = crate::json::parse(out.trim()).expect("escaped event parses");
        assert_eq!(
            parsed.get("msg").and_then(|v| v.as_str()),
            Some("quote \" and \\ back\nnewline")
        );
        assert_eq!(parsed.get("k\"ey").and_then(|v| v.as_str()), Some("v\tal"));
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let sink = Sink::new(Some(Level::Debug));
        for i in 0..(EVENT_CAP + 5) {
            sink.emit(Level::Info, "t", &i.to_string(), &[], Mirror::Never);
        }
        assert_eq!(sink.len(), EVENT_CAP);
        let out = sink.render();
        assert!(out.contains("event buffer overflow"));
        assert!(out.contains("\"dropped\":\"5\""));
    }
}
