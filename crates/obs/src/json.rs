//! Minimal JSON support: string escaping for the hand-rendered
//! emitters and a small recursive-descent parser used to validate
//! `BENCH_profile.json` and event lines in tests and the CI gate.
//!
//! The workspace is hermetic (no serde), so emitters render JSON by
//! hand; this parser closes the loop by letting the same process check
//! that what it wrote is well-formed and schema-complete.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parsed JSON value. Numbers keep their f64 reading plus an exact u64
/// when the text was a plain non-negative integer (count metrics).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
    /// Object member lookup; `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|o| o.get(key))
    }
}

/// Parses a complete JSON document, rejecting trailing garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at offset {}, found {:?}",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        other => Err(format!(
            "unexpected {:?} at offset {}",
            other.map(|&x| x as char),
            *pos
        )),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|e| format!("bad number {text:?}: {e}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        // Surrogates are not emitted by our writers;
                        // map unpaired ones to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this
                // is always a valid boundary walk).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty continuation")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => return Err(format!("expected , or ] in array, found {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            other => return Err(format!("expected , or }} in object, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escapes() {
        let raw = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("{{\"k\":\"{}\"}}", escape_json(raw));
        let parsed = parse(&doc).expect("escaped doc parses");
        assert_eq!(parsed.get("k").and_then(|v| v.as_str()), Some(raw));
    }

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a":[1,2.5,-3],"b":{"c":true,"d":null},"e":"x"}"#;
        let v = parse(doc).expect("parses");
        let a = v.get("a").and_then(|v| v.as_array()).expect("array");
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(2.5));
        assert_eq!(a[2].as_u64(), None);
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&JsonValue::Bool(true))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "{} trailing",
            "tru",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parses_existing_bench_artifacts() {
        // The parallel bench artifact checked into the repo root is the
        // style every hand-rendered emitter follows.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_parallel.json"
        ));
        if let Ok(text) = text {
            let v = parse(&text).expect("BENCH_parallel.json parses");
            assert!(v.get("threads").is_some());
        }
    }
}
