//! RAII span timers with nesting.
//!
//! A [`Span`] measures wall time from creation to drop and records it
//! into a [`Timer`] aggregate in the global registry. Spans nest via a
//! thread-local stack: a span opened while another is live on the same
//! thread records under the dotted path `parent/child`, so profiles
//! show where inner phases sit without any explicit plumbing.
//!
//! Span timings are wall-clock observations: they are always reported
//! separately from count metrics and never take part in determinism
//! checks (DESIGN.md §9).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::registry::{global, Timer};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Live timing span; records its elapsed time on drop. Use as an RAII
/// guard (`let _span = ca_obs::span("fit");`) so nesting stays LIFO.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    start: Instant,
}

/// Opens a span named `name`, nested under any span already live on
/// this thread.
pub fn span(name: &str) -> Span {
    open(name, true)
}

/// Opens a span that ignores any enclosing span on this thread. For
/// per-item work that runs inline at `CA_THREADS=1` but on a worker
/// thread otherwise: the recorded timer name stays the same either
/// way. Children opened inside it still nest under it.
pub fn span_root(name: &str) -> Span {
    open(name, false)
}

fn open(name: &str, nest: bool) -> Span {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) if nest => format!("{parent}/{name}"),
            _ => name.to_string(),
        };
        stack.push(path.clone());
        path
    });
    Span {
        timer: global().timer(&path),
        start: Instant::now(),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.timer.record_ns(ns);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Times a closure under a span and returns its result; convenience
/// over the RAII guard when the phase is a single call.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_dotted_paths() {
        let before = global().snapshot();
        timed("obs-test-outer", || {
            timed("inner", || {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        });
        let delta = global().snapshot().delta(&before);
        assert_eq!(delta.timers["obs-test-outer"].count, 1);
        let inner = delta.timers["obs-test-outer/inner"];
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns >= 1_000_000, "slept >= 1ms: {inner:?}");
        assert!(delta.timers["obs-test-outer"].total_ns >= inner.total_ns);
    }

    #[test]
    fn span_root_ignores_enclosing_spans() {
        let before = global().snapshot();
        timed("obs-test-enclosing", || {
            drop(span_root("obs-test-rooted"));
        });
        let delta = global().snapshot().delta(&before);
        assert_eq!(delta.timers["obs-test-rooted"].count, 1);
        assert!(!delta
            .timers
            .contains_key("obs-test-enclosing/obs-test-rooted"));
    }

    #[test]
    fn sibling_threads_do_not_share_nesting() {
        let before = global().snapshot();
        let _outer = span("obs-test-main");
        std::thread::scope(|s| {
            s.spawn(|| timed("obs-test-worker", || ()));
        });
        drop(_outer);
        let delta = global().snapshot().delta(&before);
        // The worker thread has its own empty stack, so its span is
        // top-level, not nested under the main thread's.
        assert_eq!(delta.timers["obs-test-worker"].count, 1);
        assert!(!delta.timers.contains_key("obs-test-main/obs-test-worker"));
    }
}
