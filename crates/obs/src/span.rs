//! RAII span timers with nesting.
//!
//! A [`Span`] measures wall time from creation to drop and records it
//! into a [`Timer`] aggregate in the global registry. Spans nest via a
//! thread-local stack: a span opened while another is live on the same
//! thread records under the dotted path `parent/child`, so profiles
//! show where inner phases sit without any explicit plumbing.
//!
//! Span timings are wall-clock observations: they are always reported
//! separately from count metrics and never take part in determinism
//! checks (DESIGN.md §9).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::registry::{global, Timer};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    // (token, path): the token lets a span's drop remove *its own*
    // entry by identity. A blind `pop()` would corrupt nesting paths
    // whenever guards drop out of LIFO order (a span stored in a
    // struct, or held across an early return past a younger sibling).
    static SPAN_STACK: RefCell<Vec<(u64, String)>> = const { RefCell::new(Vec::new()) };
    static NEXT_SPAN_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

/// Live timing span; records its elapsed time on drop. Use as an RAII
/// guard (`let _span = ca_obs::span("fit");`) so nesting stays LIFO.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    start: Instant,
    token: u64,
}

/// Opens a span named `name`, nested under any span already live on
/// this thread.
pub fn span(name: &str) -> Span {
    open(name, true)
}

/// Opens a span that ignores any enclosing span on this thread. For
/// per-item work that runs inline at `CA_THREADS=1` but on a worker
/// thread otherwise: the recorded timer name stays the same either
/// way. Children opened inside it still nest under it.
pub fn span_root(name: &str) -> Span {
    open(name, false)
}

fn open(name: &str, nest: bool) -> Span {
    let token = NEXT_SPAN_TOKEN.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    });
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some((_, parent)) if nest => format!("{parent}/{name}"),
            _ => name.to_string(),
        };
        stack.push((token, path.clone()));
        path
    });
    Span {
        timer: global().timer(&path),
        start: Instant::now(),
        token,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.timer.record_ns(ns);
        SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Remove by identity, not position: this span's entry may no
            // longer be on top if guards dropped out of LIFO order.
            if let Some(at) = stack.iter().rposition(|(token, _)| *token == self.token) {
                stack.remove(at);
            }
        });
    }
}

/// Times a closure under a span and returns its result; convenience
/// over the RAII guard when the phase is a single call.
pub fn timed<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let _span = span(name);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_dotted_paths() {
        let before = global().snapshot();
        timed("obs-test-outer", || {
            timed("inner", || {
                std::thread::sleep(std::time::Duration::from_millis(1))
            });
        });
        let delta = global().snapshot().delta(&before);
        assert_eq!(delta.timers["obs-test-outer"].count, 1);
        let inner = delta.timers["obs-test-outer/inner"];
        assert_eq!(inner.count, 1);
        assert!(inner.total_ns >= 1_000_000, "slept >= 1ms: {inner:?}");
        assert!(delta.timers["obs-test-outer"].total_ns >= inner.total_ns);
    }

    #[test]
    fn span_root_ignores_enclosing_spans() {
        let before = global().snapshot();
        timed("obs-test-enclosing", || {
            drop(span_root("obs-test-rooted"));
        });
        let delta = global().snapshot().delta(&before);
        assert_eq!(delta.timers["obs-test-rooted"].count, 1);
        assert!(!delta
            .timers
            .contains_key("obs-test-enclosing/obs-test-rooted"));
    }

    #[test]
    fn non_lifo_drops_pop_by_identity_not_position() {
        let before = global().snapshot();
        let outer = span("obs-test-nonlifo-outer");
        let inner = span("obs-test-nonlifo-inner");
        // Drop the *outer* guard first: it must remove its own entry,
        // leaving the inner span's path intact on the stack...
        drop(outer);
        // ...so a span opened now still nests under the live inner span
        // instead of landing at top level (the old blind-pop bug left
        // the outer path on the stack here).
        drop(span("obs-test-nonlifo-late"));
        drop(inner);
        let delta = global().snapshot().delta(&before);
        assert_eq!(delta.timers["obs-test-nonlifo-outer"].count, 1);
        let nested = "obs-test-nonlifo-outer/obs-test-nonlifo-inner";
        assert_eq!(delta.timers[nested].count, 1);
        let late = format!("{nested}/obs-test-nonlifo-late");
        assert_eq!(delta.timers[late.as_str()].count, 1);
        assert!(!delta.timers.contains_key("obs-test-nonlifo-late"));
    }

    #[test]
    fn sibling_threads_do_not_share_nesting() {
        let before = global().snapshot();
        let _outer = span("obs-test-main");
        std::thread::scope(|s| {
            s.spawn(|| timed("obs-test-worker", || ()));
        });
        drop(_outer);
        let delta = global().snapshot().delta(&before);
        // The worker thread has its own empty stack, so its span is
        // top-level, not nested under the main thread's.
        assert_eq!(delta.timers["obs-test-worker"].count, 1);
        assert!(!delta.timers.contains_key("obs-test-main/obs-test-worker"));
    }
}
