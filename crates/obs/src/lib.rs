//! `ca-obs` — dependency-light observability for the cell-aware stack.
//!
//! One crate, five pieces (DESIGN.md §9, §14):
//!
//! - [`MetricRegistry`]: thread-safe counters, gauges and fixed-bucket
//!   histograms, each counter tagged with a [`MetricClass`] stating its
//!   determinism contract (`outcome` / `work` / `ops`). The hot path is
//!   a single relaxed atomic op via site-cached handles
//!   ([`counter!`] / [`histogram!`]), cheap enough to stay always-on.
//! - Span timers ([`span`] / [`timed`]): RAII wall-clock phases that
//!   nest via a thread-local stack into `parent/child` paths. Timings
//!   are always reported apart from counts and never enter determinism
//!   checks.
//! - A structured JSONL event sink ([`event`], [`warn`],
//!   [`info_status`], [`flush`]) controlled by `CA_OBS` /
//!   `CA_OBS_PATH`, replacing ad-hoc `eprintln!`s; warn/error events
//!   mirror to stderr so default behavior is unchanged, and flushes go
//!   through `ca_store::write_atomic` so the log file is never torn.
//! - [`FlowProfile`]: per-stage registry snapshots + wall/CPU clocks,
//!   rendered as `BENCH_profile.json` (schema `ca-obs-profile/1`, see
//!   [`validate_profile_json`]) and a human-readable table.
//! - [`trace`]: deterministic distributed tracing — campaign trace
//!   ids, parent-linked spans with FNV-derived ids, context
//!   propagation across threads (`ca-exec`), processes (`CA_SHARD_TRACE*`)
//!   and sockets (ca-serve wire v2), recorded as JSONL trace events
//!   through the sink and stitched by `ca-bench trace` into a
//!   Chrome/Perfetto `trace_event` timeline (DESIGN.md §14).
//!
//! Plus two cross-cutting helpers: [`clock`] is the workspace's only
//! door to wall time (and hosts the pure [`Backoff`] retry schedule),
//! and [`emit_recovery`] turns `ca_store` journal-recovery reports into
//! structured events wherever a store is opened.
//!
//! The determinism invariant the whole design serves: every `outcome`
//! and `work` counter is byte-identical across `CA_THREADS` settings,
//! and `outcome` counters additionally survive a crash-resume cycle
//! unchanged. `tests/obs_determinism.rs` and the crash-recovery
//! harness enforce this.

pub mod clock;
pub mod event;
pub mod json;
pub mod profile;
pub mod recovery;
pub mod registry;
pub mod span;
pub mod trace;

pub use clock::{Backoff, Deadline, Stopwatch};
pub use event::{
    buffered_events, drain_events, event, flush, flush_to, info, info_status, protocol_marker,
    warn, Level, Mirror,
};
pub use json::{escape_json, parse as parse_json, JsonValue};
pub use profile::{
    cpu_time_s, validate_profile_json, validate_profile_json_with, FlowProfile, StageProfile,
    INSTRUMENTED_PREFIXES, PROFILE_SCHEMA,
};
pub use recovery::emit_recovery;
pub use registry::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricClass, MetricRegistry, Snapshot,
    Timer, TimerSnapshot,
};
pub use span::{span, span_root, timed, Span};
