//! Deterministic distributed tracing (DESIGN.md §14).
//!
//! Every campaign gets a trace id and every unit of work — a serve
//! request, a shard attempt, a session cell, a packed-sim batch — gets
//! a span id with an explicit parent, recorded as structured JSONL
//! events through the [`event`](crate::event) sink (target
//! [`TARGET`]). Ids are *derived*, never drawn: FNV-1a over the trace
//! id, the parent span id, the span name and a per-parent sequence
//! counter (invariant D3 — no ambient randomness). Two runs of the
//! same campaign therefore produce the same span tree, byte for byte,
//! regardless of `CA_THREADS` — the property
//! `tests/trace_determinism.rs` enforces.
//!
//! Context crosses the boundaries we own three ways:
//!
//! - **Threads**: [`fork`] captures the calling thread's context and
//!   [`ForkPoint::adopt`] re-establishes it on a worker thread, keyed
//!   by the item index so sibling items derive disjoint — but
//!   schedule-independent — child ids (`ca-exec` does this for every
//!   mapped item).
//! - **Processes**: a [`TraceContext`] serializes to the
//!   `CA_SHARD_TRACE_ID` / `CA_SHARD_TRACE_SPAN` / `CA_SHARD_TRACE_SEED`
//!   env vars ([`ENV_TRACE_ID`] &c.); shard workers [`adopt`] it at
//!   startup so their spans parent under the supervisor's shard-attempt
//!   span.
//! - **Sockets**: the `ca-serve` wire protocol v2 carries the context
//!   in `Characterize` frames; the server adopts it per request.
//!
//! Clock alignment: span events carry `t0_us`/`dur_us` on a
//! process-local monotonic clock ([`mono_us`]). The first span each
//! process emits is preceded by one *anchor* event pairing that clock
//! with the sink's unix-epoch `ts_us`; the `ca-bench trace` stitcher
//! subtracts the pair to place every process on one global timeline.
//!
//! Tracing is off unless `CA_TRACE` is set truthy (or a harness forces
//! it with [`set_enabled`]); disabled spans are inert and cost one
//! atomic load.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::clock::Stopwatch;
use crate::event::{event, Level, Mirror};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Once, OnceLock};

/// Event-sink target of every trace event (spans and anchors).
pub const TARGET: &str = "ca_trace";

/// Env var carrying a propagated trace id (16 lowercase hex digits).
pub const ENV_TRACE_ID: &str = "CA_SHARD_TRACE_ID";
/// Env var carrying the parent span id.
pub const ENV_TRACE_SPAN: &str = "CA_SHARD_TRACE_SPAN";
/// Env var carrying the fork seed of the parent context.
pub const ENV_TRACE_SEED: &str = "CA_SHARD_TRACE_SEED";

// --- deterministic id derivation (FNV-1a 64) -------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Derivation-domain tags: distinct byte per derivation shape so a
/// sequential child, a keyed child and a fork seed can never collide
/// even from identical numeric inputs.
const TAG_TRACE: u8 = b'T';
const TAG_ROOT: u8 = b'R';
const TAG_CHILD: u8 = b'C';
const TAG_FORK: u8 = b'F';

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// The propagated form of a live trace position: enough to derive the
/// ids of any children created under it, in this thread or another
/// process. `child_seed` namespaces forked copies of the same parent
/// span so concurrent items derive disjoint child ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Campaign-wide trace id.
    pub trace_id: u64,
    /// Span id of the nearest enclosing span.
    pub span_id: u64,
    /// Fork namespace; `0` for an unforked context.
    pub child_seed: u64,
}

impl TraceContext {
    /// Derives the id of child number `key` named `name` under this
    /// context. Pure: same inputs, same id, on any thread or host.
    fn child_id(&self, name: &str, key: u64) -> u64 {
        let mut h = fnv_bytes(FNV_OFFSET, &[TAG_CHILD]);
        h = fnv_u64(h, self.trace_id);
        h = fnv_u64(h, self.span_id);
        h = fnv_u64(h, self.child_seed);
        h = fnv_u64(h, key);
        fnv_bytes(h, name.as_bytes())
    }
}

/// Derives a campaign trace id from a caller-supplied fingerprint
/// (e.g. a folded library fingerprint) and the role opening it.
pub fn derive_trace_id(fingerprint: u64, role: &str) -> u64 {
    let h = fnv_bytes(FNV_OFFSET, &[TAG_TRACE]);
    fnv_bytes(fnv_u64(h, fingerprint), role.as_bytes())
}

fn derive_root_span_id(trace_id: u64, name: &str) -> u64 {
    let h = fnv_bytes(FNV_OFFSET, &[TAG_ROOT]);
    fnv_bytes(fnv_u64(h, trace_id), name.as_bytes())
}

fn derive_fork_seed(ctx: &TraceContext, key: u64) -> u64 {
    let mut h = fnv_bytes(FNV_OFFSET, &[TAG_FORK]);
    h = fnv_u64(h, ctx.trace_id);
    h = fnv_u64(h, ctx.span_id);
    h = fnv_u64(h, ctx.child_seed);
    fnv_u64(h, key)
}

// --- enablement ------------------------------------------------------

/// Process-local override of the `CA_TRACE` switch:
/// 0 = none (read the environment), 1 = force on, 2 = force off.
static TRACE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn env_enabled() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| match std::env::var("CA_TRACE") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !(v.is_empty() || v == "0" || v == "off" || v == "false")
        }
        Err(_) => false,
    })
}

/// Programmatically forces tracing on/off (`Some`) or restores the
/// `CA_TRACE` environment switch (`None`). For benches and tests that
/// must pin one mode without mutating the process environment.
pub fn set_enabled(mode: Option<bool>) {
    let v = match mode {
        None => 0,
        Some(true) => 1,
        Some(false) => 2,
    };
    TRACE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether tracing is on. The environment value is read once per
/// process; [`set_enabled`] wins over it.
pub fn enabled() -> bool {
    match TRACE_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => env_enabled(),
    }
}

// --- thread-local context stack --------------------------------------

struct Frame {
    ctx: TraceContext,
    next_child: u64,
    token: u64,
}

thread_local! {
    static FRAMES: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

fn push_frame(ctx: TraceContext) -> u64 {
    let token = NEXT_TOKEN.with(|t| {
        let v = t.get();
        t.set(v + 1);
        v
    });
    FRAMES.with(|frames| {
        frames.borrow_mut().push(Frame {
            ctx,
            next_child: 0,
            token,
        })
    });
    token
}

/// Removes the frame with `token` wherever it sits — by identity, not
/// position, so a guard dropped out of LIFO order can never pop a
/// sibling's frame (the same hazard fixed in [`crate::span`]).
fn pop_frame(token: u64) {
    FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        if let Some(at) = frames.iter().rposition(|f| f.token == token) {
            frames.remove(at);
        }
    });
}

/// The calling thread's innermost trace context, if any.
pub fn current() -> Option<TraceContext> {
    if !enabled() {
        return None;
    }
    FRAMES.with(|frames| frames.borrow().last().map(|f| f.ctx))
}

// --- clock + anchor --------------------------------------------------

fn process_epoch() -> &'static Stopwatch {
    static EPOCH: OnceLock<Stopwatch> = OnceLock::new();
    EPOCH.get_or_init(Stopwatch::start)
}

/// Microseconds on the process-local monotonic trace clock.
pub fn mono_us() -> u64 {
    process_epoch().elapsed_ns() / 1_000
}

/// Emits this process's clock-anchor event (once; later calls no-op).
/// The sink stamps the line with unix-epoch `ts_us`; the `mono_us`
/// field is the same instant on the trace clock, so a stitcher can
/// place every event of this process on the epoch timeline.
pub fn emit_anchor() {
    static ANCHOR: Once = Once::new();
    ANCHOR.call_once(|| {
        let mono = mono_us().to_string();
        let pid = std::process::id().to_string();
        event(
            Level::Info,
            TARGET,
            "anchor",
            &[("mono_us", mono.as_str()), ("pid", pid.as_str())],
            Mirror::Never,
        );
    });
}

// --- spans -----------------------------------------------------------

/// A live trace span; emits one event and unwinds its frame on drop.
/// Inert (no event, no frame) when tracing is disabled or — for
/// [`span`] — when no context is active on the thread.
#[derive(Debug)]
pub struct TraceSpan {
    live: Option<LiveSpan>,
}

#[derive(Debug)]
struct LiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    name: String,
    t0_us: u64,
    token: u64,
}

impl TraceSpan {
    const DEAD: TraceSpan = TraceSpan { live: None };

    /// The context children of this span derive from, if live.
    pub fn context(&self) -> Option<TraceContext> {
        self.live.as_ref().map(|s| TraceContext {
            trace_id: s.trace_id,
            span_id: s.span_id,
            child_seed: 0,
        })
    }

    /// This span's id, if live (diagnostics/tests).
    pub fn id(&self) -> Option<u64> {
        self.live.as_ref().map(|s| s.span_id)
    }

    fn open(trace_id: u64, span_id: u64, parent_id: u64, name: &str) -> TraceSpan {
        let token = push_frame(TraceContext {
            trace_id,
            span_id,
            child_seed: 0,
        });
        TraceSpan {
            live: Some(LiveSpan {
                trace_id,
                span_id,
                parent_id,
                name: name.to_string(),
                t0_us: mono_us(),
                token,
            }),
        }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        emit_anchor();
        let dur = mono_us().saturating_sub(live.t0_us).to_string();
        let t0 = live.t0_us.to_string();
        let trace = format!("{:016x}", live.trace_id);
        let span = format!("{:016x}", live.span_id);
        let parent = format!("{:016x}", live.parent_id);
        event(
            Level::Info,
            TARGET,
            "span",
            &[
                ("trace", trace.as_str()),
                ("span", span.as_str()),
                ("parent", parent.as_str()),
                ("name", live.name.as_str()),
                ("t0_us", t0.as_str()),
                ("dur_us", dur.as_str()),
            ],
            Mirror::Never,
        );
        pop_frame(live.token);
    }
}

/// Opens a campaign root span: trace id from `fingerprint` + `role`
/// ([`derive_trace_id`]), span id from the trace id + `name`, parent
/// `0`. Inert when tracing is off.
pub fn root(name: &str, fingerprint: u64, role: &str) -> TraceSpan {
    if !enabled() {
        return TraceSpan::DEAD;
    }
    let trace_id = derive_trace_id(fingerprint, role);
    let span_id = derive_root_span_id(trace_id, name);
    TraceSpan::open(trace_id, span_id, 0, name)
}

/// Opens the next sequential child span of the innermost context on
/// this thread. Inert when tracing is off or no context is active —
/// instrumentation sites need no enablement checks of their own.
pub fn span(name: &str) -> TraceSpan {
    if !enabled() {
        return TraceSpan::DEAD;
    }
    let Some((ctx, key)) = FRAMES.with(|frames| {
        let mut frames = frames.borrow_mut();
        frames.last_mut().map(|top| {
            let key = top.next_child;
            top.next_child += 1;
            (top.ctx, key)
        })
    }) else {
        return TraceSpan::DEAD;
    };
    let span_id = ctx.child_id(name, key);
    TraceSpan::open(ctx.trace_id, span_id, ctx.span_id, name)
}

/// Opens a child span keyed explicitly (a shard index, an attempt
/// number) instead of by arrival order, so its id is stable however
/// siblings are scheduled. The key joins the name in the derivation;
/// reusing a (`name`, `key`) pair under one parent collides.
pub fn span_keyed(name: &str, key: u64) -> TraceSpan {
    if !enabled() {
        return TraceSpan::DEAD;
    }
    let Some(ctx) = FRAMES.with(|frames| frames.borrow().last().map(|f| f.ctx)) else {
        return TraceSpan::DEAD;
    };
    // Keyed ids live in a disjoint counter domain from sequential ones:
    // the key is offset into the top bit so the two cannot collide for
    // small counters (and the tagged hash separates them regardless).
    let span_id = ctx.child_id(name, key | 1 << 63);
    TraceSpan::open(ctx.trace_id, span_id, ctx.span_id, name)
}

// --- adoption (threads and processes) --------------------------------

/// Frame guard for an adopted context; unwinds on drop.
#[derive(Debug)]
pub struct AdoptGuard {
    token: Option<u64>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        if let Some(token) = self.token.take() {
            pop_frame(token);
        }
    }
}

/// Re-establishes `ctx` as the innermost context on this thread —
/// the receiving end of every propagation edge (worker process from
/// env, serve request from the wire). Spans opened under the guard
/// parent to `ctx.span_id`.
pub fn adopt(ctx: TraceContext) -> AdoptGuard {
    if !enabled() {
        return AdoptGuard { token: None };
    }
    AdoptGuard {
        token: Some(push_frame(ctx)),
    }
}

/// A captured context for crossing a thread boundary; see [`fork`].
#[derive(Debug, Clone, Copy)]
pub struct ForkPoint {
    ctx: TraceContext,
}

impl ForkPoint {
    /// Adopts the fork on the current thread for item `key`: children
    /// keep parenting to the forked span, but their ids are derived in
    /// a per-key namespace, so every item's spans are identical no
    /// matter which worker thread — or how many — ran it.
    pub fn adopt(&self, key: u64) -> AdoptGuard {
        adopt(TraceContext {
            trace_id: self.ctx.trace_id,
            span_id: self.ctx.span_id,
            child_seed: derive_fork_seed(&self.ctx, key),
        })
    }
}

/// Captures the calling thread's innermost context for adoption on
/// worker threads; `None` when tracing is off or no context is active.
pub fn fork() -> Option<ForkPoint> {
    current().map(|ctx| ForkPoint { ctx })
}

// --- env propagation -------------------------------------------------

/// Serializes a context to the `CA_SHARD_TRACE*` env pairs.
pub fn context_to_env(ctx: &TraceContext) -> Vec<(String, String)> {
    vec![
        (ENV_TRACE_ID.to_string(), format!("{:016x}", ctx.trace_id)),
        (ENV_TRACE_SPAN.to_string(), format!("{:016x}", ctx.span_id)),
        (
            ENV_TRACE_SEED.to_string(),
            format!("{:016x}", ctx.child_seed),
        ),
    ]
}

/// Parses one `CA_SHARD_TRACE*` value (16 hex digits, case-blind).
pub fn parse_id(raw: &str) -> Option<u64> {
    u64::from_str_radix(raw.trim(), 16).ok()
}

/// Reads a propagated context from the process environment; `None`
/// unless all three vars are present and parse.
pub fn context_from_env() -> Option<TraceContext> {
    let read = |var: &str| std::env::var(var).ok().and_then(|v| parse_id(&v));
    Some(TraceContext {
        trace_id: read(ENV_TRACE_ID)?,
        span_id: read(ENV_TRACE_SPAN)?,
        child_seed: read(ENV_TRACE_SEED)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(trace_id: u64, span_id: u64, child_seed: u64) -> TraceContext {
        TraceContext {
            trace_id,
            span_id,
            child_seed,
        }
    }

    #[test]
    fn derivation_is_pure_and_tag_separated() {
        assert_eq!(
            derive_trace_id(7, "supervisor"),
            derive_trace_id(7, "supervisor")
        );
        assert_ne!(
            derive_trace_id(7, "supervisor"),
            derive_trace_id(7, "worker")
        );
        assert_ne!(derive_trace_id(7, "x"), derive_root_span_id(7, "x"));
        let c = ctx(1, 2, 3);
        assert_eq!(c.child_id("cell", 0), c.child_id("cell", 0));
        assert_ne!(c.child_id("cell", 0), c.child_id("cell", 1));
        assert_ne!(c.child_id("cell", 0), c.child_id("lint", 0));
        // A fork seed never collides with a child id from the same inputs.
        assert_ne!(derive_fork_seed(&c, 0), c.child_id("", 0));
    }

    #[test]
    fn forked_items_derive_disjoint_but_stable_children() {
        let parent = ctx(11, 22, 0);
        let item3 = ctx(11, 22, derive_fork_seed(&parent, 3));
        let item4 = ctx(11, 22, derive_fork_seed(&parent, 4));
        // Same item: same ids, independent of which thread computes them.
        assert_eq!(item3.child_id("cell", 0), item3.child_id("cell", 0));
        // Sibling items: disjoint ids for identical local structure.
        assert_ne!(item3.child_id("cell", 0), item4.child_id("cell", 0));
        // Both still parent to the span they forked from.
        assert_eq!(item3.span_id, parent.span_id);
    }

    #[test]
    fn keyed_and_sequential_children_do_not_collide() {
        let c = ctx(5, 6, 0);
        // Keyed key 0 vs sequential counter 0, same name.
        assert_ne!(c.child_id("shard", 1 << 63), c.child_id("shard", 0));
    }

    #[test]
    fn env_round_trip_preserves_the_context() {
        let c = ctx(u64::MAX, 0x0123_4567_89ab_cdef, 1);
        let pairs = context_to_env(&c);
        assert_eq!(pairs.len(), 3);
        let decoded = ctx(
            parse_id(&pairs[0].1).unwrap(),
            parse_id(&pairs[1].1).unwrap(),
            parse_id(&pairs[2].1).unwrap(),
        );
        assert_eq!(decoded, c);
        assert_eq!(parse_id("zz"), None);
    }

    #[test]
    fn stack_adopt_and_fork_compose_without_enablement_leaks() {
        // Forced off: everything is inert.
        set_enabled(Some(false));
        assert!(current().is_none());
        assert!(span("dead").id().is_none());

        set_enabled(Some(true));
        let c = ctx(9, 10, 0);
        {
            let _g = adopt(c);
            assert_eq!(current(), Some(c));
            let fork = fork().expect("context is live");
            {
                let _item = fork.adopt(2);
                let inner = current().expect("forked context is live");
                assert_eq!(inner.span_id, c.span_id);
                assert_ne!(inner.child_seed, 0);
            }
            assert_eq!(current(), Some(c));
        }
        assert!(current().is_none());
        set_enabled(None);
    }

    #[test]
    fn guards_dropped_out_of_order_pop_by_identity() {
        set_enabled(Some(true));
        let outer = adopt(ctx(1, 100, 0));
        let inner = adopt(ctx(1, 200, 0));
        // Dropping the *outer* guard first must not evict the inner frame.
        drop(outer);
        assert_eq!(current().map(|c| c.span_id), Some(200));
        drop(inner);
        assert!(current().is_none());
        set_enabled(None);
    }
}
