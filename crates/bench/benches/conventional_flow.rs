//! Micro-bench: the conventional (simulation-based) generation flow
//! of paper Fig. 1 — this is the cost the ML flow amortizes away.

use ca_bench::microbench::BenchGroup;
use ca_core::conventional_flow;
use ca_defects::GenerateOptions;
use ca_netlist::library::{generate_library, LibraryConfig};
use ca_netlist::Technology;
use ca_sim::{Simulator, Stimulus};

fn main() {
    let lib = generate_library(&LibraryConfig::quick(Technology::C40));
    let mut group = BenchGroup::new("conventional_flow");
    for template in ["INV", "NAND2", "AOI21", "XOR2"] {
        let Some(cell) = lib
            .cells
            .iter()
            .find(|lc| lc.template == template && lc.drive == 1)
            .map(|lc| lc.cell.clone())
        else {
            continue; // per-technology catalog subsets may drop a template
        };
        group.bench(&format!("generate/{template}"), || {
            conventional_flow(&cell, GenerateOptions::default())
        });
        let sim = Simulator::new(&cell);
        let stimuli = Stimulus::all(cell.num_inputs());
        group.bench(&format!("golden_simulation/{template}"), || {
            stimuli
                .iter()
                .map(|s| sim.run(s).final_values().len())
                .sum::<usize>()
        });
    }
    group.finish();
}
