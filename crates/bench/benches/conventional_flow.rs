//! Criterion bench: the conventional (simulation-based) generation flow
//! of paper Fig. 1 — this is the cost the ML flow amortizes away.

use ca_core::conventional_flow;
use ca_defects::GenerateOptions;
use ca_netlist::library::{generate_library, LibraryConfig};
use ca_netlist::Technology;
use ca_sim::{DetectionPolicy, Simulator, Stimulus};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_conventional(c: &mut Criterion) {
    let lib = generate_library(&LibraryConfig::quick(Technology::C40));
    let mut group = c.benchmark_group("conventional_flow");
    for template in ["INV", "NAND2", "AOI21", "XOR2"] {
        let Some(cell) = lib
            .cells
            .iter()
            .find(|lc| lc.template == template && lc.drive == 1)
            .map(|lc| lc.cell.clone())
        else {
            continue; // per-technology catalog subsets may drop a template
        };
        group.bench_with_input(
            BenchmarkId::new("generate", template),
            &cell,
            |b, cell| b.iter(|| conventional_flow(cell, GenerateOptions::default())),
        );
        group.bench_with_input(
            BenchmarkId::new("golden_simulation", template),
            &cell,
            |b, cell| {
                let sim = Simulator::new(cell);
                let stimuli = Stimulus::all(cell.num_inputs());
                b.iter(|| {
                    stimuli
                        .iter()
                        .map(|s| sim.run(s).final_values().len())
                        .sum::<usize>()
                })
            },
        );
        let _ = DetectionPolicy::default();
    }
    group.finish();
}

criterion_group!(benches, bench_conventional);
criterion_main!(benches);
