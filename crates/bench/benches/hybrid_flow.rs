//! Micro-bench: measured per-cell generation time, ML route vs
//! conventional route — the real-machine counterpart of the paper's
//! §V.C wall-clock argument.

use ca_bench::corpus::{build_corpus, Profile};
use ca_bench::microbench::BenchGroup;
use ca_core::{conventional_flow, MlFlow, PreparedCell};
use ca_defects::GenerateOptions;
use ca_netlist::library::generate_library;
use ca_netlist::Technology;

fn main() {
    let train = build_corpus(Technology::Soi28, Profile::Quick);
    let prepared: Vec<PreparedCell> = train.iter().map(|cc| cc.prepared.clone()).collect();
    let flow = MlFlow::train(&prepared, Profile::Quick.ml_params()).expect("trains");
    // Pick a C40 cell the flow covers.
    let eval_lib = generate_library(&Profile::Quick.library_config(Technology::C40));
    let cell = eval_lib
        .cells
        .iter()
        .map(|lc| lc.cell.clone())
        .find(|cell| {
            PreparedCell::prepare(cell.clone())
                .map(|p| flow.covers(&p))
                .unwrap_or(false)
        })
        .expect("some covered cell exists");
    let mut group = BenchGroup::new("per_cell_generation");
    group.sample_size(5);
    group.bench("ml_route", || {
        let p = PreparedCell::prepare(cell.clone()).expect("valid");
        flow.predict(&p).expect("covered")
    });
    group.bench("conventional_route", || {
        conventional_flow(&cell, GenerateOptions::default())
    });
    group.finish();
}
