//! Criterion bench: measured per-cell generation time, ML route vs
//! conventional route — the real-machine counterpart of the paper's
//! §V.C wall-clock argument.

use ca_bench::corpus::{build_corpus, Profile};
use ca_core::{conventional_flow, MlFlow, PreparedCell};
use ca_defects::GenerateOptions;
use ca_netlist::library::generate_library;
use ca_netlist::Technology;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_hybrid(c: &mut Criterion) {
    let train = build_corpus(Technology::Soi28, Profile::Quick);
    let prepared: Vec<PreparedCell> = train.iter().map(|cc| cc.prepared.clone()).collect();
    let flow = MlFlow::train(&prepared, Profile::Quick.ml_params()).expect("trains");
    // Pick a C40 cell the flow covers.
    let eval_lib = generate_library(&Profile::Quick.library_config(Technology::C40));
    let cell = eval_lib
        .cells
        .iter()
        .map(|lc| lc.cell.clone())
        .find(|cell| {
            PreparedCell::prepare(cell.clone())
                .map(|p| flow.covers(&p))
                .unwrap_or(false)
        })
        .expect("some covered cell exists");
    let mut group = c.benchmark_group("per_cell_generation");
    group.sample_size(10);
    group.bench_function("ml_route", |b| {
        b.iter(|| {
            let p = PreparedCell::prepare(cell.clone()).expect("valid");
            flow.predict(&p).expect("covered")
        })
    });
    group.bench_function("conventional_route", |b| {
        b.iter(|| conventional_flow(&cell, GenerateOptions::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_hybrid);
criterion_main!(benches);
