//! Micro-bench: one leave-one-out evaluation step of Table IV.a —
//! train a group forest and predict the held-out cell's full CA model.

use ca_bench::corpus::{build_corpus, Profile};
use ca_bench::microbench::BenchGroup;
use ca_core::{train_group_forest, PreparedCell};
use ca_ml::Classifier;
use ca_netlist::Technology;
use std::collections::BTreeMap;

fn main() {
    let corpus = build_corpus(Technology::Soi28, Profile::Quick);
    let mut by_key: BTreeMap<(usize, usize), Vec<&PreparedCell>> = BTreeMap::new();
    for cc in corpus.iter() {
        by_key
            .entry(cc.prepared.group_key())
            .or_default()
            .push(&cc.prepared);
    }
    // A mid-size group keeps the bench representative but affordable.
    let (key, cells) = by_key
        .into_iter()
        .filter(|(_, v)| v.len() >= 3)
        .min_by_key(|&((inputs, transistors), _)| (inputs, transistors))
        .expect("a group with >= 3 cells exists");
    let params = Profile::Quick.ml_params();
    let mut group = BenchGroup::new("table_iv_loo_step");
    group.sample_size(5);
    group.bench(&format!("group_{}in_{}t", key.0, key.1), || {
        let train: Vec<&PreparedCell> = cells[1..].to_vec();
        let (forest, _) = train_group_forest(&train, &params).expect("trains");
        let target = cells[0];
        let predicted = target.predict_model(|row| forest.predict(row) == 1);
        target.accuracy_of(&predicted)
    });
    group.finish();
}
