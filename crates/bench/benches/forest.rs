//! Micro-bench: random forest training and inference on a real
//! CA-matrix group dataset (the §II.B workload).

use ca_bench::corpus::{build_corpus, Profile};
use ca_bench::microbench::BenchGroup;
use ca_core::train_group_forest;
use ca_ml::Classifier;
use ca_netlist::Technology;
use std::collections::BTreeMap;

fn main() {
    let corpus = build_corpus(Technology::Soi28, Profile::Quick);
    // Largest group = the heaviest realistic training job at this scale.
    let mut by_key: BTreeMap<(usize, usize), Vec<&ca_core::PreparedCell>> = BTreeMap::new();
    for cc in corpus.iter() {
        by_key
            .entry(cc.prepared.group_key())
            .or_default()
            .push(&cc.prepared);
    }
    let (key, cells) = by_key
        .into_iter()
        .max_by_key(|(_, v)| v.len())
        .expect("corpus non-empty");
    let params = Profile::Quick.ml_params();
    let mut group = BenchGroup::new("forest");
    group.sample_size(5);
    group.bench(
        &format!("train_group_{}in_{}t_{}cells", key.0, key.1, cells.len()),
        || train_group_forest(&cells, &params).expect("trains"),
    );
    let (forest, data) = train_group_forest(&cells, &params).expect("trains");
    group.bench("predict_1000_rows", || {
        (0..1000.min(data.len()))
            .map(|i| forest.predict(data.row(i)) as usize)
            .sum::<usize>()
    });
    group.finish();
}
