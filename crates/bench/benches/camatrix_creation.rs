//! Micro-bench: CA-matrix creation (paper Fig. 3 pipeline) — golden
//! activation extraction, canonicalization and row encoding.

use ca_bench::microbench::BenchGroup;
use ca_core::{Activation, CanonicalCell, PreparedCell};
use ca_netlist::library::{generate_library, LibraryConfig};
use ca_netlist::Technology;

fn main() {
    let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    let mut group = BenchGroup::new("camatrix_creation");
    for template in ["INV", "NAND2", "AOI21"] {
        let cell = lib
            .cells
            .iter()
            .find(|lc| lc.template == template && lc.drive == 1)
            .map(|lc| lc.cell.clone())
            .expect("catalog template exists");
        group.bench(&format!("activation_extract/{template}"), || {
            Activation::extract(&cell).expect("valid")
        });
        let activation = Activation::extract(&cell).expect("valid");
        group.bench(&format!("canonical_build/{template}"), || {
            CanonicalCell::build(&cell, &activation).expect("canonizable")
        });
        let prepared = PreparedCell::prepare(cell.clone()).expect("valid");
        group.bench(&format!("encode_all_rows/{template}"), || {
            let mut count = 0usize;
            for d in prepared.universe.defects() {
                for s in 0..prepared.activation.stimuli().len() {
                    count += prepared.encode_row(s, d.injection).len();
                }
            }
            count
        });
    }
    group.finish();
}
