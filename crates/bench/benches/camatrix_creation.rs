//! Criterion bench: CA-matrix creation (paper Fig. 3 pipeline) — golden
//! activation extraction, canonicalization and row encoding.

use ca_core::{Activation, CanonicalCell, PreparedCell};
use ca_netlist::library::{generate_library, LibraryConfig};
use ca_netlist::Technology;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_camatrix(c: &mut Criterion) {
    let lib = generate_library(&LibraryConfig::quick(Technology::Soi28));
    let mut group = c.benchmark_group("camatrix_creation");
    for template in ["INV", "NAND2", "AOI21"] {
        let cell = lib
            .cells
            .iter()
            .find(|lc| lc.template == template && lc.drive == 1)
            .map(|lc| lc.cell.clone())
            .expect("catalog template exists");
        group.bench_with_input(
            BenchmarkId::new("activation_extract", template),
            &cell,
            |b, cell| b.iter(|| Activation::extract(cell).expect("valid")),
        );
        let activation = Activation::extract(&cell).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("canonical_build", template),
            &cell,
            |b, cell| b.iter(|| CanonicalCell::build(cell, &activation).expect("canonizable")),
        );
        let prepared = PreparedCell::prepare(cell.clone()).expect("valid");
        group.bench_with_input(
            BenchmarkId::new("encode_all_rows", template),
            &prepared,
            |b, prepared| {
                b.iter(|| {
                    let mut count = 0usize;
                    for d in prepared.universe.defects() {
                        for s in 0..prepared.activation.stimuli().len() {
                            count += prepared.encode_row(s, d.injection).len();
                        }
                    }
                    count
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_camatrix);
criterion_main!(benches);
