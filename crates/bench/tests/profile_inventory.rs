//! The D11 contract: the metric inventory `ca-audit` extracts from
//! the workspace sources is exactly what `ca-bench profile-check`
//! validates profiles against — same prefixes, byte for byte.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn profile_check_prefixes_byte_match_the_extracted_inventory() {
    let root = workspace_root();
    let required = ca_bench::profiling::required_prefixes(root).expect("no inventory drift");

    let inv = ca_audit::metric_inventory(root).expect("inventory I/O");
    let extracted = ca_audit::inventory_prefixes(&inv);
    assert_eq!(
        required, extracted,
        "profile-check must consume the extracted inventory verbatim"
    );

    let mut baked: Vec<String> = ca_obs::INSTRUMENTED_PREFIXES
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    baked.sort();
    assert_eq!(
        extracted, baked,
        "sources and INSTRUMENTED_PREFIXES drifted; update the const or the metrics"
    );

    // Byte-level determinism of the inventory rendering itself.
    let a = ca_audit::render_metric_inventory(&inv);
    let b = ca_audit::render_metric_inventory(&ca_audit::metric_inventory(root).expect("re-read"));
    assert_eq!(a, b);
    assert!(a.lines().count() >= 50, "inventory implausibly small:\n{a}");
}

#[test]
fn required_prefixes_fall_back_outside_the_repo() {
    // A directory without `crates/` (an installed-binary run) uses the
    // baked-in prefixes instead of failing.
    let dir = std::env::temp_dir().join("ca_bench_prefix_fallback");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let got = ca_bench::profiling::required_prefixes(&dir).expect("fallback");
    let mut baked: Vec<String> = ca_obs::INSTRUMENTED_PREFIXES
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    baked.sort();
    assert_eq!(got, baked);
}
