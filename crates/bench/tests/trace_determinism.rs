//! Determinism of the trace span tree (DESIGN.md §14).
//!
//! Span ids are *derived* — campaign fingerprint, role, and per-frame
//! child counters, with the executor forking contexts per item index —
//! so the same campaign must produce the same `(span, parent, name)`
//! tree at every `CA_THREADS` setting, and a crash-resumed run must
//! rebuild the same structural tree it had before the crash (replayed
//! cells still traverse their spans; only durations differ).
//!
//! ONE test function only: the span events land in the global event
//! sink, so a sibling test running concurrently in this binary would
//! interleave its spans into our drained snapshots.

use ca_bench::corpus::Profile;
use ca_core::{
    characterize_library_robust_with_session, CharCache, Executor, FaultPolicy, Session,
};
use ca_defects::GenerateOptions;
use ca_netlist::library::generate_library;
use ca_netlist::Technology;
use ca_sim::SimBudget;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// `(span, parent, name)` triples — the structural tree, durations and
/// timestamps excluded.
type SpanTree = BTreeSet<(String, String, String)>;

fn traced_run(library: &ca_netlist::library::Library, store: &Path, threads: usize) -> SpanTree {
    // Discard whatever earlier phases buffered, then capture only this
    // run's events.
    let _ = ca_obs::drain_events();
    {
        let _root = ca_obs::trace::root("campaign", trace_fp(library), "test");
        characterize_library_robust_with_session(
            library,
            GenerateOptions::default(),
            &SimBudget::unlimited(),
            FaultPolicy::SkipAndReport,
            &Executor::with_threads(threads),
            &CharCache::new(),
            &Session::open(store).expect("open session"),
        )
        .expect("robust run succeeds");
    }
    let mut tree = SpanTree::new();
    for line in ca_obs::drain_events() {
        let doc = ca_obs::json::parse(&line).expect("event line parses");
        let field = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .unwrap_or_default()
        };
        if field("target") == ca_obs::trace::TARGET && field("msg") == "span" {
            tree.insert((field("span"), field("parent"), field("name")));
        }
    }
    tree
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-trace-det-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn span_tree_is_identical_across_thread_counts_and_resume() {
    ca_obs::trace::set_enabled(Some(true));
    let dir = scratch("tree");
    let mut library = generate_library(&Profile::Quick.library_config(Technology::C40));
    library.cells.truncate(8);

    let serial = traced_run(&library, &dir.join("serial.caj"), 1);
    let parallel = traced_run(&library, &dir.join("parallel.caj"), 4);
    // A resumed run replays the populated store: same campaign, same
    // derived ids, even though no cell re-simulates.
    let resumed = traced_run(&library, &dir.join("serial.caj"), 4);
    ca_obs::trace::set_enabled(None);
    let _ = std::fs::remove_dir_all(&dir);

    // The tree must actually witness the campaign: one root plus one
    // per-cell span parented under it.
    assert!(
        serial.iter().any(|(_, _, name)| name == "campaign"),
        "root span missing: {serial:?}"
    );
    let root_id = serial
        .iter()
        .find(|(_, parent, _)| parent == "0000000000000000")
        .map(|(span, _, _)| span.clone())
        .expect("exactly one root");
    for lc in &library.cells {
        assert!(
            serial
                .iter()
                .any(|(_, parent, name)| name == lc.cell.name() && *parent == root_id),
            "cell {} has no span under the campaign root",
            lc.cell.name()
        );
    }

    assert_eq!(
        serial, parallel,
        "span tree must be identical at CA_THREADS=1 vs 4"
    );
    assert_eq!(
        serial, resumed,
        "a resumed campaign must rebuild the same span tree"
    );
}

/// Order-sensitive FNV fold of the cell fingerprints — the same
/// derivation the shard supervisor uses for its campaign root, so this
/// test exercises representative trace ids.
fn trace_fp(library: &ca_netlist::library::Library) -> u64 {
    library
        .cells
        .iter()
        .fold(0xcbf2_9ce4_8422_2325u64, |acc, lc| {
            acc.wrapping_mul(0x100_0000_01b3) ^ ca_core::cell_fingerprint(&lc.cell)
        })
}
