//! Thread-count determinism of the flow profile's count metrics.
//!
//! DESIGN.md §9 promises that every `outcome` and `work` counter is
//! byte-identical across `CA_THREADS` settings. This binary proves it
//! end to end: the full `ca-bench profile` pipeline runs once on one
//! worker and once on four, and the canonical per-stage fingerprints
//! must match byte for byte. Timings (spans, wall/CPU clocks) and
//! `ops`-class scheduling telemetry are excluded by construction.
//!
//! ONE test function only: stage deltas are snapshots of the global
//! metric registry, so a sibling test running concurrently in this
//! binary would leak its counts into our stages and make the
//! comparison flaky. Keep any future assertions inside this function.

use ca_bench::corpus::Profile;
use ca_bench::profiling;
use ca_core::Executor;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ca-obs-det-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn profile_counts_are_identical_across_thread_counts() {
    let dir = scratch("threads");

    let serial = profiling::run_with(
        Profile::Quick,
        &dir.join("serial.castore"),
        &Executor::with_threads(1),
    )
    .expect("serial profile runs");
    let parallel = profiling::run_with(
        Profile::Quick,
        &dir.join("parallel.castore"),
        &Executor::with_threads(4),
    )
    .expect("parallel profile runs");
    let _ = std::fs::remove_dir_all(&dir);

    let serial_fpr = serial.deterministic_fingerprint();
    let parallel_fpr = parallel.deterministic_fingerprint();

    // The fingerprint must actually witness the instrumented stack, not
    // vacuously compare two empty strings.
    for needle in [
        "[characterize]",
        "ca_core.flow.models_complete",
        "ca_core.cache.hits",
        "ca_sim.solver.iterations",
        "ca_ml.forest.trees_fitted",
        "ca_store.journal.appends",
        "ca_exec.items",
    ] {
        assert!(
            serial_fpr.contains(needle),
            "fingerprint must mention {needle}:\n{serial_fpr}"
        );
    }
    assert_eq!(
        serial_fpr, parallel_fpr,
        "outcome+work counters must be byte-identical at CA_THREADS=1 vs 4"
    );

    // Scheduling telemetry is allowed to differ — and the worker pool
    // size genuinely does — but must never leak into the fingerprint.
    assert!(!serial_fpr.contains("ca_exec.workers_spawned"));
    assert!(!serial_fpr.contains("ca_exec.steals"));

    // The `outcome` subset is a projection of the full fingerprint, so
    // it matches too; assert anyway since crash-resume tests rely on it.
    assert_eq!(serial.outcome_fingerprint(), parallel.outcome_fingerprint());
}
