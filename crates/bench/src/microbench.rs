//! Minimal wall-clock micro-benchmark harness.
//!
//! A zero-dependency stand-in for Criterion so `cargo bench` works in a
//! hermetic (offline) build: each benchmark is auto-calibrated to a small
//! time budget, sampled several times, and reported as min/median/max
//! time per iteration on stdout.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier — keeps the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Per-sample time budget a benchmark is calibrated against.
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);

/// A named group of benchmarks, mirroring Criterion's `benchmark_group`.
pub struct BenchGroup {
    name: String,
    samples: usize,
}

impl BenchGroup {
    /// Starts a group; results are printed as `group/benchmark`.
    pub fn new(name: &str) -> BenchGroup {
        BenchGroup {
            name: name.to_string(),
            samples: 7,
        }
    }

    /// Overrides the number of timed samples (default 7).
    pub fn sample_size(&mut self, samples: usize) -> &mut BenchGroup {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing per-iteration statistics.
    ///
    /// The closure result is passed through [`black_box`] so the work is
    /// not optimized away.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        // Warm-up + calibration: grow the iteration count until one
        // batch costs a measurable fraction of the sample budget.
        let mut iters = 1usize;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= SAMPLE_BUDGET / 10 || iters >= 1 << 20 {
                break elapsed / iters as u32;
            }
            iters *= 4;
        };
        let iters = if per_iter.is_zero() {
            iters
        } else {
            (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as usize
        };
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed() / iters as u32
            })
            .collect();
        times.sort();
        let median = times[times.len() / 2];
        println!(
            "{}/{}: median {:>12?}  (min {:?}, max {:?}; {} samples x {} iters)",
            self.name,
            id,
            median,
            times[0],
            times[times.len() - 1],
            self.samples,
            iters,
        );
    }

    /// Ends the group (kept for call-site symmetry with Criterion).
    pub fn finish(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut g = BenchGroup::new("selftest");
        g.sample_size(2);
        let mut calls = 0u64;
        g.bench("count", || {
            calls += 1;
            calls
        });
        g.finish();
        assert!(calls > 0);
    }
}
