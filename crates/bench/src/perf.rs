//! `ca-bench parallel` — wall-clock benchmark of the parallel
//! characterization engine and the structure-keyed cache.
//!
//! The workload is a realistic variant-heavy library: drive strengths,
//! skew sizing and VT flavors multiply every template into a family of
//! structurally identical cells, exactly the redundancy the cache is
//! built to exploit. The serial baseline runs the plain per-cell
//! conventional flow (one thread, no cache); the engine runs
//! [`characterize_library_with`] on the `CA_THREADS` executor with a
//! shared [`CharCache`]. Both outputs are compared bit for bit before
//! any number is reported.

// Benchmark results feed BENCH_parallel.json; a stray unwrap would
// abort the run instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_core::{characterize_library_with, CacheStats, CharCache, Executor, PreparedCell};
use ca_defects::GenerateOptions;
use ca_netlist::library::{generate_library, Library, LibraryConfig};
use ca_netlist::Technology;
use std::time::Instant;

/// Measured numbers of one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelBench {
    /// Worker threads the engine ran with.
    pub threads: usize,
    /// Library size in cells.
    pub cells: usize,
    /// Serial baseline (1 thread, no cache), seconds.
    pub serial_s: f64,
    /// Engine wall clock, seconds.
    pub parallel_s: f64,
    /// Cache counters of the engine run.
    pub cache: CacheStats,
}

impl ParallelBench {
    /// End-to-end speedup of the engine over the serial baseline.
    pub fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.serial_s / self.parallel_s
        } else {
            0.0
        }
    }

    /// Engine throughput in cells per second.
    pub fn cells_per_sec(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.cells as f64 / self.parallel_s
        } else {
            0.0
        }
    }

    /// The `BENCH_parallel.json` document (hand-rendered: the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"threads\": {},\n  \"cells\": {},\n  \"serial_s\": {:.3},\n  \
             \"parallel_s\": {:.3},\n  \"cells_per_sec\": {:.2},\n  \"speedup\": {:.2},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_rejected\": {},\n  \
             \"cache_bypassed\": {},\n  \"cache_hit_rate\": {:.4}\n}}\n",
            self.threads,
            self.cells,
            self.serial_s,
            self.parallel_s,
            self.cells_per_sec(),
            self.speedup(),
            self.cache.hits,
            self.cache.misses,
            self.cache.rejected,
            self.cache.bypassed,
            self.cache.hit_rate()
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "parallel characterization engine — {} cells, {} thread(s)\n  \
             serial baseline: {:.2} s\n  engine:          {:.2} s  ({:.2}x, {:.1} cells/s)\n  \
             cache: {} hits / {} misses ({:.1}% hit rate), {} rejected, {} bypassed\n",
            self.cells,
            self.threads,
            self.serial_s,
            self.parallel_s,
            self.speedup(),
            self.cells_per_sec(),
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0,
            self.cache.rejected,
            self.cache.bypassed
        )
    }
}

/// The benchmark library: the profile's C40 catalog expanded into skew
/// and VT-flavor families, the variant structure of a production
/// library (every flavor is a sizing-only sibling).
pub fn bench_library(profile: Profile) -> Library {
    let config = LibraryConfig {
        skew_variants: true,
        vt_variants: vec![("LVT".into(), 0.90), ("HVT".into(), 1.10)],
        ..profile.library_config(Technology::C40)
    };
    generate_library(&config)
}

/// Runs the benchmark: serial baseline, then the engine, then a
/// bit-identity check of the two outputs.
///
/// # Panics
///
/// Panics if the engine's models differ from the serial baseline's —
/// a broken cache must never report a speedup.
pub fn run(profile: Profile) -> ParallelBench {
    let library = bench_library(profile);
    let options = GenerateOptions::default();

    // Untimed warm-up on one cell: the serial baseline runs first, so
    // without this it would also pay the one-off process cold-start
    // (page-in, allocator growth) that the engine run — timed second,
    // in a warm process — never sees. The baseline stays cold where it
    // matters (no CharCache, every flavor characterized from scratch);
    // only the process-level warm-up effect is pinned out so speedups
    // here and in BENCH_packed.json are measured against a clean
    // scalar cold path.
    if let Some(first) = library.cells.first() {
        let _ = PreparedCell::characterize(first.cell.clone(), options);
    }

    let serial_start = Instant::now();
    let serial: Vec<PreparedCell> = library
        .cells
        .iter()
        .map(|lc| {
            PreparedCell::characterize(lc.cell.clone(), options).unwrap_or_else(|e| {
                panic!("serial characterization failed for {}: {e}", lc.cell.name())
            })
        })
        .collect();
    let serial_s = serial_start.elapsed().as_secs_f64();

    let executor = Executor::from_env();
    let cache = CharCache::new();
    let parallel_start = Instant::now();
    let (prepared, _summary) = match characterize_library_with(&library, options, &executor, &cache)
    {
        Ok(out) => out,
        Err(e) => panic!("engine characterization failed: {e}"),
    };
    let parallel_s = parallel_start.elapsed().as_secs_f64();

    assert_eq!(prepared.len(), serial.len());
    for (p, s) in prepared.iter().zip(&serial) {
        assert_eq!(p.cell.name(), s.cell.name(), "order must be library order");
        assert_eq!(
            p.model,
            s.model,
            "engine model differs from serial baseline for {}",
            p.cell.name()
        );
    }

    ParallelBench {
        threads: executor.threads(),
        cells: library.len(),
        serial_s,
        parallel_s,
        cache: cache.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_library_contains_flavor_families() {
        let lib = bench_library(Profile::Quick);
        // skew x {SVT, LVT, HVT}: six sizing-only siblings per variant.
        let base = generate_library(&Profile::Quick.library_config(Technology::C40));
        assert_eq!(lib.len(), 3 * base.len());
        assert!(lib.cells.iter().any(|c| c.cell.name().ends_with("LVT")));
        assert!(lib.cells.iter().any(|c| c.cell.name().ends_with("SHVT")));
    }

    #[test]
    fn json_document_is_well_formed_enough() {
        let bench = ParallelBench {
            threads: 4,
            cells: 100,
            serial_s: 10.0,
            parallel_s: 2.5,
            cache: CacheStats {
                hits: 80,
                misses: 20,
                rejected: 0,
                bypassed: 0,
            },
        };
        let json = bench.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"speedup\": 4.00"), "{json}");
        assert!(json.contains("\"cache_hit_rate\": 0.8000"), "{json}");
        assert!((bench.cells_per_sec() - 40.0).abs() < 1e-9);
        assert!(bench.render().contains("4.00x"));
    }
}
