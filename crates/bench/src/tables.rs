//! Regenerators for every table and figure of the paper's evaluation.

use crate::corpus::{build_corpus, CorpusCell, Profile};
use crate::report::{kv_table, Grid};
use ca_core::{
    conventional_flow, format_duration, train_group_forest, Activation, CanonicalCell, CostModel,
    HybridFlow, HybridOptions, MlFlow, PreparedCell, StructuralMatch, StructureIndex,
};
use ca_defects::{DefectKind, GenerateOptions};
use ca_ml::{Classifier, KNearest, LinearClassifier, RandomForest};
use ca_netlist::synth::{synthesize, DriveStyle, NetlistStyle, Stage, StageExpr, StagePlan};
use ca_netlist::{spice, Technology, Terminal};
use ca_sim::Injection;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The paper's reference NAND2 (Fig. 4a naming).
pub const NAND2_SPICE: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MPX Z A VDD VDD pch W=300n L=30n
MPY Z B VDD VDD pch W=300n L=30n
MN10 Z A net0 VSS nch W=200n L=30n
MN11 net0 B VSS VSS nch W=200n L=30n
.ENDS
";

fn group_corpus(corpus: &[CorpusCell]) -> BTreeMap<(usize, usize), Vec<&CorpusCell>> {
    let mut by_key: BTreeMap<(usize, usize), Vec<&CorpusCell>> = BTreeMap::new();
    for c in corpus {
        by_key.entry(c.prepared.group_key()).or_default().push(c);
    }
    by_key
}

/// Table IV.a — same-technology prediction accuracy: leave-one-out within
/// the 28SOI corpus, grouped by (inputs, transistors).
pub fn table_iv_a(profile: Profile) -> Grid {
    let corpus = build_corpus(Technology::Soi28, profile);
    let params = profile.ml_params();
    let cap = profile.max_eval_per_group();
    let mut grid = Grid::new();
    for (key, cells) in group_corpus(&corpus) {
        if cells.len() < 2 {
            continue; // the paper leaves singleton groups empty
        }
        let evals = cap.unwrap_or(cells.len()).min(cells.len());
        for i in 0..evals {
            let train: Vec<&PreparedCell> = cells
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, c)| &c.prepared)
                .collect();
            let Ok((forest, _)) = train_group_forest(&train, &params) else {
                continue;
            };
            let target = &cells[i].prepared;
            let predicted = target.predict_model(|row| forest.predict(row) == 1);
            // The paper's Table IV reports open defects (shorts "similar").
            grid.record(
                key.0,
                key.1,
                target.accuracy_of_kind(&predicted, DefectKind::Open),
            );
        }
    }
    grid
}

/// Tables IV.b / IV.c — cross-technology prediction: train on all of
/// `train_tech`, evaluate every cell of `eval_tech` whose group exists.
pub fn table_iv_cross(train_tech: Technology, eval_tech: Technology, profile: Profile) -> Grid {
    let train = build_corpus(train_tech, profile);
    let eval = build_corpus(eval_tech, profile);
    cross_grid(&train, &eval, profile)
}

fn cross_grid(train: &[CorpusCell], eval: &[CorpusCell], profile: Profile) -> Grid {
    let prepared: Vec<PreparedCell> = train.iter().map(|c| c.prepared.clone()).collect();
    let flow = MlFlow::train(&prepared, profile.ml_params()).expect("non-empty corpus");
    // Prediction over the evaluated cells is read-only and independent:
    // batch it across the executor's workers.
    let covered: Vec<PreparedCell> = eval
        .iter()
        .map(|c| &c.prepared)
        .filter(|p| flow.covers(p))
        .cloned()
        .collect();
    let predictions = flow
        .predict_batch(&covered, &ca_exec::Executor::from_env())
        .expect("every batched cell is covered");
    let mut grid = Grid::new();
    for (p, predicted) in covered.iter().zip(&predictions) {
        let (inputs, transistors) = p.group_key();
        grid.record(
            inputs,
            transistors,
            p.accuracy_of_kind(predicted, DefectKind::Open),
        );
    }
    grid
}

/// §V.B — accuracy distribution and its correlation with the structural
/// match category (identical / equivalent / new).
pub fn accuracy_histogram(
    train_tech: Technology,
    eval_tech: Technology,
    profile: Profile,
) -> String {
    let train = build_corpus(train_tech, profile);
    let eval = build_corpus(eval_tech, profile);
    let prepared: Vec<PreparedCell> = train.iter().map(|c| c.prepared.clone()).collect();
    let flow = MlFlow::train(&prepared, profile.ml_params()).expect("non-empty corpus");
    let index = StructureIndex::from_corpus(&prepared);
    let mut buckets = [0usize; 4]; // >=99, 97-99, 90-97, <90
    let mut per_match: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    let mut evaluated = 0usize;
    for c in eval.iter() {
        if !flow.covers(&c.prepared) {
            continue;
        }
        evaluated += 1;
        let predicted = flow.predict(&c.prepared).expect("group covered");
        let acc = c.prepared.accuracy_of_kind(&predicted, DefectKind::Open);
        let bucket = if acc >= 0.99 {
            0
        } else if acc >= 0.97 {
            1
        } else if acc >= 0.90 {
            2
        } else {
            3
        };
        buckets[bucket] += 1;
        let tag = match index.classify(&c.prepared.canonical) {
            StructuralMatch::Identical => "identical",
            StructuralMatch::Equivalent => "equivalent",
            StructuralMatch::New => "new",
        };
        per_match.entry(tag).or_default().push(acc);
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§V.B accuracy distribution: train {} -> evaluate {} ({} cells)",
        train_tech.name(),
        eval_tech.name(),
        evaluated
    );
    for (label, count) in [">=99%", "97-99%", "90-97%", "<90%"].iter().zip(buckets) {
        let pct = 100.0 * count as f64 / evaluated.max(1) as f64;
        let _ = writeln!(out, "  {label:>7}: {count:4} cells ({pct:5.1}%)");
    }
    let above97 = buckets[0] + buckets[1];
    let _ = writeln!(
        out,
        "  accuracy > 97% for {:.0}% of cells (paper: ~70% overall; 68% C28, 80% C40)",
        100.0 * above97 as f64 / evaluated.max(1) as f64
    );
    let _ = writeln!(out, "correlation with structural match (paper §V.B):");
    for (tag, accs) in per_match {
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let _ = writeln!(
            out,
            "  {tag:>10}: {:4} cells, mean accuracy {:6.2}%",
            accs.len(),
            mean * 100.0
        );
    }
    out
}

/// §II.B — classifier comparison on the largest group of the training
/// technology (the experiment motivating the Random Forest choice).
pub fn algo_comparison(profile: Profile) -> String {
    let corpus = build_corpus(Technology::Soi28, profile);
    let groups = group_corpus(&corpus);
    let (key, cells) = groups
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("non-empty corpus");
    // Leave-one-out on the first cell of the group.
    let target = &cells[0].prepared;
    let train: Vec<&PreparedCell> = cells[1..].iter().map(|c| &c.prepared).collect();
    let params = profile.ml_params();
    let (_, full_data) = train_group_forest(&train, &params).expect("group has cells");
    // Baselines get a capped training set: k-NN is O(train x eval).
    let cap = 4_000.min(full_data.len());
    let stride = (full_data.len() as f64 / cap as f64).max(1.0);
    let capped_idx: Vec<usize> = (0..cap)
        .map(|j| ((j as f64 * stride) as usize).min(full_data.len() - 1))
        .collect();
    let capped = full_data.subset(&capped_idx);
    let mut rows: Vec<(String, String)> = Vec::new();
    let mut eval = |name: &str, classifier: &dyn Classifier| {
        let predicted = target.predict_model(|row| classifier.predict(row) == 1);
        let acc = target.accuracy_of(&predicted);
        rows.push((name.to_string(), format!("{:6.2}%", acc * 100.0)));
    };
    let mut forest = RandomForest::new(params.forest.clone());
    forest.fit(&full_data);
    eval("RandomForest", &forest);
    let mut tree = ca_ml::DecisionTree::new(ca_ml::TreeParams::default());
    tree.fit(&full_data);
    eval("DecisionTree", &tree);
    let mut knn = KNearest::new(5);
    knn.fit(&capped);
    eval("k-NN (k=5)", &knn);
    let mut logistic = LinearClassifier::logistic();
    logistic.fit(&capped);
    eval("Logistic", &logistic);
    let mut ridge = LinearClassifier::ridge();
    ridge.fit(&capped);
    eval("Ridge", &ridge);
    let mut svm = LinearClassifier::svm();
    svm.fit(&capped);
    eval("Linear SVM", &svm);
    let mut nb = ca_ml::GaussianNb::new();
    nb.fit(&capped);
    eval("GaussianNB", &nb);
    kv_table(
        &format!(
            "§II.B classifier comparison on group (inputs={}, transistors={}, {} cells)",
            key.0,
            key.1,
            cells.len()
        ),
        &rows,
    )
}

/// §V.C / Fig. 7 — the hybrid flow experiment: structural gate routing,
/// generation-time estimates and the reduction numbers.
pub fn hybrid_experiment(profile: Profile) -> String {
    let train = build_corpus(Technology::Soi28, profile);
    let eval_lib = ca_netlist::library::generate_library(&profile.library_config(Technology::C40));
    let prepared: Vec<PreparedCell> = train.iter().map(|c| c.prepared.clone()).collect();
    let cost = CostModel::paper_calibrated();

    // 1. Static structural analysis against the *initial* training corpus
    //    — this is how the paper obtains its 118/87/204 split (§V.C).
    let index = StructureIndex::from_corpus(&prepared);
    let mut static_counts = (0usize, 0usize, 0usize);
    let mut static_ml_time = 0.0;
    let mut static_sim_time = 0.0;
    let mut conventional_time = 0.0;
    for lc in &eval_lib.cells {
        let p = PreparedCell::prepare(lc.cell.clone()).expect("valid cell");
        let sim_t = cost.simulation_time_s(&p.cell);
        conventional_time += sim_t;
        match index.classify(&p.canonical) {
            StructuralMatch::Identical => {
                static_counts.0 += 1;
                static_ml_time += cost.ml_time_s(&p.cell);
            }
            StructuralMatch::Equivalent => {
                static_counts.1 += 1;
                static_ml_time += cost.ml_time_s(&p.cell);
            }
            StructuralMatch::New => {
                static_counts.2 += 1;
                static_sim_time += sim_t;
            }
        }
    }
    let total = eval_lib.cells.len();
    let pct = |x: usize| 100.0 * x as f64 / total.max(1) as f64;
    let static_hybrid_time = static_ml_time + static_sim_time;
    let ml_conventional: f64 = conventional_time - static_sim_time;

    // 2. Actual hybrid run with the Fig. 7 reinforcement loop (simulated
    //    cells immediately extend the corpus, so later variants of a new
    //    template route to ML).
    let mut params = profile.ml_params();
    params.retain_training_data = true;
    let mut hybrid = HybridFlow::new(
        &prepared,
        params,
        cost,
        HybridOptions {
            reinforce: true,
            evaluate_ml_accuracy: true,
            generate: GenerateOptions::default(),
        },
    )
    .expect("non-empty corpus");
    let cells: Vec<ca_netlist::Cell> = eval_lib.cells.iter().map(|c| c.cell.clone()).collect();
    let (_, report) = hybrid.run(cells).expect("synthesized cells are valid");
    let (r_id, r_eq, r_sim) = report.route_counts();

    let mut rows: Vec<(String, String)> = vec![
        ("C40 cells processed".into(), format!("{total}")),
        (
            "— static gate analysis (initial corpus, as in the paper) —".into(),
            String::new(),
        ),
        (
            "identical structure".into(),
            format!(
                "{} ({:.0}%)  [paper: 118 (29%)]",
                static_counts.0,
                pct(static_counts.0)
            ),
        ),
        (
            "equivalent structure".into(),
            format!(
                "{} ({:.0}%)  [paper: 87 (21%)]",
                static_counts.1,
                pct(static_counts.1)
            ),
        ),
        (
            "new structure (simulate)".into(),
            format!(
                "{} ({:.0}%)  [paper: 204 (50%)]",
                static_counts.2,
                pct(static_counts.2)
            ),
        ),
        (
            "hybrid generation time".into(),
            format!(
                "{} vs conventional-only {}  [paper: 172d+6h vs ~250d]",
                format_duration(static_hybrid_time),
                format_duration(conventional_time)
            ),
        ),
        (
            "reduction (overall)".into(),
            format!(
                "{:.0}%  [paper: ~38%]",
                (1.0 - static_hybrid_time / conventional_time) * 100.0
            ),
        ),
        (
            "reduction (ML-routed cells)".into(),
            format!(
                "{:.1}%  [paper: 99.7%]",
                (1.0 - static_ml_time / ml_conventional.max(1e-9)) * 100.0
            ),
        ),
        (
            "— full run with Fig. 7 reinforcement feedback —".into(),
            String::new(),
        ),
        (
            "routes after reinforcement".into(),
            format!(
                "{r_id} identical + {r_eq} equivalent + {r_sim} simulated \
                 (feedback shrinks the simulated share)"
            ),
        ),
        (
            "hybrid time (reinforced)".into(),
            format!(
                "{}  ->  {:.0}% reduction",
                format_duration(report.hybrid_time_s()),
                report.reduction() * 100.0
            ),
        ),
    ];
    if let Some(acc) = report.mean_ml_accuracy() {
        rows.push((
            "mean ML accuracy (routed cells)".into(),
            format!("{:.2}%", acc * 100.0),
        ));
    }
    kv_table("§V.C hybrid flow (train 28SOI, generate C40)", &rows)
}

/// Library characterization summary (the `charlib` driver end-to-end).
pub fn library_report(tech: Technology, profile: Profile) -> String {
    let corpus = build_corpus(tech, profile);
    let prepared: Vec<PreparedCell> = corpus.iter().map(|c| c.prepared.clone()).collect();
    let summary = ca_core::summarize(tech.name(), &prepared);
    summary.render()
}

/// Ablation — remove the canonical renaming (keep raw netlist order) and
/// measure the cross-technology accuracy collapse. This isolates the
/// contribution of §III.B, the paper's central mechanism.
pub fn ablation(profile: Profile) -> String {
    let train = build_corpus(Technology::Soi28, profile);
    let eval = build_corpus(Technology::C28, profile);
    let with_renaming = cross_grid(&train, &eval, profile);
    // Rebuild both corpora with the degenerate netlist-order view.
    let strip = |cells: &[CorpusCell]| -> Vec<PreparedCell> {
        cells
            .iter()
            .map(|cc| {
                let mut p = cc.prepared.clone();
                p.canonical = CanonicalCell::netlist_order(&p.cell, &p.activation);
                p
            })
            .collect()
    };
    let train_stripped_cells: Vec<CorpusCell> = strip(&train)
        .into_iter()
        .zip(train.iter())
        .map(|(prepared, cc)| CorpusCell {
            prepared,
            template: cc.template.clone(),
        })
        .collect();
    let eval_stripped_cells: Vec<CorpusCell> = strip(&eval)
        .into_iter()
        .zip(eval.iter())
        .map(|(prepared, cc)| CorpusCell {
            prepared,
            template: cc.template.clone(),
        })
        .collect();
    let without_renaming = cross_grid(&train_stripped_cells, &eval_stripped_cells, profile);
    kv_table(
        "Ablation — canonical transistor renaming (train 28SOI -> eval C28, opens)",
        &[
            (
                "with renaming (paper flow)".into(),
                format!(
                    "mean {:.2}%   >97%: {:.0}%",
                    with_renaming.mean() * 100.0,
                    with_renaming.fraction_above(0.97) * 100.0
                ),
            ),
            (
                "without renaming (netlist order)".into(),
                format!(
                    "mean {:.2}%   >97%: {:.0}%",
                    without_renaming.mean() * 100.0,
                    without_renaming.fraction_above(0.97) * 100.0
                ),
            ),
            (
                "accuracy delta".into(),
                format!(
                    "{:+.2} points",
                    (with_renaming.mean() - without_renaming.mean()) * 100.0
                ),
            ),
        ],
    )
}

/// Feature importance of a trained group forest, mapped back to CA-matrix
/// column names — which parts of the encoding carry the signal.
pub fn feature_importance(profile: Profile) -> String {
    let corpus = build_corpus(Technology::Soi28, profile);
    let groups = group_corpus(&corpus);
    let (key, cells) = groups
        .iter()
        .max_by_key(|(_, v)| v.len())
        .expect("non-empty corpus");
    let train: Vec<&PreparedCell> = cells.iter().map(|c| &c.prepared).collect();
    let params = profile.ml_params();
    let (forest, _) = train_group_forest(&train, &params).expect("trains");
    let importance = forest.feature_importance();
    let names = cells[0].prepared.layout().column_names();
    let mut ranked: Vec<(f64, String)> =
        importance.iter().zip(names).map(|(&v, n)| (v, n)).collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    let rows: Vec<(String, String)> = ranked
        .into_iter()
        .take(12)
        .map(|(v, n)| (n, format!("{:.1}%", v * 100.0)))
        .collect();
    kv_table(
        &format!(
            "Random-forest feature importance (group inputs={}, transistors={})",
            key.0, key.1
        ),
        &rows,
    )
}

/// Fig. 4 — the NAND2 partial CA-matrix (input/response and activity
/// columns, canonical names, PMOS shown negated like the paper).
pub fn fig4() -> String {
    let cell = spice::parse_cell(NAND2_SPICE).expect("reference netlist parses");
    let activation = Activation::extract(&cell).expect("valid cell");
    let canonical = CanonicalCell::build(&cell, &activation).expect("canonizable");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4b — partial CA-matrix of NAND2 (canonical names)"
    );
    let order = canonical.order().to_vec();
    let _ = write!(out, "{:>3} {:>3} | {:>3} |", "A", "B", "Z");
    for &t in &order {
        let _ = write!(out, "{:>5}", canonical.name(t));
    }
    let _ = writeln!(out);
    for (si, stim) in activation.stimuli().iter().enumerate().take(12) {
        let waves = stim.waves();
        let _ = write!(
            out,
            "{:>3} {:>3} | {:>3} |",
            waves[0].to_string(),
            waves[1].to_string(),
            activation.output_waves()[si].to_string()
        );
        for &t in &order {
            let wave = activation.transistor_wave(si, t);
            let negate = cell.transistor(t).kind() == ca_netlist::MosKind::Pmos;
            let text = if negate {
                format!("-{wave}")
            } else {
                format!("{wave}")
            };
            let _ = write!(out, "{text:>5}");
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "  ... ({} rows total)", activation.stimuli().len());
    out
}

/// Table I — training dataset excerpt for the NAND2: free rows and a
/// drain-source short, with detection labels from the conventional flow.
pub fn table1() -> String {
    let cell = spice::parse_cell(NAND2_SPICE).expect("reference netlist parses");
    let prepared = PreparedCell::characterize(cell, GenerateOptions::default()).expect("valid");
    let layout = prepared.layout();
    let model = prepared.model.as_ref().expect("characterized");
    let names = layout.column_names();
    let mut out = String::new();
    let _ = writeln!(out, "Table I — training dataset excerpt (NAND2)");
    let _ = writeln!(out, "  columns: {} | label", names.join(" "));
    let mut print_row = |stimulus: usize, injection: Injection, label: u32, tag: &str| {
        let row = prepared.encode_row(stimulus, injection);
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.0}")).collect();
        let _ = writeln!(out, "  {} | {}   ({tag})", cells.join(" "), label);
    };
    for s in 0..3 {
        print_row(s, Injection::None, 0, "free");
    }
    // A drain-source short (the paper's D15-style defect).
    let short = prepared
        .universe
        .defects()
        .iter()
        .find(|d| {
            d.kind == DefectKind::Short
                && matches!(
                    d.injection,
                    Injection::Short {
                        a: Terminal::Drain,
                        b: Terminal::Source,
                        ..
                    }
                )
        })
        .expect("universe has shorts");
    for s in 0..4 {
        let label = u32::from(model.detects(short.id, s));
        print_row(s, short.injection, label, &short.label(&prepared.cell));
    }
    out
}

/// Table II — activity values and renaming for the NAND2.
pub fn table2() -> String {
    let cell = spice::parse_cell(NAND2_SPICE).expect("reference netlist parses");
    let activation = Activation::extract(&cell).expect("valid cell");
    let canonical = CanonicalCell::build(&cell, &activation).expect("canonizable");
    let mut rows: Vec<(String, String)> = Vec::new();
    for (id, t) in cell.transistor_ids() {
        rows.push((
            t.name().to_string(),
            format!(
                "activity {:>3}  ->  {}",
                activation.activity_value(id).to_string(),
                canonical.name(id)
            ),
        ));
    }
    kv_table(
        "Table II — activity values and renaming (paper: Px=12,Py=10,N10=3,N11=5 -> P1,P0,N0,N1)",
        &rows,
    )
}

/// Table III — defect column examples: an intra-transistor short and an
/// inter-transistor net short.
pub fn table3() -> String {
    let cell = spice::parse_cell(NAND2_SPICE).expect("reference netlist parses");
    let prepared = PreparedCell::prepare(cell).expect("valid");
    let layout = prepared.layout();
    let names = layout.column_names();
    let defect_cols: Vec<usize> = (0..layout.num_transistors)
        .flat_map(|k| {
            [Terminal::Drain, Terminal::Gate, Terminal::Source].map(|t| layout.defect_col(k, t))
        })
        .collect();
    let mut out = String::new();
    let _ = writeln!(out, "Table III — defect description columns (NAND2)");
    let header: Vec<&str> = defect_cols.iter().map(|&c| names[c].as_str()).collect();
    let _ = writeln!(out, "  {}", header.join(" "));
    let mpx = prepared.cell.find_transistor("MPX").expect("exists");
    let ds_short = Injection::Short {
        transistor: mpx,
        a: Terminal::Drain,
        b: Terminal::Source,
    };
    let net0 = prepared.cell.find_net("net0").expect("exists");
    let a_pin = prepared.cell.find_net("A").expect("exists");
    let net_short = Injection::NetShort { a: net0, b: a_pin };
    for (injection, tag) in [
        (ds_short, "source-drain short on P1 (old Px)"),
        (net_short, "net0-A inter-transistor short"),
    ] {
        let row = prepared.encode_row(0, injection);
        let cells: Vec<String> = defect_cols
            .iter()
            .map(|&c| format!("{:.0}", row[c]))
            .collect();
        let _ = writeln!(out, "  {}   ({tag})", cells.join(" "));
    }
    out
}

/// Fig. 5 — branch equations of the example schematic.
pub fn fig5() -> String {
    // Pull-down ((N0 & (N1 | N2)) | N3) driving Y, plus the output
    // inverter Y -> Z.
    let plan = StagePlan::new(
        4,
        vec![
            Stage::new(StageExpr::Or(vec![
                StageExpr::And(vec![
                    StageExpr::pin(0),
                    StageExpr::Or(vec![StageExpr::pin(1), StageExpr::pin(2)]),
                ]),
                StageExpr::pin(3),
            ])),
            Stage::new(StageExpr::stage(0)),
        ],
    )
    .expect("valid plan");
    let s = synthesize(
        "FIG5",
        &plan,
        1,
        DriveStyle::SharedNets,
        &NetlistStyle::default(),
    )
    .expect("synthesizable");
    let activation = Activation::extract(&s.cell).expect("valid cell");
    let canonical = CanonicalCell::build(&s.cell, &activation).expect("canonizable");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5 — branch equations (sorted: level, size, equation)"
    );
    for b in canonical.branches() {
        let _ = writeln!(
            out,
            "  level {}  exit {:<6} {:>2} transistors   {}",
            b.level,
            s.cell.net(b.exit).name(),
            b.transistors.len(),
            b.equation
        );
    }
    let _ = writeln!(
        out,
        "  (paper writes the NMOS branch as ((1n&(1n|1n))|1n); our canonical\n   ordering sorts parallel operands, and the output inverter is split\n   into its pull-up/pull-down branches — see DESIGN.md §3.2)"
    );
    out
}

/// Fig. 6 — the two drive configurations: different structures, equal
/// after reduction.
pub fn fig6() -> String {
    let plan = StagePlan::single(
        2,
        StageExpr::And(vec![StageExpr::pin(0), StageExpr::pin(1)]),
    )
    .expect("valid plan");
    let style = NetlistStyle::default();
    let shared = synthesize("NAND2X2", &plan, 2, DriveStyle::SharedNets, &style).expect("ok");
    let split = synthesize("NAND2X2F", &plan, 2, DriveStyle::SplitFingers, &style).expect("ok");
    let canon = |cell: &ca_netlist::Cell| {
        let act = Activation::extract(cell).expect("valid");
        CanonicalCell::build(cell, &act).expect("canonizable")
    };
    let cs = canon(&shared.cell);
    let cf = canon(&split.cell);
    let rows = vec![
        (
            "config B (red net present)".to_string(),
            cs.branches()
                .iter()
                .map(|b| b.equation.clone())
                .collect::<Vec<_>>()
                .join("  "),
        ),
        (
            "config A (red net absent)".to_string(),
            cf.branches()
                .iter()
                .map(|b| b.equation.clone())
                .collect::<Vec<_>>()
                .join("  "),
        ),
        (
            "identical structure?".to_string(),
            format!("{}", cs.wiring_hash() == cf.wiring_hash()),
        ),
        (
            "equivalent (reduced) structure?".to_string(),
            format!("{}", cs.reduced_hash() == cf.reduced_hash()),
        ),
    ];
    kv_table("Fig. 6 — drive configurations of a NAND2 X2", &rows)
}

/// Fig. 1 — conventional flow demonstration on the reference NAND2.
pub fn fig1() -> String {
    let cell = spice::parse_cell(NAND2_SPICE).expect("reference netlist parses");
    let model = conventional_flow(&cell, GenerateOptions::default());
    let (static_classes, dynamic_classes, undetectable) = model.behavior_counts();
    kv_table(
        "Fig. 1 — conventional CA model generation (NAND2)",
        &[
            (
                "defects simulated".into(),
                format!("{}", model.universe.len()),
            ),
            (
                "defect simulations".into(),
                format!("{}", model.defect_simulations),
            ),
            (
                "equivalence classes".into(),
                format!("{}", model.classes.len()),
            ),
            ("static classes".into(), format!("{static_classes}")),
            ("dynamic classes".into(), format!("{dynamic_classes}")),
            ("undetectable classes".into(), format!("{undetectable}")),
            (
                "coverage".into(),
                format!("{:.1}%", model.coverage() * 100.0),
            ),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_artifacts_render() {
        for text in [fig1(), fig4(), fig5(), fig6(), table1(), table2(), table3()] {
            assert!(!text.is_empty());
        }
    }

    #[test]
    fn table2_contains_paper_values() {
        let text = table2();
        assert!(text.contains("12"), "{text}");
        assert!(text.contains("N0"), "{text}");
    }

    #[test]
    fn fig6_reports_equivalence() {
        let text = fig6();
        assert!(text.contains("identical structure?         false") || text.contains("false"));
        assert!(text.contains("true"));
    }
}
