//! `ca-bench trace` — campaign-wide trace round-trip and the
//! Chrome/Perfetto stitcher.
//!
//! Two modes:
//!
//! - **Demo / CI gate** (no `--stitch`): runs a quick *sharded*
//!   campaign (supervisor + real worker processes) plus one `ca-serve`
//!   request with tracing forced on, flushes every process's JSONL
//!   event file, stitches them into a single Chrome `trace_event` JSON
//!   (`TRACE_campaign.json`, loadable in `ui.perfetto.dev` or
//!   `chrome://tracing`), and validates the result: every span's
//!   parent must exist, worker spans must nest under supervisor
//!   shard-attempt spans, and the serve request must carry its
//!   queue/service sub-spans. Any violation is a hard failure.
//! - **Stitch** (`--stitch DIR [--out FILE]`): merges the `*.jsonl`
//!   trace files already in `DIR` — e.g. a real campaign's work
//!   directory — into one Chrome trace, validating parent-link
//!   closure only.
//!
//! Clock alignment: every traced process emits one `anchor` event
//! pairing its monotonic trace clock (`mono_us`) with the sink's
//! unix-epoch timestamp (`ts_us`). The stitcher shifts each process's
//! span timestamps by `ts_us - mono_us`, placing all processes on one
//! epoch timeline (DESIGN.md §14).

// The stitcher feeds a CI gate; a stray unwrap would abort the run
// instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_netlist::library::generate_library;
use ca_netlist::Technology;
use ca_obs::json::{escape_json, parse, JsonValue};
use ca_shard::supervisor::{run_campaign, CampaignConfig, Spawner};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One span parsed out of a per-process JSONL file, with its start
/// already shifted onto the shared epoch timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    /// Trace id, 16 hex digits.
    pub trace: String,
    /// Span id, 16 hex digits.
    pub span: String,
    /// Parent span id, 16 hex digits; all zeros for a root.
    pub parent: String,
    /// Span name (`campaign`, `shard_attempt`, `worker`, `request`...).
    pub name: String,
    /// Epoch-aligned start, microseconds.
    pub ts_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Emitting process id (from that process's anchor event).
    pub pid: u64,
}

/// What a stitch run found and wrote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// JSONL files read.
    pub files: usize,
    /// Distinct emitting processes (anchor events seen).
    pub processes: usize,
    /// Spans stitched.
    pub spans: usize,
    /// Root spans (all-zero parent).
    pub roots: usize,
    /// Where the Chrome trace was written.
    pub out: PathBuf,
}

impl TraceSummary {
    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "trace stitch — {} file(s), {} process(es), {} span(s), {} root(s)\n  \
             wrote {} (open in ui.perfetto.dev or chrome://tracing)\n",
            self.files,
            self.processes,
            self.spans,
            self.roots,
            self.out.display()
        )
    }
}

const ZERO_ID: &str = "0000000000000000";

fn str_field<'a>(line: &'a JsonValue, key: &str) -> Option<&'a str> {
    line.get(key).and_then(|v| v.as_str())
}

fn num_field(line: &JsonValue, key: &str) -> Option<u64> {
    // Span/anchor payload fields are flat strings; the sink's own
    // `ts_us` is a JSON number. Accept both.
    line.get(key)
        .and_then(|v| v.as_u64().or_else(|| v.as_str()?.trim().parse().ok()))
}

/// Parses one process's JSONL trace file into epoch-aligned spans.
/// Returns the spans and the process id, or `None` spans when the file
/// holds no trace events at all (a plain event log is not an error).
fn parse_file(path: &Path, text: &str) -> Result<(Vec<SpanRec>, Option<u64>), String> {
    let name = path.display();
    // Pass 1: the anchor pairs this process's mono clock with epoch time.
    let mut offset: Option<(i64, u64)> = None; // (ts_us - mono_us, pid)
    let mut raw_spans = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = parse(line).map_err(|e| format!("{name}:{}: {e}", lineno + 1))?;
        if str_field(&doc, "target") != Some(ca_obs::trace::TARGET) {
            continue;
        }
        match str_field(&doc, "msg") {
            Some("anchor") => {
                let ts = num_field(&doc, "ts_us")
                    .ok_or_else(|| format!("{name}:{}: anchor without ts_us", lineno + 1))?;
                let mono = num_field(&doc, "mono_us")
                    .ok_or_else(|| format!("{name}:{}: anchor without mono_us", lineno + 1))?;
                let pid = num_field(&doc, "pid")
                    .ok_or_else(|| format!("{name}:{}: anchor without pid", lineno + 1))?;
                offset = Some((ts as i64 - mono as i64, pid));
            }
            Some("span") => {
                let field = |key: &str| {
                    str_field(&doc, key)
                        .map(str::to_string)
                        .ok_or_else(|| format!("{name}:{}: span without {key}", lineno + 1))
                };
                raw_spans.push((
                    field("trace")?,
                    field("span")?,
                    field("parent")?,
                    field("name")?,
                    num_field(&doc, "t0_us")
                        .ok_or_else(|| format!("{name}:{}: span without t0_us", lineno + 1))?,
                    num_field(&doc, "dur_us")
                        .ok_or_else(|| format!("{name}:{}: span without dur_us", lineno + 1))?,
                ));
            }
            _ => {}
        }
    }
    if raw_spans.is_empty() {
        return Ok((Vec::new(), offset.map(|(_, pid)| pid)));
    }
    let Some((shift, pid)) = offset else {
        return Err(format!("{name}: has spans but no clock anchor"));
    };
    let spans = raw_spans
        .into_iter()
        .map(|(trace, span, parent, name, t0_us, dur_us)| SpanRec {
            trace,
            span,
            parent,
            name,
            ts_us: (t0_us as i64 + shift).max(0) as u64,
            dur_us,
            pid,
        })
        .collect();
    Ok((spans, Some(pid)))
}

/// Reads every `*.jsonl` file under `dir` (sorted by name, so output
/// is deterministic for a fixed input set).
///
/// # Errors
///
/// I/O failures, unparseable lines, or a span file with no anchor.
pub fn collect_dir(dir: &Path) -> Result<(Vec<SpanRec>, usize, usize), String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    let mut spans = Vec::new();
    let mut pids = BTreeSet::new();
    let files = paths.len();
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (file_spans, pid) = parse_file(path, &text)?;
        spans.extend(file_spans);
        if let Some(pid) = pid {
            pids.insert(pid);
        }
    }
    Ok((spans, files, pids.len()))
}

/// Parent-link closure: every non-root parent id must name a span that
/// was actually emitted. A dangling parent means a propagation edge is
/// broken (or a process's file is missing from the stitch set).
///
/// # Errors
///
/// Names the first dangling edge.
pub fn validate_closure(spans: &[SpanRec]) -> Result<(), String> {
    let ids: BTreeSet<&str> = spans.iter().map(|s| s.span.as_str()).collect();
    for span in spans {
        if span.parent != ZERO_ID && !ids.contains(span.parent.as_str()) {
            return Err(format!(
                "span {} ({}) has dangling parent {}",
                span.span, span.name, span.parent
            ));
        }
    }
    Ok(())
}

/// Requires at least one `child`-named span whose parent is a
/// `parent`-named span — the structural edges the demo campaign must
/// produce (worker under shard_attempt, queue/service under request).
fn require_edge(spans: &[SpanRec], child: &str, parent: &str) -> Result<(), String> {
    let parents: BTreeSet<&str> = spans
        .iter()
        .filter(|s| s.name == parent)
        .map(|s| s.span.as_str())
        .collect();
    let found = spans
        .iter()
        .any(|s| s.name == child && parents.contains(s.parent.as_str()));
    if found {
        Ok(())
    } else {
        Err(format!("no `{child}` span nests under a `{parent}` span"))
    }
}

/// Renders the Chrome `trace_event` JSON (object form, `X` complete
/// events plus one `process_name` metadata record per process).
pub fn chrome_json(spans: &[SpanRec]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let pids: BTreeSet<u64> = spans.iter().map(|s| s.pid).collect();
    for pid in pids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{pid},\
             \"args\":{{\"name\":\"pid {pid}\"}}}}"
        );
    }
    for span in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"trace\":\"{}\",\"span\":\"{}\",\"parent\":\"{}\"}}}}",
            escape_json(&span.name),
            span.ts_us,
            span.dur_us,
            span.pid,
            span.pid,
            escape_json(&span.trace),
            escape_json(&span.span),
            escape_json(&span.parent),
        );
    }
    out.push_str("]}\n");
    out
}

/// Stitches `dir`'s JSONL trace files into a Chrome trace at `out`.
///
/// # Errors
///
/// Collection failures, an empty span set, a dangling parent link, or
/// failure to write `out`.
pub fn stitch_dir(dir: &Path, out: &Path) -> Result<TraceSummary, String> {
    let (mut spans, files, processes) = collect_dir(dir)?;
    if spans.is_empty() {
        return Err(format!(
            "no trace spans found in {} (was the campaign run with CA_TRACE=1?)",
            dir.display()
        ));
    }
    spans.sort_by(|a, b| (a.ts_us, &a.span).cmp(&(b.ts_us, &b.span)));
    validate_closure(&spans)?;
    ca_store::write_atomic(out, chrome_json(&spans))
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    Ok(TraceSummary {
        files,
        processes,
        spans: spans.len(),
        roots: spans.iter().filter(|s| s.parent == ZERO_ID).count(),
        out: out.to_path_buf(),
    })
}

/// The demo / CI-gate mode: quick sharded campaign + one served
/// request, traced end to end, stitched, and structurally validated.
///
/// # Errors
///
/// Campaign, serve, stitch or validation failures — each rendered.
pub fn demo(profile: Profile, out: &Path) -> Result<TraceSummary, String> {
    // Forcing tracing on (rather than requiring CA_TRACE in our own
    // env) keeps the gate self-contained; the supervisor still injects
    // CA_TRACE=1 into workers because `enabled()` honours the override.
    ca_obs::trace::set_enabled(Some(true));
    let result = demo_inner(profile, out);
    ca_obs::trace::set_enabled(None);
    result
}

fn demo_inner(profile: Profile, out: &Path) -> Result<TraceSummary, String> {
    let work_dir = std::env::temp_dir().join(format!("ca-bench-trace-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    std::fs::create_dir_all(&work_dir)
        .map_err(|e| format!("cannot create {}: {e}", work_dir.display()))?;

    // A small sharded campaign with real worker processes: ≥2 shards so
    // cross-process propagation is actually exercised.
    let mut library = generate_library(&profile.library_config(Technology::C40));
    library.cells.truncate(match profile {
        Profile::Quick => 6,
        Profile::Full => 24,
    });
    let mut config = CampaignConfig::new(2);
    config.heartbeat_interval = Duration::from_millis(50);
    config.heartbeat_timeout = Duration::from_secs(30);
    let spawner = Spawner::current_exe(vec!["shard-worker".into()])
        .map_err(|e| format!("cannot locate own executable: {e}"))?;
    run_campaign(&library, &config, &spawner, &work_dir.join("campaign"))
        .map_err(|e| format!("traced campaign failed: {e}"))?;

    // One served request through a live in-process daemon, so the wire
    // propagation edge (client rpc span -> server request span) is in
    // the same stitched trace.
    serve_once(&library, &work_dir)?;

    // The supervisor + serve spans live in this process's sink; worker
    // processes already flushed their own files into the campaign dir.
    ca_obs::flush_to(&work_dir.join("campaign").join("supervisor.trace.jsonl"))
        .map_err(|e| format!("cannot flush supervisor events: {e}"))?;

    let summary = stitch_dir(&work_dir.join("campaign"), out)?;
    let (spans, _, _) = collect_dir(&work_dir.join("campaign"))?;
    // The acceptance edges: cross-process nesting and the serve
    // request's server-side breakdown.
    require_edge(&spans, "shard", "campaign")?;
    require_edge(&spans, "shard_attempt", "shard")?;
    require_edge(&spans, "worker", "shard_attempt")?;
    require_edge(&spans, "request", "rpc")?;
    require_edge(&spans, "queue", "request")?;
    require_edge(&spans, "service", "request")?;
    let _ = std::fs::remove_dir_all(&work_dir);
    Ok(summary)
}

/// Starts an in-process daemon, characterizes one cell with a traced
/// client, drains. The client span parents under a demo root so the
/// whole exchange lands in one trace tree.
fn serve_once(library: &ca_netlist::library::Library, work_dir: &Path) -> Result<(), String> {
    let mut config = ca_serve::ServeConfig::new(work_dir.join("serve.caj"), library.clone());
    config.admission.slots = 1;
    let uds = work_dir.join("serve.sock");
    let server = ca_serve::Server::start(config, &[ca_serve::Endpoint::Uds(uds.clone())])
        .map_err(|e| format!("serve demo daemon failed to start: {e}"))?;
    let root = ca_obs::trace::root("serve_demo", library.len() as u64, "client");
    let mut client = ca_serve::ServeClient::connect_uds(&uds)
        .map_err(|e| format!("serve demo connect failed: {e}"))?;
    let name = library
        .cells
        .first()
        .map(|lc| lc.cell.name().to_string())
        .ok_or_else(|| "serve demo needs a non-empty library".to_string())?;
    match client
        .characterize("trace-demo", &name, 0)
        .map_err(|e| format!("serve demo request failed: {e}"))?
    {
        ca_serve::Response::Model { .. } => {}
        other => return Err(format!("serve demo got {other:?}")),
    }
    drop(client);
    drop(root);
    server.shutdown();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: &str, parent: &str, name: &str, ts: u64, pid: u64) -> SpanRec {
        SpanRec {
            trace: "00000000000000aa".into(),
            span: id.into(),
            parent: parent.into(),
            name: name.into(),
            ts_us: ts,
            dur_us: 10,
            pid,
        }
    }

    #[test]
    fn closure_accepts_roots_and_rejects_dangling_parents() {
        let ok = vec![
            span("0000000000000001", ZERO_ID, "campaign", 0, 1),
            span("0000000000000002", "0000000000000001", "shard", 1, 1),
        ];
        validate_closure(&ok).expect("closed tree validates");
        let bad = vec![span("0000000000000002", "00000000000000ff", "shard", 1, 1)];
        let err = validate_closure(&bad).unwrap_err();
        assert!(err.contains("dangling parent"), "{err}");
    }

    #[test]
    fn edges_are_checked_by_name_pairing() {
        let spans = vec![
            span("0000000000000001", ZERO_ID, "shard_attempt", 0, 1),
            span("0000000000000002", "0000000000000001", "worker", 1, 2),
        ];
        require_edge(&spans, "worker", "shard_attempt").expect("edge present");
        let err = require_edge(&spans, "request", "rpc").unwrap_err();
        assert!(err.contains("request"), "{err}");
    }

    #[test]
    fn chrome_json_is_parseable_and_carries_span_args() {
        let spans = vec![
            span("0000000000000001", ZERO_ID, "campaign", 5, 1),
            span("0000000000000002", "0000000000000001", "shard \"q\"", 6, 2),
        ];
        let json = chrome_json(&spans);
        let doc = parse(&json).expect("chrome trace parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 2 process_name metadata records + 2 span events.
        assert_eq!(events.len(), 4);
        let x: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .collect();
        assert_eq!(x.len(), 2);
        assert_eq!(
            x[1].get("args")
                .and_then(|a| a.get("parent"))
                .and_then(|v| v.as_str()),
            Some("0000000000000001")
        );
    }

    #[test]
    fn files_align_clocks_through_their_anchor() {
        // A minimal per-process file: anchor at epoch ts 1000 with
        // mono 100 (offset +900), one span starting at mono 150.
        let text = concat!(
            "{\"seq\":0,\"ts_us\":1000,\"level\":\"info\",\"target\":\"ca_trace\",",
            "\"msg\":\"anchor\",\"mono_us\":\"100\",\"pid\":\"7\"}\n",
            "{\"seq\":1,\"ts_us\":1060,\"level\":\"info\",\"target\":\"ca_trace\",",
            "\"msg\":\"span\",\"trace\":\"00000000000000aa\",\"span\":\"0000000000000001\",",
            "\"parent\":\"0000000000000000\",\"name\":\"campaign\",\"t0_us\":\"150\",",
            "\"dur_us\":\"40\"}\n",
        );
        let (spans, pid) = parse_file(Path::new("x.jsonl"), text).expect("parses");
        assert_eq!(pid, Some(7));
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].ts_us, 1050, "150 + (1000 - 100)");
        assert_eq!(spans[0].dur_us, 40);
        assert_eq!(spans[0].pid, 7);

        // Spans without an anchor cannot be placed on the timeline.
        let torn = text.lines().nth(1).map(|l| format!("{l}\n")).expect("line");
        let err = parse_file(Path::new("x.jsonl"), &torn).unwrap_err();
        assert!(err.contains("no clock anchor"), "{err}");
    }
}
