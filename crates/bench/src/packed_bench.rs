//! `ca-bench packed` — cold-simulation benchmark of the bit-parallel
//! packed engine against the scalar fixpoint solver.
//!
//! The workload is the profile's C40 catalog: for every cell the full
//! intra-transistor defect universe is characterized against the
//! exhaustive `4^n` stimulus set, once through
//! [`DetectionTable::generate_scalar`] and once through
//! [`DetectionTable::generate_packed`]. Both passes are *cold*: no
//! structure cache is in play (detection-table generation has none) and
//! the process is warmed up on one untimed cell first so neither pass
//! pays the one-off page-in/allocator cost (the same discipline
//! `ca-bench parallel` uses for its serial baseline).
//!
//! Before any number is reported the two table sets are compared bit
//! for bit, and the `.cam` exports of a full characterization run with
//! `CA_PACKED` forced off and forced on are asserted byte-identical.

// Benchmark results feed BENCH_packed.json; a stray unwrap would abort
// the run instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_core::{export_cam, PreparedCell};
use ca_defects::{DefectUniverse, DetectionTable, GenerateOptions};
use ca_netlist::library::generate_library;
use ca_netlist::{Cell, Technology};
use ca_sim::{set_packed_override, DetectionPolicy, PackedStimulus, Stimulus};
use std::time::Instant;

/// Measured numbers of one packed-vs-scalar run.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedBench {
    /// Library size in cells.
    pub cells: usize,
    /// Total defects simulated across the library.
    pub defects: usize,
    /// Total stimuli evaluated across the library.
    pub stimuli: usize,
    /// Scalar baseline over the whole library, seconds (cold).
    pub scalar_s: f64,
    /// Packed engine over the same workload, seconds (cold).
    pub packed_s: f64,
    /// Stimulus blocks the packed passes transposed.
    pub blocks: usize,
    /// Occupied lanes across those blocks (≤ `blocks * 64`).
    pub lanes_used: usize,
    /// `ca_sim.kernel.compiled` delta of the packed pass.
    pub kernels_compiled: u64,
    /// `ca_sim.kernel.fallback` delta of the packed pass.
    pub kernel_fallbacks: u64,
    /// `ca_sim.packed.lanes` delta (lanes actually solved).
    pub solver_lanes: u64,
    /// `ca_sim.packed.cone_skips` delta (faulty lanes proven golden).
    pub cone_skips: u64,
    /// `.cam` documents compared between the forced-off and forced-on
    /// characterization runs.
    pub cam_files: usize,
    /// Whether every compared `.cam` document was byte-identical.
    pub cam_identical: bool,
}

impl PackedBench {
    /// Cold-path speedup of the packed engine over the scalar baseline.
    pub fn speedup(&self) -> f64 {
        if self.packed_s > 0.0 {
            self.scalar_s / self.packed_s
        } else {
            0.0
        }
    }

    /// Mean fraction of the 64 lanes a transposed block occupies.
    pub fn lane_occupancy(&self) -> f64 {
        if self.blocks > 0 {
            self.lanes_used as f64 / (self.blocks as f64 * 64.0)
        } else {
            0.0
        }
    }

    /// The `BENCH_packed.json` document (hand-rendered: the workspace
    /// is dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"cells\": {},\n  \"defects\": {},\n  \"stimuli\": {},\n  \
             \"scalar_s\": {:.3},\n  \"packed_s\": {:.3},\n  \"speedup\": {:.2},\n  \
             \"blocks\": {},\n  \"lanes_used\": {},\n  \"lane_occupancy\": {:.4},\n  \
             \"kernels_compiled\": {},\n  \"kernel_fallbacks\": {},\n  \
             \"solver_lanes\": {},\n  \"cone_skips\": {},\n  \"cam_files\": {},\n  \
             \"cam_identical\": {}\n}}\n",
            self.cells,
            self.defects,
            self.stimuli,
            self.scalar_s,
            self.packed_s,
            self.speedup(),
            self.blocks,
            self.lanes_used,
            self.lane_occupancy(),
            self.kernels_compiled,
            self.kernel_fallbacks,
            self.solver_lanes,
            self.cone_skips,
            self.cam_files,
            self.cam_identical
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "packed simulation engine — {} cells, {} defects, {} stimuli\n  \
             scalar baseline: {:.3} s\n  packed engine:   {:.3} s  ({:.1}x)\n  \
             lanes: {}/{} occupied ({:.1}%), {} solved by packed solver, {} cone-skipped\n  \
             kernels: {} compiled, {} fallbacks\n  \
             cam exports: {} documents, byte-identical: {}\n",
            self.cells,
            self.defects,
            self.stimuli,
            self.scalar_s,
            self.packed_s,
            self.speedup(),
            self.lanes_used,
            self.blocks * 64,
            self.lane_occupancy() * 100.0,
            self.solver_lanes,
            self.cone_skips,
            self.kernels_compiled,
            self.kernel_fallbacks,
            self.cam_files,
            self.cam_identical
        )
    }
}

/// One cell's cold workload: the full intra-transistor universe against
/// the exhaustive stimulus set.
struct Workload {
    cell: Cell,
    universe: DefectUniverse,
    stimuli: Vec<Stimulus>,
}

/// Runs the benchmark: scalar pass, packed pass, bit-identity check of
/// every detection table, then the `.cam` byte-identity check.
///
/// # Panics
///
/// Panics if any packed table differs from its scalar twin or any
/// `.cam` export differs between the forced-off and forced-on runs — a
/// wrong fast path must never report a speedup.
pub fn run(profile: Profile) -> PackedBench {
    let library = generate_library(&profile.library_config(Technology::C40));
    let policy = DetectionPolicy::default();
    let workloads: Vec<Workload> = library
        .cells
        .iter()
        .map(|lc| Workload {
            cell: lc.cell.clone(),
            universe: DefectUniverse::intra_transistor(&lc.cell),
            stimuli: Stimulus::all(lc.cell.num_inputs()),
        })
        .collect();
    assert!(!workloads.is_empty(), "benchmark library is empty");

    // Untimed warm-up: page in both code paths so the first timed pass
    // does not carry the process cold-start (satellite of the
    // `ca-bench parallel` serial-baseline fix).
    {
        let w = &workloads[0];
        let _ = DetectionTable::generate_scalar(&w.cell, &w.universe, &w.stimuli, policy);
        let _ = DetectionTable::generate_packed(&w.cell, &w.universe, &w.stimuli, policy);
    }

    let scalar_start = Instant::now();
    let scalar: Vec<DetectionTable> = workloads
        .iter()
        .map(|w| DetectionTable::generate_scalar(&w.cell, &w.universe, &w.stimuli, policy))
        .collect();
    let scalar_s = scalar_start.elapsed().as_secs_f64();

    let before = ca_obs::global().snapshot();
    let packed_start = Instant::now();
    let packed: Vec<DetectionTable> = workloads
        .iter()
        .map(|w| {
            DetectionTable::generate_packed(&w.cell, &w.universe, &w.stimuli, policy)
                .unwrap_or_else(|| {
                    // Kernel declined (oversized cell): the flow would
                    // fall back to the scalar path, so the bench does too.
                    DetectionTable::generate_scalar(&w.cell, &w.universe, &w.stimuli, policy)
                })
        })
        .collect();
    let packed_s = packed_start.elapsed().as_secs_f64();
    let delta = ca_obs::global().snapshot().delta(&before);
    let counter = |name: &str| delta.counters.get(name).map(|&(_, v)| v).unwrap_or(0);

    for (w, (p, s)) in workloads.iter().zip(packed.iter().zip(&scalar)) {
        assert_eq!(
            p,
            s,
            "packed detection table differs from scalar for {}",
            w.cell.name()
        );
    }

    let (mut blocks, mut lanes_used) = (0usize, 0usize);
    for w in &workloads {
        let ps = PackedStimulus::pack(w.cell.num_inputs(), &w.stimuli);
        blocks += ps.blocks().len();
        lanes_used += ps.blocks().iter().map(|b| b.occupancy()).sum::<usize>();
    }

    let (cam_files, cam_identical) = cam_byte_identity(&library.cells);

    PackedBench {
        cells: workloads.len(),
        defects: workloads.iter().map(|w| w.universe.len()).sum(),
        stimuli: workloads.iter().map(|w| w.stimuli.len()).sum(),
        scalar_s,
        packed_s,
        blocks,
        lanes_used,
        kernels_compiled: counter("ca_sim.kernel.compiled"),
        kernel_fallbacks: counter("ca_sim.kernel.fallback"),
        solver_lanes: counter("ca_sim.packed.lanes"),
        cone_skips: counter("ca_sim.packed.cone_skips"),
        cam_files,
        cam_identical,
    }
}

/// Characterizes the library twice — packed forced off, then forced on —
/// and asserts the `.cam` exports are byte-identical.
///
/// # Panics
///
/// Panics on any characterization failure or any differing document.
fn cam_byte_identity(cells: &[ca_netlist::library::LibraryCell]) -> (usize, bool) {
    let characterize = |packed: bool| -> Vec<(String, String)> {
        set_packed_override(Some(packed));
        let prepared: Vec<PreparedCell> = cells
            .iter()
            .map(|lc| {
                PreparedCell::characterize(lc.cell.clone(), GenerateOptions::default())
                    .unwrap_or_else(|e| {
                        panic!("characterization failed for {}: {e}", lc.cell.name())
                    })
            })
            .collect();
        export_cam(&prepared)
    };
    let scalar_cam = characterize(false);
    let packed_cam = characterize(true);
    set_packed_override(None);

    assert_eq!(scalar_cam.len(), packed_cam.len(), "export count differs");
    for ((sn, sb), (pn, pb)) in scalar_cam.iter().zip(&packed_cam) {
        assert_eq!(sn, pn, "export order differs");
        assert_eq!(
            sb, pb,
            "cam export for {sn} differs between scalar and packed"
        );
    }
    (scalar_cam.len(), true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let bench = PackedBench {
            cells: 12,
            defects: 300,
            stimuli: 500,
            scalar_s: 10.0,
            packed_s: 0.5,
            blocks: 12,
            lanes_used: 500,
            kernels_compiled: 12,
            kernel_fallbacks: 0,
            solver_lanes: 9000,
            cone_skips: 4000,
            cam_files: 12,
            cam_identical: true,
        };
        let json = bench.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"speedup\": 20.00"), "{json}");
        assert!(json.contains("\"cam_identical\": true"), "{json}");
        assert!((bench.lane_occupancy() - 500.0 / 768.0).abs() < 1e-9);
        assert!(bench.render().contains("20.0x"));
    }

    #[test]
    fn zero_division_is_guarded() {
        let bench = PackedBench {
            cells: 0,
            defects: 0,
            stimuli: 0,
            scalar_s: 0.0,
            packed_s: 0.0,
            blocks: 0,
            lanes_used: 0,
            kernels_compiled: 0,
            kernel_fallbacks: 0,
            solver_lanes: 0,
            cone_skips: 0,
            cam_files: 0,
            cam_identical: false,
        };
        assert_eq!(bench.speedup(), 0.0);
        assert_eq!(bench.lane_occupancy(), 0.0);
    }
}
