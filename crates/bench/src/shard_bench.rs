//! `ca-bench shard` — wall-clock benchmark of the sharded supervised
//! campaign against the unsharded single-process session run.
//!
//! The point is not raw speedup (workers re-pay process startup and the
//! merged store is re-verified by a final pass) but evidence for the
//! subsystem's core claim: the sharded campaign's `.cam` exports are
//! **byte-identical** to the unsharded run's. The benchmark fails hard
//! on any divergence before reporting a single number.

// Benchmark results feed BENCH_shard.json; a stray unwrap would abort
// the run instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_core::{
    characterize_library_robust_with_session, export_cam_with, CharCache, FaultPolicy, Session,
};
use ca_defects::GenerateOptions;
use ca_exec::Executor;
use ca_netlist::library::generate_library;
use ca_netlist::Technology;
use ca_shard::supervisor::{run_campaign, CampaignConfig, Spawner};
use ca_sim::SimBudget;
use std::time::{Duration, Instant};

/// Measured numbers of one sharded-campaign benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBench {
    /// Shard count of the campaign.
    pub shards: usize,
    /// Library size in cells.
    pub cells: usize,
    /// Unsharded single-process session run, seconds.
    pub single_s: f64,
    /// Sharded campaign (spawn + supervise + merge + final pass), seconds.
    pub sharded_s: f64,
    /// Records in the merged store.
    pub merged_records: usize,
    /// Shard attempts beyond the first (0 in a healthy run).
    pub retries: usize,
    /// Whether the sharded exports matched the unsharded ones byte for
    /// byte (always true when this struct is returned by [`run`]).
    pub identical: bool,
}

impl ShardBench {
    /// The `BENCH_shard.json` document (hand-rendered: the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"shards\": {},\n  \"cells\": {},\n  \"single_s\": {:.3},\n  \
             \"sharded_s\": {:.3},\n  \"merged_records\": {},\n  \"retries\": {},\n  \
             \"identical\": {}\n}}\n",
            self.shards,
            self.cells,
            self.single_s,
            self.sharded_s,
            self.merged_records,
            self.retries,
            self.identical
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "sharded campaign — {} cells over {} shard(s)\n  \
             unsharded session run: {:.2} s\n  sharded campaign:      {:.2} s\n  \
             merged records: {}, retries: {}, exports byte-identical: {}\n",
            self.cells,
            self.shards,
            self.single_s,
            self.sharded_s,
            self.merged_records,
            self.retries,
            self.identical
        )
    }
}

/// Runs the benchmark: unsharded golden run, then a sharded campaign
/// with real worker processes, then a byte-identity check.
///
/// # Panics
///
/// Panics if either run fails or if the sharded exports differ from the
/// unsharded ones — a sharding layer that changes model bytes must
/// never report a timing.
pub fn run(profile: Profile, shards: usize) -> ShardBench {
    let library = generate_library(&profile.library_config(Technology::C40));
    let options = GenerateOptions::default();
    let budget = SimBudget::unlimited();
    let work_dir = std::env::temp_dir().join(format!("ca-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    std::fs::create_dir_all(&work_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", work_dir.display()));

    // Unsharded golden: the same robust session driver, one process.
    let single_start = Instant::now();
    let session = Session::open(work_dir.join("single.caj"))
        .unwrap_or_else(|e| panic!("cannot open golden session: {e}"));
    let golden = characterize_library_robust_with_session(
        &library,
        options,
        &budget,
        FaultPolicy::SkipAndReport,
        &Executor::from_env(),
        &CharCache::new(),
        &session,
    )
    .unwrap_or_else(|e| panic!("unsharded run failed: {e}"));
    let single_s = single_start.elapsed().as_secs_f64();
    let golden_cam = export_cam_with(&golden.prepared, true);

    // Sharded campaign with real worker processes (this binary,
    // re-invoked; see `main.rs`'s shard-worker dispatch).
    let mut config = CampaignConfig::new(shards);
    config.options = options;
    config.budget = budget;
    config.heartbeat_interval = Duration::from_millis(50);
    config.heartbeat_timeout = Duration::from_secs(30);
    let spawner = Spawner::current_exe(vec!["shard-worker".into()])
        .unwrap_or_else(|e| panic!("cannot locate own executable: {e}"));
    let sharded_start = Instant::now();
    let campaign = run_campaign(&library, &config, &spawner, &work_dir.join("campaign"))
        .unwrap_or_else(|e| panic!("sharded campaign failed: {e}"));
    let sharded_s = sharded_start.elapsed().as_secs_f64();

    assert!(
        campaign.skipped_cells.is_empty(),
        "healthy campaign quarantined cells: {:?}",
        campaign.skipped_cells
    );
    let sharded_cam = export_cam_with(&campaign.outcome.prepared, true);
    assert_eq!(
        sharded_cam.len(),
        golden_cam.len(),
        "sharded campaign exported a different cell set"
    );
    for ((gn, gc), (sn, sc)) in golden_cam.iter().zip(&sharded_cam) {
        assert_eq!(gn, sn, "export order must be library order");
        assert_eq!(gc, sc, "sharded .cam for {gn} differs from unsharded");
    }

    let bench = ShardBench {
        shards,
        cells: library.len(),
        single_s,
        sharded_s,
        merged_records: campaign.report.merge.merged_records,
        retries: campaign.report.retries,
        identical: true,
    };
    let _ = std::fs::remove_dir_all(&work_dir);
    bench
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_is_well_formed_enough() {
        let bench = ShardBench {
            shards: 4,
            cells: 120,
            single_s: 8.0,
            sharded_s: 3.0,
            merged_records: 120,
            retries: 0,
            identical: true,
        };
        let json = bench.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"shards\": 4"), "{json}");
        assert!(json.contains("\"identical\": true"), "{json}");
        assert!(bench.render().contains("4 shard(s)"));
    }
}
