//! Text rendering of the paper-style accuracy grids and tables.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Accuracy grid keyed by (transistor count, input count), mirroring the
/// layout of the paper's Table IV.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    cells: BTreeMap<(usize, usize), Vec<f64>>,
}

impl Grid {
    /// An empty grid.
    pub fn new() -> Grid {
        Grid::default()
    }

    /// Records one cell's accuracy under its (inputs, transistors) key.
    pub fn record(&mut self, inputs: usize, transistors: usize, accuracy: f64) {
        self.cells
            .entry((transistors, inputs))
            .or_default()
            .push(accuracy);
    }

    /// All recorded accuracies, flattened.
    pub fn all_accuracies(&self) -> Vec<f64> {
        self.cells.values().flatten().copied().collect()
    }

    /// Mean accuracy over every recorded cell.
    pub fn mean(&self) -> f64 {
        let all = self.all_accuracies();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().sum::<f64>() / all.len() as f64
    }

    /// Fraction of cells above `threshold`.
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        let all = self.all_accuracies();
        if all.is_empty() {
            return 0.0;
        }
        all.iter().filter(|&&a| a > threshold).count() as f64 / all.len() as f64
    }

    /// Number of evaluated cells.
    pub fn num_cells(&self) -> usize {
        self.all_accuracies().len()
    }

    /// Renders the grid in the paper's Table IV layout: rows = transistor
    /// counts, columns = input counts; a `*` marks groups where at least
    /// one cell was predicted perfectly (the paper's green background).
    pub fn render(&self, title: &str) -> String {
        let mut inputs: Vec<usize> = self.cells.keys().map(|&(_, i)| i).collect();
        inputs.sort_unstable();
        inputs.dedup();
        let mut transistor_counts: Vec<usize> = self.cells.keys().map(|&(t, _)| t).collect();
        transistor_counts.sort_unstable();
        transistor_counts.dedup();
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>6} |", "T \\ in");
        for i in &inputs {
            let _ = write!(out, "{i:>9} |");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(8 + inputs.len() * 11));
        for t in &transistor_counts {
            let _ = write!(out, "{t:>6} |");
            for i in &inputs {
                match self.cells.get(&(*t, *i)) {
                    Some(accs) if !accs.is_empty() => {
                        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
                        let perfect = accs.iter().any(|&a| a >= 1.0 - 1e-12);
                        let mark = if perfect { '*' } else { ' ' };
                        let _ = write!(out, " {:>7.2}{} |", mean * 100.0, mark);
                    }
                    _ => {
                        let _ = write!(out, "{:>10} |", "");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(
            out,
            "cells: {}   mean: {:.2}%   >97%: {:.0}%   (* = group contains a 100% cell)",
            self.num_cells(),
            self.mean() * 100.0,
            self.fraction_above(0.97) * 100.0
        );
        out
    }
}

/// Renders a simple two-column name/value table.
pub fn kv_table(title: &str, rows: &[(String, String)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<width$}  {v}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_statistics() {
        let mut g = Grid::new();
        g.record(2, 4, 1.0);
        g.record(2, 4, 0.9);
        g.record(3, 6, 0.98);
        assert_eq!(g.num_cells(), 3);
        assert!((g.mean() - 0.96).abs() < 1e-9);
        assert!((g.fraction_above(0.97) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn render_marks_perfect_groups() {
        let mut g = Grid::new();
        g.record(2, 4, 1.0);
        g.record(2, 4, 0.9);
        g.record(3, 6, 0.5);
        let text = g.render("demo");
        assert!(text.contains("95.00*"));
        assert!(text.contains("50.00 "));
    }

    #[test]
    fn empty_grid_renders_without_panicking() {
        let g = Grid::new();
        let text = g.render("empty");
        assert!(text.contains("cells: 0"));
        assert_eq!(g.mean(), 0.0);
        assert_eq!(g.fraction_above(0.5), 0.0);
    }

    #[test]
    fn kv_table_aligns() {
        let text = kv_table(
            "t",
            &[("a".into(), "1".into()), ("long".into(), "2".into())],
        );
        assert!(text.contains("a     1"));
    }
}
