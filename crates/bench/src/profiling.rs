//! `ca-bench profile` — end-to-end flow profile.
//!
//! Runs a representative characterization campaign through every
//! instrumented layer — lint, a journaled robust characterization
//! (simulator, cache, session, store), a session resume, CAM export,
//! forest training, batch prediction, and a short in-process serving
//! pass through the `ca-serve` daemon — wrapping each phase in a
//! [`FlowProfile`] stage. The result renders as a human table and as
//! the machine artifact `BENCH_profile.json` (schema `ca-obs-profile/1`,
//! validated by `ca-bench profile-check` in CI).
//!
//! The workload reuses the variant-heavy benchmark library of
//! [`crate::perf`] truncated to a bounded size, with one cell corrupted
//! so the quarantine path (and its rate) is exercised, not just
//! asserted empty.

// Profile runs feed the CI gate; a stray unwrap would abort the run
// instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_core::{
    characterize_library_robust_with_session, export_cam_with, CharCache, Executor, FaultPolicy,
    MlFlow, RobustOutcome, Session,
};
use ca_defects::GenerateOptions;
use ca_netlist::corrupt::{corrupt_cell, Corruption};
use ca_netlist::library::Library;
use ca_netlist::lint::{lint, Severity};
use ca_obs::FlowProfile;
use ca_sim::SimBudget;
use std::path::Path;

/// The metric prefixes `profile-check` requires a profile to cover:
/// the taxonomy prefixes of the metric inventory `ca-audit` extracts
/// from the workspace sources under `root`. When the sources are not
/// present (an installed binary run outside the repo), falls back to
/// the prefixes baked into [`ca_obs::INSTRUMENTED_PREFIXES`]. When
/// both are available they must agree byte-for-byte — drift between
/// the sources and the baked-in list is an error, not a fallback.
pub fn required_prefixes(root: &Path) -> Result<Vec<String>, String> {
    let mut baked: Vec<String> = ca_obs::INSTRUMENTED_PREFIXES
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    baked.sort();
    if !root.join("crates").is_dir() {
        return Ok(baked);
    }
    let inv = ca_audit::metric_inventory(root).map_err(|e| {
        format!(
            "cannot extract metric inventory from {}: {e}",
            root.display()
        )
    })?;
    let extracted = ca_audit::inventory_prefixes(&inv);
    if extracted != baked {
        return Err(format!(
            "metric inventory drift: sources record prefixes {extracted:?} \
             but INSTRUMENTED_PREFIXES bakes {baked:?}"
        ));
    }
    Ok(extracted)
}

/// Library size cap per profile: the flow profile measures stage
/// *shape*, not throughput, so it stays deliberately small.
fn max_cells(profile: Profile) -> usize {
    match profile {
        Profile::Quick => 12,
        Profile::Full => 48,
    }
}

/// The profiled workload: the benchmark variant library truncated to
/// [`max_cells`], with one cell's output floated so the quarantine
/// path runs.
pub fn workload_library(profile: Profile) -> Library {
    let mut library = crate::perf::bench_library(profile);
    library.cells.truncate(max_cells(profile));
    if library.cells.len() > 2 {
        if let Ok(broken) = corrupt_cell(&library.cells[2].cell, Corruption::FloatingOutput, 7) {
            library.cells[2].cell = broken;
        }
    }
    library
}

/// Runs the instrumented end-to-end flow on `executor`, journaling into
/// a session store at `store`, and returns the aggregated profile.
///
/// # Errors
///
/// Returns a rendered message on any stage failure (store I/O, an
/// unexpectedly empty training set, a prediction without coverage).
pub fn run_with(
    profile: Profile,
    store: &Path,
    executor: &Executor,
) -> Result<FlowProfile, String> {
    let library = workload_library(profile);
    let options = GenerateOptions::default();
    let budget = SimBudget::unlimited();
    let label = match profile {
        Profile::Quick => "quick",
        Profile::Full => "full",
    };
    let mut fp = FlowProfile::new(label, executor.threads());
    fp.set_meta("cells", library.len() as u64);
    // Root span for the whole profiled flow (inert unless CA_TRACE is
    // set): stage spans and everything the stages call parent here.
    // The fingerprint is the workload size — deterministic per profile.
    let _profile_span = ca_obs::trace::root("profile", library.len() as u64, "bench");

    let lint_rejects = fp.stage("lint", || {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        library
            .cells
            .iter()
            .filter(|lc| lint(&lc.cell).iter().any(|f| f.severity == Severity::Error))
            .count() as u64
    });
    fp.set_meta("lint_rejects", lint_rejects);

    // Fresh characterization: every layer under a journaling session.
    let cache = CharCache::new();
    let outcome = fp.stage("characterize", || -> Result<RobustOutcome, String> {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        let session = Session::open(store).map_err(|e| e.to_string())?;
        characterize_library_robust_with_session(
            &library,
            options,
            &budget,
            FaultPolicy::SkipAndReport,
            executor,
            &cache,
            &session,
        )
        .map_err(|e| e.to_string())
    })?;

    // Resume against the same store: models and verdicts replay from
    // the journal instead of re-simulating.
    let resumed = fp.stage("resume", || -> Result<RobustOutcome, String> {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        let session = Session::open(store).map_err(|e| e.to_string())?;
        characterize_library_robust_with_session(
            &library,
            options,
            &budget,
            FaultPolicy::SkipAndReport,
            executor,
            &CharCache::new(),
            &session,
        )
        .map_err(|e| e.to_string())
    })?;
    if resumed.prepared.len() != outcome.prepared.len() {
        return Err(format!(
            "resume diverged: {} models fresh vs {} resumed",
            outcome.prepared.len(),
            resumed.prepared.len()
        ));
    }

    let exported = fp.stage("export", || {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        let cams = export_cam_with(&outcome.prepared, true);
        let bytes: usize = cams.iter().map(|(_, body)| body.len()).sum();
        ca_obs::counter!("ca_bench.export.models", Work).add(cams.len() as u64);
        ca_obs::counter!("ca_bench.export.bytes", Work).add(bytes as u64);
        cams.len() as u64
    });
    fp.set_meta("exported_models", exported);

    let ml = fp.stage("forest_fit", || {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        MlFlow::train(&outcome.prepared, profile.ml_params()).map_err(|e| e.to_string())
    })?;

    fp.stage("predict", || -> Result<(), String> {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        let covered: Vec<_> = outcome
            .prepared
            .iter()
            .filter(|p| ml.covers(p))
            .cloned()
            .collect();
        ca_obs::counter!("ca_bench.predict.cells", Work).add(covered.len() as u64);
        ml.predict_batch(&covered, executor)
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;

    // A short serving pass over the same workload: an in-process daemon
    // answers a couple of requests sequentially (one slot, one client),
    // so the profile — and the profile-check CI gate — covers the
    // `ca_serve` layer too. Sequential requests keep every Work/Outcome
    // counter thread-invariant.
    fp.stage("serve", || -> Result<(), String> {
        ca_obs::counter!("ca_bench.profile.stages", Work).inc();
        let mut serve_lib = library.clone();
        serve_lib.cells.truncate(2);
        let mut config = ca_serve::ServeConfig::new(store.with_extension("serve.caj"), serve_lib);
        config.admission.slots = 1;
        let uds = store.with_extension("serve.sock");
        let server = ca_serve::Server::start(config, &[ca_serve::Endpoint::Uds(uds.clone())])
            .map_err(|e| e.to_string())?;
        let mut client = ca_serve::ServeClient::connect_uds(&uds).map_err(|e| e.to_string())?;
        let mut served = 0u64;
        for lc in library.cells.iter().take(2) {
            match client
                .characterize("profile", lc.cell.name(), 0)
                .map_err(|e| e.to_string())?
            {
                ca_serve::Response::Model { .. } => served += 1,
                other => return Err(format!("unexpected serve response: {other:?}")),
            }
        }
        drop(client);
        server.shutdown();
        ca_obs::counter!("ca_bench.profile.served", Work).add(served);
        Ok(())
    })?;

    let stats = cache.stats();
    fp.set_rate("cache_hit_rate", stats.hit_rate());
    fp.set_rate("cache_bypass_rate", stats.bypass_rate());
    let cells = library.len().max(1) as f64;
    fp.set_rate("quarantine_rate", outcome.quarantine.len() as f64 / cells);
    fp.set_rate("degraded_rate", outcome.degraded_count() as f64 / cells);
    fp.set_meta("models", outcome.prepared.len() as u64);
    fp.set_meta("quarantined", outcome.quarantine.len() as u64);
    Ok(fp)
}

/// [`run_with`] on the `CA_THREADS` executor and a temporary store that
/// is removed afterwards.
///
/// # Errors
///
/// See [`run_with`]; additionally fails when no scratch directory can
/// be created.
pub fn run(profile: Profile) -> Result<FlowProfile, String> {
    let dir = std::env::temp_dir().join(format!("ca-bench-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let store = dir.join("profile.castore");
    let result = run_with(profile, &store, &Executor::from_env());
    let _ = std::fs::remove_dir_all(&dir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test only: stage deltas read the global registry, so a
    /// sibling test running concurrently in this binary would leak its
    /// counts into our stages. (The cross-thread determinism assertions
    /// live in `tests/obs_determinism.rs` for the same reason.)
    #[test]
    fn quick_profile_emits_a_valid_report() {
        let dir =
            std::env::temp_dir().join(format!("ca-bench-profiling-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let store = dir.join("s.castore");
        let fp =
            run_with(Profile::Quick, &store, &Executor::with_threads(2)).expect("profile runs");
        std::fs::remove_dir_all(&dir).ok();
        let json = fp.to_json();
        ca_obs::validate_profile_json(&json).expect("emitted profile validates");
        assert_eq!(fp.stages.len(), 7, "lint..serve stages");
        // The corrupted cell must travel the quarantine path.
        assert!(fp.counter_total("ca_core.flow.quarantined") >= 1);
        // The resume stage must replay, not re-simulate.
        assert!(fp.counter_total("ca_core.session.reused_complete") >= 1);
        let render = fp.render();
        assert!(render.contains("flow profile"), "{render}");
    }
}
