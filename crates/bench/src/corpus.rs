//! Corpus construction: synthetic libraries characterized end-to-end.

// A corpus build fans out over worker threads and runs for minutes; a
// stray unwrap must not be able to abort the whole experiment run.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use ca_core::{CharCache, MlFlowParams, PreparedCell};
use ca_defects::GenerateOptions;
use ca_exec::Executor;
use ca_ml::ForestParams;
use ca_netlist::library::{generate_library, LibraryCell, LibraryConfig};
use ca_netlist::Technology;
use std::ops::Deref;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Small: up to 3 inputs / 16 transistors; minutes on a laptop.
    Quick,
    /// Paper-scale shape: up to 5 inputs / 32 transistors. Slower.
    Full,
}

impl Profile {
    /// Parses `quick` / `full`.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "quick" => Some(Profile::Quick),
            "full" => Some(Profile::Full),
            _ => None,
        }
    }

    /// Library generation config for `tech` at this scale.
    ///
    /// Technologies deliberately differ: each keeps a different ~3/4 of
    /// the shared catalog, and drive-strength menus vary, so
    /// cross-technology experiments see identical, equivalent *and* new
    /// structures (the §V.C route mix).
    pub fn library_config(self, tech: Technology) -> LibraryConfig {
        let (shared_drives, split_drives) = match tech {
            Technology::Soi28 => (vec![1, 2], vec![2]),
            Technology::C28 => (vec![1, 2], vec![2]),
            // C40 differs from the training technology by device sizing
            // (see TechStyle) and by offering an X4 drive the training
            // corpus lacks: X4 cells only match after the Fig. 6
            // reduction — the paper's "equivalent structure" route.
            Technology::C40 => (vec![1, 2, 4], vec![2]),
        };
        // The training technology keeps a smaller catalog slice than the
        // evaluated ones, so a realistic share of evaluated cells has no
        // known structure (the paper's ~50% simulated fraction in §V.C).
        let keep = if tech == Technology::Soi28 {
            0.65
        } else {
            0.90
        };
        match self {
            Profile::Quick => LibraryConfig {
                max_inputs: 3,
                max_transistors: 16,
                shared_drives,
                split_drives,
                skew_variants: true,
                vt_variants: Vec::new(),
                include_exclusive: true,
                template_keep_fraction: keep,
                tech,
            },
            Profile::Full => LibraryConfig {
                max_inputs: 5,
                max_transistors: 32,
                shared_drives: match tech {
                    Technology::C40 => vec![1, 3, 4],
                    _ => vec![1, 2, 4],
                },
                split_drives,
                skew_variants: true,
                vt_variants: Vec::new(),
                include_exclusive: true,
                template_keep_fraction: keep,
                tech,
            },
        }
    }

    /// ML flow parameters at this scale.
    pub fn ml_params(self) -> MlFlowParams {
        match self {
            Profile::Quick => MlFlowParams {
                forest: ForestParams {
                    num_trees: 40,
                    max_depth: 20,
                    ..ForestParams::default()
                },
                max_rows_per_cell: Some(20_000),
                retain_training_data: false,
            },
            Profile::Full => MlFlowParams {
                forest: ForestParams::default(),
                max_rows_per_cell: Some(60_000),
                retain_training_data: false,
            },
        }
    }

    /// Cap on leave-one-out evaluations per group (keeps Table IV.a
    /// affordable); `None` evaluates every cell like the paper.
    pub fn max_eval_per_group(self) -> Option<usize> {
        match self {
            Profile::Quick => Some(4),
            Profile::Full => Some(8),
        }
    }
}

/// A characterized cell with its source template, for reporting.
#[derive(Debug, Clone)]
pub struct CorpusCell {
    /// Prepared + characterized cell.
    pub prepared: PreparedCell,
    /// Catalog template name.
    pub template: String,
}

/// A library cell the corpus build could not characterize.
#[derive(Debug, Clone)]
pub struct SkippedCell {
    /// Cell name.
    pub name: String,
    /// Catalog template name.
    pub template: String,
    /// Why the cell was skipped (error message or panic text).
    pub reason: String,
}

/// Result of a corpus build: the characterized cells plus whatever had
/// to be skipped. Derefs to the cell slice, so experiment code that
/// only needs the healthy cells can iterate/index it directly.
#[derive(Debug, Default)]
pub struct CorpusBuild {
    /// Successfully characterized cells.
    pub cells: Vec<CorpusCell>,
    /// Cells that failed characterization, with reasons.
    pub skipped: Vec<SkippedCell>,
}

impl Deref for CorpusBuild {
    type Target = [CorpusCell];

    fn deref(&self) -> &[CorpusCell] {
        &self.cells
    }
}

impl CorpusBuild {
    /// One warning line per skipped cell (empty when nothing skipped).
    pub fn skip_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.skipped {
            let _ = writeln!(out, "skipped {} ({}): {}", s.name, s.template, s.reason);
        }
        out
    }
}

/// Characterizes `cells` on the [`CA_THREADS`](Executor::from_env)-sized
/// executor with a shared structure-keyed cache, isolating per-cell
/// failures: an error or a panic skips that cell (with its reason
/// recorded) instead of aborting the batch.
pub fn characterize_cells(cells: &[LibraryCell]) -> CorpusBuild {
    characterize_cells_with(cells, &Executor::from_env(), &CharCache::new())
}

/// [`characterize_cells`] with explicit executor and cache.
pub fn characterize_cells_with(
    cells: &[LibraryCell],
    executor: &Executor,
    cache: &CharCache,
) -> CorpusBuild {
    let results = executor.map_isolated(cells, |_, lc| {
        cache.characterize(lc.cell.clone(), GenerateOptions::default())
    });
    let mut build = CorpusBuild::default();
    for (lc, outcome) in cells.iter().zip(results) {
        match outcome {
            Ok(Ok(prepared)) => build.cells.push(CorpusCell {
                prepared,
                template: lc.template.clone(),
            }),
            Ok(Err(e)) => build.skipped.push(SkippedCell {
                name: lc.cell.name().to_string(),
                template: lc.template.clone(),
                reason: e.to_string(),
            }),
            Err(panic) => build.skipped.push(SkippedCell {
                name: lc.cell.name().to_string(),
                template: lc.template.clone(),
                reason: format!("panic: {panic}"),
            }),
        }
    }
    build
}

/// Generates and characterizes the full synthetic library of `tech`.
///
/// Every cell is run through the conventional flow (ground truth), so the
/// corpus can both train and evaluate. Results are memoized per
/// (technology, profile) so `ca-bench all` characterizes each library
/// once. Cells that fail (or panic) are collected in
/// [`CorpusBuild::skipped`] rather than aborting the build.
pub fn build_corpus(tech: Technology, profile: Profile) -> std::sync::Arc<CorpusBuild> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type Cache = Mutex<HashMap<(Technology, Profile), Arc<CorpusBuild>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    // A worker that panicked while holding the lock poisons it; the map
    // itself is still consistent (entries are inserted atomically), so
    // recover the guard instead of propagating the poison forever.
    if let Some(hit) = cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .get(&(tech, profile))
    {
        return Arc::clone(hit);
    }
    let lib = generate_library(&profile.library_config(tech));
    // Characterization is embarrassingly parallel: the executor pulls
    // cells one at a time (each cell's conventional flow is independent),
    // and the shared cache deduplicates structurally identical variants.
    let corpus = Arc::new(characterize_cells(&lib.cells));
    cache
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .insert((tech, profile), Arc::clone(&corpus));
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::corrupt::salt_library;

    #[test]
    fn profile_parsing() {
        assert_eq!(Profile::parse("quick"), Some(Profile::Quick));
        assert_eq!(Profile::parse("full"), Some(Profile::Full));
        assert_eq!(Profile::parse("huge"), None);
    }

    #[test]
    fn corpus_cache_returns_same_instance() {
        let a = build_corpus(Technology::C28, Profile::Quick);
        let b = build_corpus(Technology::C28, Profile::Quick);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn quick_corpus_builds_and_has_groups() {
        let corpus = build_corpus(Technology::Soi28, Profile::Quick);
        assert!(corpus.len() >= 30, "got {}", corpus.len());
        assert!(corpus.iter().all(|c| c.prepared.model.is_some()));
        // Synthesized libraries are well-formed: nothing is skipped.
        assert!(corpus.skipped.is_empty(), "{}", corpus.skip_report());
        // More than one group key exists.
        let keys: std::collections::HashSet<_> =
            corpus.iter().map(|c| c.prepared.group_key()).collect();
        assert!(keys.len() > 3);
    }

    #[test]
    fn corrupted_cells_are_skipped_not_fatal() {
        let mut lib = generate_library(&LibraryConfig::quick(Technology::C28));
        lib.cells.truncate(12);
        let salted = salt_library(&mut lib, 4, 99);
        assert_eq!(salted.len(), 4);
        let build = characterize_cells(&lib.cells);
        assert_eq!(build.cells.len() + build.skipped.len(), 12);
        assert_eq!(build.skipped.len(), salted.len(), "{}", build.skip_report());
        for s in &salted {
            assert!(
                build.skipped.iter().any(|k| k.name == s.cell),
                "{} not skipped",
                s.cell
            );
        }
        assert!(build.skip_report().lines().count() == 4);
    }
}
