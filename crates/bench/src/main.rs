//! `ca-bench` — regenerates the paper's tables and figures.
//!
//! ```text
//! ca-bench <command> [--profile quick|full] [--train TECH] [--eval TECH]
//!
//! commands:
//!   fig1 fig4 fig5 fig6 table1 table2 table3   static paper examples
//!   table4a          same-technology accuracy grid (leave-one-out, 28SOI)
//!   table4b          cross-technology grid (train 28SOI -> eval C28)
//!   table4c          cross-size grid (train 28SOI -> eval C40)
//!   histogram        §V.B accuracy distribution + structural correlation
//!   algos            §II.B classifier comparison
//!   hybrid           §V.C hybrid flow experiment
//!   ablation         accuracy with canonical renaming disabled
//!   importance       random-forest feature importance per CA-matrix column
//!   library          per-technology characterization summaries
//!   parallel         parallel engine + cache benchmark -> BENCH_parallel.json
//!   all              everything above
//!   packed           packed vs. scalar cold-simulation bench -> BENCH_packed.json
//!                    (not part of `all`; asserts detection tables and
//!                    `.cam` exports byte-identical before reporting)
//!   profile          end-to-end flow profile -> BENCH_profile.json
//!                    (not part of `all`; `--quick` = `--profile quick`)
//!   profile-check    validate BENCH_profile.json (or an explicit path)
//!                    against schema ca-obs-profile/1; exits 2 on failure
//!   shard            sharded campaign vs unsharded run -> BENCH_shard.json
//!                    (not part of `all`; `--shards N` sets the shard count;
//!                    fails hard unless exports are byte-identical)
//!   serve            daemon load-gen (closed + open loop) -> BENCH_serve.json
//!                    (not part of `all`; fails hard unless served models
//!                    are byte-identical to the batch golden)
//!   trace            traced sharded campaign + serve round-trip, stitched
//!                    into Chrome/Perfetto JSON -> TRACE_campaign.json
//!                    (not part of `all`; `--stitch DIR` merges existing
//!                    JSONL trace files instead, `--out FILE` renames the
//!                    output; fails hard on any dangling parent link)
//! ```
//!
//! The binary doubles as the campaign's worker executable: spawned with
//! the `CA_SHARD_*` environment set (`ca-bench shard-worker`), it runs
//! one shard and exits before any command parsing.
//!
//! `parallel`, `profile` and `shard` honour `CA_THREADS` for the worker
//! count.
//! With `CA_OBS_PATH` set, buffered observability events are flushed
//! there as JSONL on exit.

use ca_bench::corpus::Profile;
use ca_bench::tables;
use ca_netlist::Technology;
use std::time::Instant;

fn parse_tech(s: &str) -> Option<Technology> {
    match s.to_ascii_uppercase().as_str() {
        "C40" => Some(Technology::C40),
        "28SOI" | "SOI28" => Some(Technology::Soi28),
        "C28" => Some(Technology::C28),
        _ => None,
    }
}

fn main() {
    // Worker dispatch first: when the supervisor spawned this process
    // with a `CA_SHARD_*` spec, it is a shard worker and nothing else.
    // Inert (None) in every normal invocation.
    if let Some(code) = ca_shard::worker::run_from_env() {
        std::process::exit(code);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("all");
    let mut profile = Profile::Quick;
    let mut shards = 4usize;
    let mut train = Technology::Soi28;
    let mut eval_b = Technology::C28;
    let mut eval_c = Technology::C40;
    let mut check_path = String::from("BENCH_profile.json");
    let mut stitch: Option<String> = None;
    let mut trace_out = String::from("TRACE_campaign.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => profile = Profile::Quick,
            "--profile" => {
                i += 1;
                profile = args
                    .get(i)
                    .and_then(|s| Profile::parse(s))
                    .unwrap_or_else(|| die("--profile expects quick|full"));
            }
            "--shards" => {
                i += 1;
                shards = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| die("--shards expects a positive integer"));
            }
            "--stitch" => {
                i += 1;
                stitch = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--stitch expects a directory")),
                );
            }
            "--out" => {
                i += 1;
                trace_out = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--out expects a file path"));
            }
            "--train" => {
                i += 1;
                train = args
                    .get(i)
                    .and_then(|s| parse_tech(s))
                    .unwrap_or_else(|| die("--train expects C40|28SOI|C28"));
            }
            "--eval" => {
                i += 1;
                let t = args
                    .get(i)
                    .and_then(|s| parse_tech(s))
                    .unwrap_or_else(|| die("--eval expects C40|28SOI|C28"));
                eval_b = t;
                eval_c = t;
            }
            flag if flag.starts_with('-') => die(&format!("unknown flag {flag}")),
            cmd => {
                if command == "profile-check" {
                    // `profile-check [path]`: the word after the command
                    // is the document to validate.
                    check_path = cmd.to_string();
                } else {
                    command = cmd.to_string();
                }
            }
        }
        i += 1;
    }

    let run = |name: &str| command == "all" || command == name;
    let start = Instant::now();
    let mut matched = false;
    if run("fig1") {
        matched = true;
        println!("{}", tables::fig1());
    }
    if run("fig4") {
        matched = true;
        println!("{}", tables::fig4());
    }
    if run("fig5") {
        matched = true;
        println!("{}", tables::fig5());
    }
    if run("fig6") {
        matched = true;
        println!("{}", tables::fig6());
    }
    if run("table1") {
        matched = true;
        println!("{}", tables::table1());
    }
    if run("table2") {
        matched = true;
        println!("{}", tables::table2());
    }
    if run("table3") {
        matched = true;
        println!("{}", tables::table3());
    }
    if run("table4a") {
        matched = true;
        let grid = tables::table_iv_a(profile);
        println!(
            "{}",
            grid.render(&format!(
                "Table IV.a — same technology ({}, leave-one-out, profile {profile:?})",
                train.name()
            ))
        );
    }
    if run("table4b") {
        matched = true;
        let grid = tables::table_iv_cross(train, eval_b, profile);
        println!(
            "{}",
            grid.render(&format!(
                "Table IV.b — train {} -> evaluate {} (profile {profile:?})",
                train.name(),
                eval_b.name()
            ))
        );
    }
    if run("table4c") {
        matched = true;
        let grid = tables::table_iv_cross(train, eval_c, profile);
        println!(
            "{}",
            grid.render(&format!(
                "Table IV.c — train {} -> evaluate {} (profile {profile:?})",
                train.name(),
                eval_c.name()
            ))
        );
    }
    if run("histogram") {
        matched = true;
        println!("{}", tables::accuracy_histogram(train, eval_b, profile));
    }
    if run("algos") {
        matched = true;
        println!("{}", tables::algo_comparison(profile));
    }
    if run("hybrid") {
        matched = true;
        println!("{}", tables::hybrid_experiment(profile));
    }
    if run("ablation") {
        matched = true;
        println!("{}", tables::ablation(profile));
    }
    if run("importance") {
        matched = true;
        println!("{}", tables::feature_importance(profile));
    }
    if run("library") {
        matched = true;
        for tech in Technology::ALL {
            println!("{}", tables::library_report(tech, profile));
        }
    }
    if run("parallel") {
        matched = true;
        let bench = ca_bench::perf::run(profile);
        print!("{}", bench.render());
        let path = "BENCH_parallel.json";
        // Atomic (tmp + fsync + rename): a crash mid-bench must never
        // leave a torn JSON for the trend tooling to choke on.
        match ca_store::write_atomic(path, bench.to_json()) {
            Ok(()) => ca_obs::info_status("ca_bench", &format!("wrote {path}"), &[]),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    // `packed`, `profile` and `profile-check` are deliberately not part
    // of `all`: they measure the flow (or gate on its artifact) rather
    // than regenerate a paper table.
    if command == "packed" {
        matched = true;
        let bench = ca_bench::packed_bench::run(profile);
        print!("{}", bench.render());
        let path = "BENCH_packed.json";
        match ca_store::write_atomic(path, bench.to_json()) {
            Ok(()) => ca_obs::info_status("ca_bench", &format!("wrote {path}"), &[]),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if command == "profile" {
        matched = true;
        match ca_bench::profiling::run(profile) {
            Ok(fp) => {
                print!("{}", fp.render());
                let path = "BENCH_profile.json";
                match ca_store::write_atomic(path, fp.to_json()) {
                    Ok(()) => ca_obs::info_status("ca_bench", &format!("wrote {path}"), &[]),
                    Err(e) => die(&format!("cannot write {path}: {e}")),
                }
            }
            Err(e) => die(&format!("profile run failed: {e}")),
        }
    }
    if command == "shard" {
        matched = true;
        let bench = ca_bench::shard_bench::run(profile, shards);
        print!("{}", bench.render());
        let path = "BENCH_shard.json";
        match ca_store::write_atomic(path, bench.to_json()) {
            Ok(()) => ca_obs::info_status("ca_bench", &format!("wrote {path}"), &[]),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if command == "serve" {
        matched = true;
        let bench = ca_bench::serve_bench::run(profile);
        print!("{}", bench.render());
        let path = "BENCH_serve.json";
        match ca_store::write_atomic(path, bench.to_json()) {
            Ok(()) => ca_obs::info_status("ca_bench", &format!("wrote {path}"), &[]),
            Err(e) => die(&format!("cannot write {path}: {e}")),
        }
    }
    if command == "trace" {
        matched = true;
        let out = std::path::Path::new(&trace_out);
        let result = match &stitch {
            Some(dir) => ca_bench::trace_cmd::stitch_dir(std::path::Path::new(dir), out),
            None => ca_bench::trace_cmd::demo(profile, out),
        };
        match result {
            Ok(summary) => print!("{}", summary.render()),
            Err(e) => die(&format!("trace round-trip failed: {e}")),
        }
    }
    if command == "profile-check" {
        matched = true;
        // Required coverage comes from the ca-audit metric inventory
        // (falling back to the baked-in prefixes outside the repo);
        // inventory drift fails the gate before the profile is read.
        let prefixes = match ca_bench::profiling::required_prefixes(std::path::Path::new(".")) {
            Ok(p) => p,
            Err(e) => die(&e),
        };
        let prefix_refs: Vec<&str> = prefixes.iter().map(String::as_str).collect();
        match std::fs::read_to_string(&check_path) {
            Ok(text) => match ca_obs::validate_profile_json_with(&text, &prefix_refs) {
                Ok(()) => ca_obs::info_status(
                    "ca_bench",
                    &format!(
                        "{check_path} is valid ({} required prefixes)",
                        prefixes.len()
                    ),
                    &[],
                ),
                Err(e) => die(&format!("{check_path} invalid: {e}")),
            },
            Err(e) => die(&format!("cannot read {check_path}: {e}")),
        }
    }
    if !matched {
        die(&format!(
            "unknown command `{command}` (see the doc comment for the list)"
        ));
    }
    ca_obs::info_status(
        "ca_bench",
        &format!("done in {:.1} s", start.elapsed().as_secs_f64()),
        &[],
    );
    flush_events();
}

/// Flushes buffered observability events to `CA_OBS_PATH` (if set).
fn flush_events() {
    match ca_obs::flush() {
        Ok(Some(path)) => eprintln!("[ca-bench] events -> {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("[ca-bench] event flush failed: {e}"),
    }
}

fn die(msg: &str) -> ! {
    ca_obs::event(
        ca_obs::Level::Error,
        "ca_bench",
        msg,
        &[],
        ca_obs::Mirror::Never,
    );
    // Plain stderr (not a mirrored event): fatal usage errors must stay
    // visible even under `CA_OBS=off`.
    eprintln!("ca-bench: {msg}");
    flush_events();
    std::process::exit(2);
}
