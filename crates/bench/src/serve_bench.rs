//! `ca-bench serve` — load generator for the ca-serve daemon.
//!
//! Two phases against in-process [`ca_serve::Server`] instances on a
//! Unix-domain socket (TCP loopback off Unix):
//!
//! 1. **Closed loop**: `threads` workers issue requests back-to-back
//!    over the whole library, several rounds deep. Every served model
//!    is compared byte-for-byte against a batch golden run — the bench
//!    fails hard on divergence before reporting any number — and the
//!    per-request latencies feed the p50/p95/p99 figures.
//! 2. **Open loop**: arrivals are fired on a fixed schedule regardless
//!    of completions against a deliberately small queue, so admission
//!    control is actually exercised: the report counts served vs shed
//!    and proves overload degrades to structured errors, not latency
//!    collapse or worse.

// Benchmark results feed BENCH_serve.json; a stray unwrap would abort
// the run instead of reporting the failure.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::corpus::Profile;
use ca_core::{characterize_library_robust, export_cam_with, FaultPolicy};
use ca_defects::GenerateOptions;
use ca_exec::Executor;
use ca_netlist::library::{generate_library, Library};
use ca_netlist::Technology;
use ca_serve::protocol::{ErrorKind, Response};
use ca_serve::server::{Endpoint, ServeConfig, Server};
use ca_serve::ServeClient;
use ca_sim::SimBudget;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Measured numbers of one serve-bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBench {
    /// Library size served.
    pub cells: usize,
    /// Closed-loop requests issued (all served).
    pub closed_requests: usize,
    /// Closed-loop throughput, requests/second.
    pub closed_rps: f64,
    /// Closed-loop latency percentiles, microseconds.
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Open-loop requests offered.
    pub open_offered: usize,
    /// Open-loop requests served with a model.
    pub open_served: usize,
    /// Open-loop requests shed with structured frames.
    pub open_shed: usize,
    /// Whether every served model matched the batch golden bytes
    /// (always true when this struct is returned by [`run`]).
    pub identical: bool,
    /// Mean server-side queue wait per closed-loop request, µs (from
    /// the per-request timing breakdown in wire-v2 `Model` frames).
    pub srv_queue_us: u64,
    /// Mean server-side service time per closed-loop request, µs.
    pub srv_service_us: u64,
    /// Mean server-side journal time per closed-loop request, µs.
    pub srv_journal_us: u64,
    /// `ca_serve.*` counters present in the scraped
    /// `MetricsSnapshot` (proves the daemon is machine-scrapeable).
    pub metrics_counters: usize,
}

impl ServeBench {
    /// The `BENCH_serve.json` document (hand-rendered: the workspace is
    /// dependency-free).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"ca-serve-bench/2\",\n  \"cells\": {},\n  \
             \"closed_requests\": {},\n  \"closed_rps\": {:.1},\n  \
             \"p50_us\": {},\n  \"p95_us\": {},\n  \"p99_us\": {},\n  \
             \"srv_queue_us\": {},\n  \"srv_service_us\": {},\n  \"srv_journal_us\": {},\n  \
             \"open_offered\": {},\n  \"open_served\": {},\n  \"open_shed\": {},\n  \
             \"metrics_counters\": {},\n  \
             \"identical\": {}\n}}\n",
            self.cells,
            self.closed_requests,
            self.closed_rps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.srv_queue_us,
            self.srv_service_us,
            self.srv_journal_us,
            self.open_offered,
            self.open_served,
            self.open_shed,
            self.metrics_counters,
            self.identical
        )
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        format!(
            "serve bench — {} cells\n  closed loop: {} requests, {:.0} req/s, \
             p50 {} µs, p95 {} µs, p99 {} µs\n  server side: queue {} µs, service {} µs, \
             journal {} µs (means)\n  open loop:   {} offered, {} served, \
             {} shed (structured)\n  metrics snapshot: {} ca_serve counters scraped\n  \
             models byte-identical to batch golden: {}\n",
            self.cells,
            self.closed_requests,
            self.closed_rps,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.srv_queue_us,
            self.srv_service_us,
            self.srv_journal_us,
            self.open_offered,
            self.open_served,
            self.open_shed,
            self.metrics_counters,
            self.identical
        )
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    // Nearest-rank: the smallest value with at least p% of the sample
    // at or below it.
    let rank = (sorted.len() as f64 * p / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn endpoint(dir: &std::path::Path) -> Endpoint {
    #[cfg(unix)]
    {
        Endpoint::Uds(dir.join("bench.sock"))
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Endpoint::Tcp("127.0.0.1:0".into())
    }
}

fn connect(server: &Server) -> ServeClient {
    #[cfg(unix)]
    if let Some(path) = server.uds_path() {
        return ServeClient::connect_uds(path)
            .unwrap_or_else(|e| panic!("uds connect failed: {e}"));
    }
    let addr = server
        .tcp_addr()
        .unwrap_or_else(|| panic!("server bound no endpoint"));
    ServeClient::connect_tcp(addr).unwrap_or_else(|e| panic!("tcp connect failed: {e}"))
}

fn bench_library(profile: Profile) -> Library {
    let mut library = generate_library(&profile.library_config(Technology::C40));
    // Serving latency, not library scale, is under test: enough cells
    // to keep every slot busy with distinct structures.
    let cap = match profile {
        Profile::Quick => 8,
        Profile::Full => 24,
    };
    library.cells.truncate(cap);
    library
}

/// Runs the benchmark; see the module docs.
///
/// # Panics
///
/// Panics if the daemon cannot start, a request fails transport-level,
/// or any served model diverges from the batch golden bytes — a serving
/// layer that changes model bytes must never report a timing.
pub fn run(profile: Profile) -> ServeBench {
    let library = bench_library(profile);
    let cells = library.len();
    let threads = Executor::from_env().threads().max(2);
    let work_dir = std::env::temp_dir().join(format!("ca-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&work_dir);
    std::fs::create_dir_all(&work_dir)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", work_dir.display()));

    // Batch golden: the robust driver, no server, no deadlines.
    let golden_outcome = characterize_library_robust(
        &library,
        GenerateOptions::default(),
        &SimBudget::unlimited(),
        FaultPolicy::SkipAndReport,
    )
    .unwrap_or_else(|e| panic!("golden run failed: {e}"));
    let golden: Arc<BTreeMap<String, String>> = Arc::new(
        export_cam_with(&golden_outcome.prepared, true)
            .into_iter()
            .map(|(file, body)| (file.trim_end_matches(".cam").to_string(), body))
            .collect(),
    );

    // ---- Closed loop: ample queue, measure service latency. --------
    let mut config = ServeConfig::new(work_dir.join("closed.caj"), library.clone());
    config.admission.slots = threads;
    config.admission.queue = 1024;
    config.admission.per_client = 1024;
    let server = Server::start(config, &[endpoint(&work_dir)])
        .unwrap_or_else(|e| panic!("closed-loop server failed to start: {e}"));
    let rounds = 3;
    let names: Vec<String> = library
        .cells
        .iter()
        .map(|lc| lc.cell.name().to_string())
        .collect();
    let names = Arc::new(names);
    let start = Instant::now();
    let workers: Vec<_> = (0..threads)
        .map(|w| {
            let names = Arc::clone(&names);
            let golden = Arc::clone(&golden);
            let mut client = connect(&server);
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut timing_sum = [0u64; 3];
                for _round in 0..rounds {
                    for i in 0..names.len() {
                        // Stagger start points so workers collide on
                        // cells (exercising coalescing) without all
                        // hammering the same cell in lockstep.
                        let name = &names[(i + w) % names.len()];
                        let t = Instant::now();
                        match client
                            .characterize(&format!("bench-{w}"), name, 0)
                            .unwrap_or_else(|e| panic!("closed-loop request failed: {e}"))
                        {
                            Response::Model {
                                cell, cam, timing, ..
                            } => {
                                let want = golden
                                    .get(&cell)
                                    .unwrap_or_else(|| panic!("golden misses {cell}"));
                                assert_eq!(want, &cam, "{cell} diverged from batch golden");
                                timing_sum[0] += timing.queue_us;
                                timing_sum[1] += timing.service_us;
                                timing_sum[2] += timing.journal_us;
                            }
                            other => panic!("closed-loop got {other:?}"),
                        }
                        latencies.push(t.elapsed().as_micros() as u64);
                    }
                }
                (latencies, timing_sum)
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    let mut timing_sum = [0u64; 3];
    for worker in workers {
        let (worker_latencies, worker_timing) = worker
            .join()
            .unwrap_or_else(|_| panic!("closed-loop worker panicked"));
        latencies.extend(worker_latencies);
        for (total, part) in timing_sum.iter_mut().zip(worker_timing) {
            *total += part;
        }
    }
    let closed_elapsed = start.elapsed().as_secs_f64();
    // Scrape the live daemon before shutdown: the machine-readable
    // registry snapshot must parse and carry the serving counters.
    let metrics_counters = {
        let mut probe = connect(&server);
        let json = match probe.metrics_snapshot() {
            Ok(Response::MetricsSnapshot { json }) => json,
            Ok(other) => panic!("metrics snapshot got {other:?}"),
            Err(e) => panic!("metrics snapshot failed: {e}"),
        };
        let doc = ca_obs::json::parse(&json)
            .unwrap_or_else(|e| panic!("metrics snapshot does not parse: {e}"));
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("ca-obs-metrics/1"),
            "unexpected metrics schema"
        );
        doc.get("counters")
            .and_then(|v| v.as_object())
            .map(|counters| {
                counters
                    .keys()
                    .filter(|name| name.starts_with("ca_serve."))
                    .count()
            })
            .unwrap_or_else(|| panic!("metrics snapshot has no counters object"))
    };
    assert!(
        metrics_counters > 0,
        "a loaded daemon must expose ca_serve counters"
    );
    server.shutdown();
    latencies.sort_unstable();
    let closed_requests = latencies.len();
    let closed_rps = closed_requests as f64 / closed_elapsed.max(1e-9);

    // ---- Open loop: tiny queue + service delay, provoke shedding. --
    let mut config = ServeConfig::new(work_dir.join("open.caj"), library.clone());
    config.admission.slots = 2;
    config.admission.queue = 2;
    config.admission.per_client = 1024;
    config.service_delay = Duration::from_millis(15);
    let server = Server::start(config, &[endpoint(&work_dir)])
        .unwrap_or_else(|e| panic!("open-loop server failed to start: {e}"));
    let open_offered = match profile {
        Profile::Quick => 60,
        Profile::Full => 200,
    };
    let arrivals: Vec<_> = (0..open_offered)
        .map(|i| {
            let names = Arc::clone(&names);
            let mut client = connect(&server);
            let handle = std::thread::spawn(move || {
                let name = &names[i % names.len()];
                match client
                    .characterize(&format!("open-{i}"), name, 500)
                    .unwrap_or_else(|e| panic!("open-loop request failed: {e}"))
                {
                    Response::Model { .. } => true,
                    Response::Error { kind, .. } => {
                        assert!(
                            matches!(kind, ErrorKind::Overloaded | ErrorKind::DeadlineExceeded),
                            "open loop shed with unexpected kind {kind:?}"
                        );
                        false
                    }
                    other => panic!("open-loop got {other:?}"),
                }
            });
            // Fixed arrival schedule, independent of completions.
            std::thread::sleep(Duration::from_millis(5));
            handle
        })
        .collect();
    let mut open_served = 0usize;
    let mut open_shed = 0usize;
    for arrival in arrivals {
        if arrival
            .join()
            .unwrap_or_else(|_| panic!("open-loop arrival panicked"))
        {
            open_served += 1;
        } else {
            open_shed += 1;
        }
    }
    server.shutdown();

    let n = closed_requests.max(1) as u64;
    let bench = ServeBench {
        cells,
        closed_requests,
        closed_rps,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        open_offered,
        open_served,
        open_shed,
        identical: true,
        srv_queue_us: timing_sum[0] / n,
        srv_service_us: timing_sum[1] / n,
        srv_journal_us: timing_sum[2] / n,
        metrics_counters,
    };
    let _ = std::fs::remove_dir_all(&work_dir);
    bench
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_and_render_are_well_formed() {
        let bench = ServeBench {
            cells: 8,
            closed_requests: 48,
            closed_rps: 120.0,
            p50_us: 900,
            p95_us: 2500,
            p99_us: 4000,
            open_offered: 60,
            open_served: 40,
            open_shed: 20,
            identical: true,
            srv_queue_us: 30,
            srv_service_us: 700,
            srv_journal_us: 12,
            metrics_counters: 5,
        };
        let json = bench.to_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"schema\": \"ca-serve-bench/2\""), "{json}");
        assert!(json.contains("\"p99_us\": 4000"), "{json}");
        assert!(json.contains("\"srv_service_us\": 700"), "{json}");
        assert!(json.contains("\"metrics_counters\": 5"), "{json}");
        let render = bench.render();
        assert!(render.contains("p95 2500"), "{render}");
        assert!(render.contains("service 700"), "{render}");
    }

    #[test]
    fn percentiles_pick_sane_ranks() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[], 50.0), 0);
    }
}
