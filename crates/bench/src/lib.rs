//! Experiment harness shared by the `ca-bench` binary and the wall-clock
//! micro-benches.
//!
//! Every table and figure of the paper's evaluation has a regenerator
//! here; see `DESIGN.md` for the experiment index and `EXPERIMENTS.md`
//! for measured-vs-paper numbers.

pub mod corpus;
pub mod microbench;
pub mod packed_bench;
pub mod perf;
pub mod profiling;
pub mod report;
pub mod serve_bench;
pub mod shard_bench;
pub mod tables;
pub mod trace_cmd;

pub use corpus::{build_corpus, CorpusBuild, Profile, SkippedCell};
pub use report::Grid;
