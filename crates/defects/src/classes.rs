//! Defect equivalence classes and static/dynamic classification.
//!
//! Defects with identical detection rows are indistinguishable at the cell
//! boundary and are merged into one class (the paper's "defect equivalence
//! classes", Fig. 1). A class is *static* when at least one static stimulus
//! detects it, *dynamic* when only two-pattern stimuli do, and
//! *undetectable* when nothing does.

use crate::table::{BitRow, DetectionTable};
use crate::universe::{DefectId, DefectUniverse};
use std::collections::BTreeMap;
use std::fmt;

/// Detection behaviour of a defect class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Behavior {
    /// Detected by at least one static (single-pattern) stimulus.
    Static,
    /// Detected only by dynamic (two-pattern) stimuli.
    Dynamic,
    /// Not detected by any stimulus.
    Undetectable,
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Static => write!(f, "static"),
            Behavior::Dynamic => write!(f, "dynamic"),
            Behavior::Undetectable => write!(f, "undetectable"),
        }
    }
}

/// A group of boundary-equivalent defects.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DefectClass {
    /// Representative defect (lowest id in the class).
    pub representative: DefectId,
    /// All member defects, ascending by id (includes the representative).
    pub members: Vec<DefectId>,
    /// Detection behaviour.
    pub behavior: Behavior,
    /// Shared detection row.
    pub row: BitRow,
}

impl DefectClass {
    /// Number of equivalent defects in the class.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Partitions the universe into equivalence classes given its detection
/// table.
///
/// Classes are ordered by their representative's id, so the result is
/// deterministic and independent of hashing.
pub fn equivalence_classes(universe: &DefectUniverse, table: &DetectionTable) -> Vec<DefectClass> {
    let static_count = table.stimuli().iter().filter(|s| s.is_static()).count();
    let mut by_row: BTreeMap<&BitRow, Vec<DefectId>> = BTreeMap::new();
    for defect in universe.defects() {
        by_row
            .entry(table.row(defect.id))
            .or_default()
            .push(defect.id);
    }
    let mut classes: Vec<DefectClass> = by_row
        .into_iter()
        .map(|(row, mut members)| {
            members.sort();
            let behavior = classify_row(row, static_count, table.stimuli().len());
            DefectClass {
                representative: members[0],
                members,
                behavior,
                row: row.clone(),
            }
        })
        .collect();
    classes.sort_by_key(|c| c.representative);
    classes
}

/// Classifies a detection row. The stimulus list is assumed to start with
/// all static stimuli (the canonical [`ca_sim::Stimulus::all`] ordering).
fn classify_row(row: &BitRow, static_count: usize, total: usize) -> Behavior {
    debug_assert_eq!(row.len(), total);
    let static_hit = (0..static_count).any(|i| row.get(i));
    if static_hit {
        Behavior::Static
    } else if row.any() {
        Behavior::Dynamic
    } else {
        Behavior::Undetectable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;
    use ca_sim::DetectionPolicy;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    fn nand2_classes() -> (DefectUniverse, Vec<DefectClass>) {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let table =
            DetectionTable::generate_exhaustive(&cell, &universe, DetectionPolicy::default());
        let classes = equivalence_classes(&universe, &table);
        (universe, classes)
    }

    #[test]
    fn classes_partition_the_universe() {
        let (universe, classes) = nand2_classes();
        let mut seen: Vec<DefectId> = classes.iter().flat_map(|c| c.members.clone()).collect();
        seen.sort();
        let all: Vec<DefectId> = universe.defects().iter().map(|d| d.id).collect();
        assert_eq!(seen, all);
    }

    #[test]
    fn opens_of_one_transistor_are_equivalent() {
        // D/G/S opens all leave the device stuck off, so they share a class.
        let (universe, classes) = nand2_classes();
        let cell = spice::parse_cell(NAND2).unwrap();
        let mn0 = cell.find_transistor("MN0").unwrap();
        let open_ids: Vec<DefectId> = universe
            .of_transistor(mn0)
            .iter()
            .filter(|d| d.kind == crate::universe::DefectKind::Open)
            .map(|d| d.id)
            .collect();
        let class = classes
            .iter()
            .find(|c| c.members.contains(&open_ids[0]))
            .unwrap();
        for id in &open_ids {
            assert!(class.members.contains(id));
        }
    }

    #[test]
    fn nand2_has_both_static_and_dynamic_classes() {
        let (_, classes) = nand2_classes();
        assert!(classes.iter().any(|c| c.behavior == Behavior::Static));
        assert!(classes.iter().any(|c| c.behavior == Behavior::Dynamic));
        // Opens of a NAND2 pull-down are the classic stuck-open dynamics.
        let dynamic = classes
            .iter()
            .filter(|c| c.behavior == Behavior::Dynamic)
            .count();
        assert!(dynamic >= 2, "expected stuck-open classes, got {dynamic}");
    }

    #[test]
    fn representatives_are_sorted_and_minimal() {
        let (_, classes) = nand2_classes();
        for c in &classes {
            assert_eq!(c.representative, c.members[0]);
            assert!(c.members.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(classes
            .windows(2)
            .all(|w| w[0].representative < w[1].representative));
    }
}
