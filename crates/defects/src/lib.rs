//! Cell-internal defect modelling: universe, detection tables, equivalence
//! classes and the CA model format.
//!
//! Together with [`ca_sim`] this crate implements the *conventional* CA
//! model generation flow of the paper's Fig. 1:
//!
//! 1. enumerate the defect universe of a cell ([`DefectUniverse`]),
//! 2. simulate every defect against the exhaustive stimulus set
//!    ([`DetectionTable::generate_exhaustive`]),
//! 3. merge boundary-equivalent defects ([`classes::equivalence_classes`]),
//! 4. synthesize the dictionary ([`CaModel`]).
//!
//! # Example: conventional CA model generation for a NAND2
//!
//! ```
//! use ca_defects::{CaModel, GenerateOptions};
//! use ca_netlist::spice;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cell = spice::parse_cell(
//!     ".SUBCKT NAND2 A B Z VDD VSS\n\
//!      MP0 Z A VDD VDD pch\nMP1 Z B VDD VDD pch\n\
//!      MN0 Z A net0 VSS nch\nMN1 net0 B VSS VSS nch\n.ENDS",
//! )?;
//! let model = CaModel::generate(&cell, GenerateOptions::default());
//! assert_eq!(model.universe.len(), 24); // 6 defects x 4 transistors
//! assert!(model.coverage() > 0.99);     // all of them detectable
//! # Ok(())
//! # }
//! ```

pub mod classes;
pub mod diagnosis;
pub mod io;
pub mod model;
pub mod patterns;
pub mod table;
pub mod universe;

pub use classes::{Behavior, DefectClass};
pub use diagnosis::{diagnose, Candidate, Observation};
pub use io::{from_cam, to_cam, ParseCamError};
pub use model::{CaModel, GenerateOptions};
pub use patterns::{select_patterns, PatternSet};
pub use table::{single_defect_row, BitRow, BudgetedTable, DetectionTable};
pub use universe::{Defect, DefectId, DefectKind, DefectUniverse};
