//! Textual CA model interchange format (`.cam`).
//!
//! Commercial CA flows exchange models in proprietary per-vendor formats;
//! this is our open equivalent: a line-oriented, diff-friendly text format
//! that round-trips [`CaModel`] exactly. It exists so characterized
//! libraries can be stored and reloaded without re-simulating (the "large
//! database of CA models" the paper trains from).
//!
//! ```text
//! CAM 1
//! cell NAND2 inputs 2 transistors 4 sims 384
//! degraded            (only present for budget-truncated models)
//! defect 0 open mos 0 D
//! defect 1 open mos 0 G
//! defect 12 short mos 2 D S
//! defect 23 netshort 3 7
//! row 0 0100...
//! row 1 0100...
//! end
//! ```

use crate::model::CaModel;
use crate::table::BitRow;
use crate::universe::{Defect, DefectId, DefectKind, DefectUniverse};
use ca_netlist::{Cell, NetId, Terminal, TransistorId};
use ca_sim::Injection;
use std::fmt::Write as _;

/// Errors raised while parsing a `.cam` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCamError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseCamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cam parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCamError {}

fn terminal_letter(t: Terminal) -> char {
    t.letter()
}

fn parse_terminal(s: &str, line: usize) -> Result<Terminal, ParseCamError> {
    match s {
        "D" => Ok(Terminal::Drain),
        "G" => Ok(Terminal::Gate),
        "S" => Ok(Terminal::Source),
        "B" => Ok(Terminal::Bulk),
        _ => Err(ParseCamError {
            line,
            message: format!("unknown terminal `{s}`"),
        }),
    }
}

/// Serializes a model to the `.cam` text format.
pub fn to_cam(model: &CaModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CAM 1");
    let _ = writeln!(
        out,
        "cell {} inputs {} transistors {} sims {}",
        model.cell_name, model.num_inputs, model.num_transistors, model.defect_simulations
    );
    if model.degraded {
        let _ = writeln!(out, "degraded");
    }
    for defect in model.universe.defects() {
        match defect.injection {
            Injection::None => {}
            Injection::Open {
                transistor,
                terminal,
            } => {
                let _ = writeln!(
                    out,
                    "defect {} open mos {} {}",
                    defect.id.0,
                    transistor.0,
                    terminal_letter(terminal)
                );
            }
            Injection::Short { transistor, a, b } => {
                let _ = writeln!(
                    out,
                    "defect {} short mos {} {} {}",
                    defect.id.0,
                    transistor.0,
                    terminal_letter(a),
                    terminal_letter(b)
                );
            }
            Injection::NetShort { a, b } => {
                let _ = writeln!(out, "defect {} netshort {} {}", defect.id.0, a.0, b.0);
            }
        }
    }
    for (i, row) in model.rows.iter().enumerate() {
        let bits: String = (0..row.len())
            .map(|j| if row.get(j) { '1' } else { '0' })
            .collect();
        let _ = writeln!(out, "row {i} {bits}");
    }
    out.push_str("end\n");
    out
}

/// Parses a `.cam` document back into a model.
///
/// `cell` must be the netlist the model was generated from (classes are
/// rebuilt from the rows).
///
/// # Errors
///
/// Returns [`ParseCamError`] on any structural mismatch.
pub fn from_cam(text: &str, cell: &Cell) -> Result<CaModel, ParseCamError> {
    let mut defects: Vec<Defect> = Vec::new();
    let mut rows: Vec<(usize, BitRow)> = Vec::new();
    let mut header: Option<(String, usize, usize, usize)> = None;
    let mut degraded = false;
    let mut saw_end = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let err = |message: String| ParseCamError {
            line: line_no,
            message,
        };
        match tokens[0] {
            "CAM" => {
                if tokens.get(1) != Some(&"1") {
                    return Err(err("unsupported CAM version".into()));
                }
            }
            "cell" => {
                if tokens.len() != 8 || tokens[2] != "inputs" || tokens[4] != "transistors" {
                    return Err(err("malformed cell header".into()));
                }
                let parse = |s: &str| -> Result<usize, ParseCamError> {
                    s.parse().map_err(|_| ParseCamError {
                        line: line_no,
                        message: format!("bad number `{s}`"),
                    })
                };
                header = Some((
                    tokens[1].to_string(),
                    parse(tokens[3])?,
                    parse(tokens[5])?,
                    parse(tokens[7])?,
                ));
            }
            "defect" => {
                let id: u32 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad defect id".into()))?;
                let (kind, injection) = match tokens.get(2) {
                    Some(&"open") => {
                        if tokens.len() != 6 || tokens[3] != "mos" {
                            return Err(err("malformed open defect".into()));
                        }
                        let t: u32 = tokens[4]
                            .parse()
                            .map_err(|_| err("bad transistor index".into()))?;
                        (
                            DefectKind::Open,
                            Injection::Open {
                                transistor: TransistorId(t),
                                terminal: parse_terminal(tokens[5], line_no)?,
                            },
                        )
                    }
                    Some(&"short") => {
                        if tokens.len() != 7 || tokens[3] != "mos" {
                            return Err(err("malformed short defect".into()));
                        }
                        let t: u32 = tokens[4]
                            .parse()
                            .map_err(|_| err("bad transistor index".into()))?;
                        (
                            DefectKind::Short,
                            Injection::Short {
                                transistor: TransistorId(t),
                                a: parse_terminal(tokens[5], line_no)?,
                                b: parse_terminal(tokens[6], line_no)?,
                            },
                        )
                    }
                    Some(&"netshort") => {
                        if tokens.len() != 5 {
                            return Err(err("malformed net short".into()));
                        }
                        let a: u32 = tokens[3].parse().map_err(|_| err("bad net id".into()))?;
                        let b: u32 = tokens[4].parse().map_err(|_| err("bad net id".into()))?;
                        (
                            DefectKind::Short,
                            Injection::NetShort {
                                a: NetId(a),
                                b: NetId(b),
                            },
                        )
                    }
                    other => return Err(err(format!("unknown defect kind {other:?}"))),
                };
                if id as usize != defects.len() {
                    return Err(err(format!(
                        "defect ids must be dense: expected {}, got {id}",
                        defects.len()
                    )));
                }
                defects.push(Defect {
                    id: DefectId(id),
                    kind,
                    injection,
                });
            }
            "row" => {
                let idx: usize = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad row index".into()))?;
                let bits = tokens
                    .get(2)
                    .ok_or_else(|| err("missing row bits".into()))?;
                let mut row = BitRow::zeros(bits.len());
                for (j, c) in bits.chars().enumerate() {
                    match c {
                        '0' => {}
                        '1' => row.set(j, true),
                        _ => return Err(err(format!("bad bit `{c}`"))),
                    }
                }
                rows.push((idx, row));
            }
            "degraded" => {
                if tokens.len() != 1 {
                    return Err(err("malformed degraded directive".into()));
                }
                degraded = true;
            }
            "end" => {
                saw_end = true;
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if !saw_end {
        return Err(ParseCamError {
            line: text.lines().count(),
            message: "missing `end`".into(),
        });
    }
    let (name, inputs, transistors, sims) = header.ok_or(ParseCamError {
        line: 1,
        message: "missing cell header".into(),
    })?;
    if name != cell.name() || inputs != cell.num_inputs() || transistors != cell.num_transistors() {
        return Err(ParseCamError {
            line: 1,
            message: format!(
                "model is for `{name}` ({inputs} in, {transistors} T), got `{}` ({} in, {} T)",
                cell.name(),
                cell.num_inputs(),
                cell.num_transistors()
            ),
        });
    }
    rows.sort_by_key(|&(i, _)| i);
    if rows.iter().enumerate().any(|(i, &(j, _))| i != j) {
        return Err(ParseCamError {
            line: 1,
            message: "row indices must be dense".into(),
        });
    }
    if rows.len() != defects.len() {
        return Err(ParseCamError {
            line: 1,
            message: format!("{} rows for {} defects", rows.len(), defects.len()),
        });
    }
    let universe = DefectUniverse::from_defects(defects)
        .map_err(|message| ParseCamError { line: 1, message })?;
    let mut model = CaModel::from_rows(cell, universe, rows.into_iter().map(|(_, r)| r).collect());
    model.defect_simulations = sims;
    model.degraded = degraded;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenerateOptions;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn cam_round_trip() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        let parsed = from_cam(&text, &cell).unwrap();
        assert_eq!(model, parsed);
    }

    #[test]
    fn cam_round_trip_with_net_shorts() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(
            &cell,
            GenerateOptions {
                inter_transistor: true,
                ..GenerateOptions::default()
            },
        );
        let text = to_cam(&model);
        let parsed = from_cam(&text, &cell).unwrap();
        assert_eq!(model, parsed);
    }

    #[test]
    fn degraded_flag_round_trips() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let budget = ca_sim::SimBudget {
            max_stimuli: Some(4),
            ..ca_sim::SimBudget::unlimited()
        };
        let model = CaModel::generate_budgeted(&cell, GenerateOptions::default(), &budget)
            .expect("truncation succeeds");
        assert!(model.degraded);
        let text = to_cam(&model);
        assert!(text.lines().any(|l| l == "degraded"), "{text}");
        let parsed = from_cam(&text, &cell).unwrap();
        assert!(parsed.degraded);
        assert_eq!(parsed.rows, model.rows);
    }

    #[test]
    fn wrong_cell_rejected() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        let other = spice::parse_cell(
            ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS",
        )
        .unwrap();
        assert!(from_cam(&text, &other).is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        let cell = spice::parse_cell(NAND2).unwrap();
        for bad in [
            "",
            "CAM 2\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\nrow 0 01\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\ndefect 5 open mos 0 D\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\ndefect 0 open mos 0 Q\nend",
        ] {
            assert!(from_cam(bad, &cell).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let mut text = String::from("# stored model\n\n");
        text.push_str(&to_cam(&model));
        assert_eq!(from_cam(&text, &cell).unwrap(), model);
    }
}
