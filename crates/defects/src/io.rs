//! Textual CA model interchange format (`.cam`).
//!
//! Commercial CA flows exchange models in proprietary per-vendor formats;
//! this is our open equivalent: a line-oriented, diff-friendly text format
//! that round-trips [`CaModel`] exactly. It exists so characterized
//! libraries can be stored and reloaded without re-simulating (the "large
//! database of CA models" the paper trains from).
//!
//! ```text
//! CAM 1
//! cell NAND2 inputs 2 transistors 4 sims 384
//! degraded            (only present for budget-truncated models)
//! defect 0 open mos 0 D
//! defect 1 open mos 0 G
//! defect 12 short mos 2 D S
//! defect 23 netshort 3 7
//! row 0 0100...
//! row 1 0100...
//! end
//! ```

use crate::model::CaModel;
use crate::table::BitRow;
use crate::universe::{Defect, DefectId, DefectKind, DefectUniverse};
use ca_netlist::{Cell, NetId, Terminal, TransistorId};
use ca_sim::Injection;
use std::fmt::Write as _;

/// Errors raised while parsing a `.cam` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCamError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseCamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cam parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseCamError {}

fn terminal_letter(t: Terminal) -> char {
    t.letter()
}

fn parse_terminal(s: &str, line: usize) -> Result<Terminal, ParseCamError> {
    match s {
        "D" => Ok(Terminal::Drain),
        "G" => Ok(Terminal::Gate),
        "S" => Ok(Terminal::Source),
        "B" => Ok(Terminal::Bulk),
        _ => Err(ParseCamError {
            line,
            message: format!("unknown terminal `{s}`"),
        }),
    }
}

/// Parses a transistor index and bounds-checks it against `cell` — an
/// out-of-range index would otherwise build an injection the simulator
/// can only panic on.
fn parse_transistor(s: &str, cell: &Cell, line: usize) -> Result<TransistorId, ParseCamError> {
    let t: u32 = s.parse().map_err(|_| ParseCamError {
        line,
        message: format!("bad transistor index `{s}`"),
    })?;
    if t as usize >= cell.num_transistors() {
        return Err(ParseCamError {
            line,
            message: format!(
                "transistor index {t} out of range (cell has {})",
                cell.num_transistors()
            ),
        });
    }
    Ok(TransistorId(t))
}

/// Parses a net id and bounds-checks it against `cell`.
fn parse_net(s: &str, cell: &Cell, line: usize) -> Result<NetId, ParseCamError> {
    let n: u32 = s.parse().map_err(|_| ParseCamError {
        line,
        message: format!("bad net id `{s}`"),
    })?;
    if n as usize >= cell.nets().len() {
        return Err(ParseCamError {
            line,
            message: format!(
                "net id {n} out of range (cell has {} nets)",
                cell.nets().len()
            ),
        });
    }
    Ok(NetId(n))
}

/// Serializes a model to the `.cam` text format.
pub fn to_cam(model: &CaModel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "CAM 1");
    let _ = writeln!(
        out,
        "cell {} inputs {} transistors {} sims {}",
        model.cell_name, model.num_inputs, model.num_transistors, model.defect_simulations
    );
    if model.degraded {
        let _ = writeln!(out, "degraded");
    }
    for defect in model.universe.defects() {
        match defect.injection {
            Injection::None => {}
            Injection::Open {
                transistor,
                terminal,
            } => {
                let _ = writeln!(
                    out,
                    "defect {} open mos {} {}",
                    defect.id.0,
                    transistor.0,
                    terminal_letter(terminal)
                );
            }
            Injection::Short { transistor, a, b } => {
                let _ = writeln!(
                    out,
                    "defect {} short mos {} {} {}",
                    defect.id.0,
                    transistor.0,
                    terminal_letter(a),
                    terminal_letter(b)
                );
            }
            Injection::NetShort { a, b } => {
                let _ = writeln!(out, "defect {} netshort {} {}", defect.id.0, a.0, b.0);
            }
        }
    }
    for (i, row) in model.rows.iter().enumerate() {
        let bits: String = (0..row.len())
            .map(|j| if row.get(j) { '1' } else { '0' })
            .collect();
        let _ = writeln!(out, "row {i} {bits}");
    }
    out.push_str("end\n");
    out
}

/// Parses a `.cam` document back into a model.
///
/// `cell` must be the netlist the model was generated from (classes are
/// rebuilt from the rows).
///
/// # Errors
///
/// Returns [`ParseCamError`] on any structural mismatch.
pub fn from_cam(text: &str, cell: &Cell) -> Result<CaModel, ParseCamError> {
    let mut defects: Vec<Defect> = Vec::new();
    let mut rows: Vec<(usize, BitRow, usize)> = Vec::new();
    let mut header: Option<(String, usize, usize, usize)> = None;
    let mut degraded = false;
    let mut saw_end = false;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let err = |message: String| ParseCamError {
            line: line_no,
            message,
        };
        match tokens[0] {
            "CAM" => {
                if tokens.get(1) != Some(&"1") {
                    return Err(err("unsupported CAM version".into()));
                }
            }
            "cell" => {
                if tokens.len() != 8 || tokens[2] != "inputs" || tokens[4] != "transistors" {
                    return Err(err("malformed cell header".into()));
                }
                let parse = |s: &str| -> Result<usize, ParseCamError> {
                    s.parse().map_err(|_| ParseCamError {
                        line: line_no,
                        message: format!("bad number `{s}`"),
                    })
                };
                header = Some((
                    tokens[1].to_string(),
                    parse(tokens[3])?,
                    parse(tokens[5])?,
                    parse(tokens[7])?,
                ));
            }
            "defect" => {
                let id: u32 = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad defect id".into()))?;
                let (kind, injection) = match tokens.get(2) {
                    Some(&"open") => {
                        if tokens.len() != 6 || tokens[3] != "mos" {
                            return Err(err("malformed open defect".into()));
                        }
                        let t = parse_transistor(tokens[4], cell, line_no)?;
                        (
                            DefectKind::Open,
                            Injection::Open {
                                transistor: t,
                                terminal: parse_terminal(tokens[5], line_no)?,
                            },
                        )
                    }
                    Some(&"short") => {
                        if tokens.len() != 7 || tokens[3] != "mos" {
                            return Err(err("malformed short defect".into()));
                        }
                        let t = parse_transistor(tokens[4], cell, line_no)?;
                        let a = parse_terminal(tokens[5], line_no)?;
                        let b = parse_terminal(tokens[6], line_no)?;
                        if a == b {
                            return Err(err(format!("short of terminal {a} with itself")));
                        }
                        (
                            DefectKind::Short,
                            Injection::Short {
                                transistor: t,
                                a,
                                b,
                            },
                        )
                    }
                    Some(&"netshort") => {
                        if tokens.len() != 5 {
                            return Err(err("malformed net short".into()));
                        }
                        let a = parse_net(tokens[3], cell, line_no)?;
                        let b = parse_net(tokens[4], cell, line_no)?;
                        if a == b {
                            return Err(err(format!("net {} shorted to itself", a.0)));
                        }
                        (DefectKind::Short, Injection::NetShort { a, b })
                    }
                    other => return Err(err(format!("unknown defect kind {other:?}"))),
                };
                if id as usize != defects.len() {
                    return Err(err(format!(
                        "defect ids must be dense: expected {}, got {id}",
                        defects.len()
                    )));
                }
                defects.push(Defect {
                    id: DefectId(id),
                    kind,
                    injection,
                });
            }
            "row" => {
                let idx: usize = tokens
                    .get(1)
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("bad row index".into()))?;
                let bits = tokens
                    .get(2)
                    .ok_or_else(|| err("missing row bits".into()))?;
                let mut row = BitRow::zeros(bits.len());
                for (j, c) in bits.chars().enumerate() {
                    match c {
                        '0' => {}
                        '1' => row.set(j, true),
                        _ => return Err(err(format!("bad bit `{c}`"))),
                    }
                }
                rows.push((idx, row, line_no));
            }
            "degraded" => {
                if tokens.len() != 1 {
                    return Err(err("malformed degraded directive".into()));
                }
                degraded = true;
            }
            "end" => {
                saw_end = true;
            }
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    if !saw_end {
        return Err(ParseCamError {
            // 1-based even for an empty document.
            line: text.lines().count().max(1),
            message: "missing `end`".into(),
        });
    }
    let (name, inputs, transistors, sims) = header.ok_or(ParseCamError {
        line: 1,
        message: "missing cell header".into(),
    })?;
    if name != cell.name() || inputs != cell.num_inputs() || transistors != cell.num_transistors() {
        return Err(ParseCamError {
            line: 1,
            message: format!(
                "model is for `{name}` ({inputs} in, {transistors} T), got `{}` ({} in, {} T)",
                cell.name(),
                cell.num_inputs(),
                cell.num_transistors()
            ),
        });
    }
    rows.sort_by_key(|&(i, _, _)| i);
    if rows.iter().enumerate().any(|(i, &(j, _, _))| i != j) {
        return Err(ParseCamError {
            line: 1,
            message: "row indices must be dense".into(),
        });
    }
    if rows.len() != defects.len() {
        return Err(ParseCamError {
            line: 1,
            message: format!("{} rows for {} defects", rows.len(), defects.len()),
        });
    }
    // Every row must cover the same stimuli, and a non-degraded model
    // must cover the full 4^n stimulus set (2^n statics + transitions) —
    // a truncated or padded row line would otherwise round-trip into a
    // silently wrong detection dictionary.
    if let Some((_, first, first_line)) = rows.first() {
        let width = first.len();
        for (idx, row, line) in &rows {
            if row.len() != width {
                return Err(ParseCamError {
                    line: *line,
                    message: format!("row {idx} has {} bits, row 0 has {width}", row.len()),
                });
            }
        }
        let full = 1usize << (2 * inputs.min(usize::BITS as usize / 2 - 1));
        if !degraded && width != full {
            return Err(ParseCamError {
                line: *first_line,
                message: format!(
                    "complete model rows must cover all {full} stimuli, got {width} \
                     (budget-truncated models must carry the `degraded` directive)"
                ),
            });
        }
        if degraded && width > full {
            return Err(ParseCamError {
                line: *first_line,
                message: format!("rows cover {width} stimuli, cell has only {full}"),
            });
        }
    }
    let universe = DefectUniverse::from_defects(defects)
        .map_err(|message| ParseCamError { line: 1, message })?;
    let mut model = CaModel::from_rows(
        cell,
        universe,
        rows.into_iter().map(|(_, r, _)| r).collect(),
    );
    model.defect_simulations = sims;
    model.degraded = degraded;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GenerateOptions;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn cam_round_trip() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        let parsed = from_cam(&text, &cell).unwrap();
        assert_eq!(model, parsed);
    }

    #[test]
    fn cam_round_trip_with_net_shorts() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(
            &cell,
            GenerateOptions {
                inter_transistor: true,
                ..GenerateOptions::default()
            },
        );
        let text = to_cam(&model);
        let parsed = from_cam(&text, &cell).unwrap();
        assert_eq!(model, parsed);
    }

    #[test]
    fn degraded_flag_round_trips() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let budget = ca_sim::SimBudget {
            max_stimuli: Some(4),
            ..ca_sim::SimBudget::unlimited()
        };
        let model = CaModel::generate_budgeted(&cell, GenerateOptions::default(), &budget)
            .expect("truncation succeeds");
        assert!(model.degraded);
        let text = to_cam(&model);
        assert!(text.lines().any(|l| l == "degraded"), "{text}");
        let parsed = from_cam(&text, &cell).unwrap();
        assert!(parsed.degraded);
        assert_eq!(parsed.rows, model.rows);
    }

    #[test]
    fn wrong_cell_rejected() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        let other = spice::parse_cell(
            ".SUBCKT INV A Z VDD VSS\nMP0 Z A VDD VDD pch\nMN0 Z A VSS VSS nch\n.ENDS",
        )
        .unwrap();
        assert!(from_cam(&text, &other).is_err());
    }

    #[test]
    fn malformed_documents_rejected() {
        let cell = spice::parse_cell(NAND2).unwrap();
        for bad in [
            "",
            "CAM 2\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\nrow 0 01\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\ndefect 5 open mos 0 D\nend",
            "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\ndefect 0 open mos 0 Q\nend",
        ] {
            assert!(from_cam(bad, &cell).is_err(), "{bad:?}");
        }
    }

    /// Structural invariants any *accepted* document must satisfy — a
    /// parse that returns `Ok` with these violated is the "silently
    /// wrong model" failure mode the hardening exists to prevent.
    fn assert_well_formed(model: &CaModel, cell: &ca_netlist::Cell) {
        assert_eq!(model.rows.len(), model.universe.len());
        assert!(model.num_inputs == cell.num_inputs());
        let full = 1usize << (2 * cell.num_inputs());
        for row in &model.rows {
            assert_eq!(row.len(), model.rows[0].len());
            assert!(row.len() <= full);
            if !model.degraded {
                assert_eq!(row.len(), full);
            }
        }
    }

    #[test]
    fn truncated_documents_error_never_panic() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        // Every byte-prefix of a valid document must error — or, where
        // only trailing newline bytes were cut, still parse to the very
        // same model. Never a panic, never a shortened model.
        for cut in 0..text.len() {
            match from_cam(&text[..cut], &cell) {
                Ok(parsed) => {
                    assert_eq!(parsed, model, "prefix of {cut} bytes changed the model");
                    assert!(text[cut..].trim().is_empty());
                }
                Err(e) => assert!(e.line >= 1),
            }
        }
        assert_eq!(from_cam(&text, &cell).unwrap(), model);
    }

    #[test]
    fn bit_flipped_documents_never_panic_or_yield_malformed_models() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        let bytes = text.as_bytes();
        let mut rng = ca_rng::SplitMix64::new(0xF1A5);
        for _ in 0..500 {
            let mut mutated = bytes.to_vec();
            let at = (rng.next_u64() as usize) % mutated.len();
            let bit = (rng.next_u64() % 8) as u32;
            mutated[at] ^= 1 << bit;
            let Ok(mutated) = String::from_utf8(mutated) else {
                continue; // a non-UTF-8 flip can't even reach the parser
            };
            // A flip inside a row's 0/1 bits is undetectable in a
            // checksum-less text format (that integrity layer is the
            // session store's CRC framing); everything *structural* must
            // either still parse to a well-formed model or error with a
            // real line number.
            match from_cam(&mutated, &cell) {
                Ok(parsed) => assert_well_formed(&parsed, &cell),
                Err(e) => {
                    assert!(
                        e.line >= 1 && e.line <= mutated.lines().count().max(1),
                        "{e}"
                    )
                }
            }
        }
    }

    #[test]
    fn line_shuffled_documents_parse_identically_or_error() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(
            &cell,
            GenerateOptions {
                inter_transistor: true,
                ..GenerateOptions::default()
            },
        );
        let text = to_cam(&model);
        let mut rng = ca_rng::SplitMix64::new(0x5_4FF1);
        for _ in 0..100 {
            let mut lines: Vec<&str> = text.lines().collect();
            // Fisher–Yates with the in-tree rng.
            for i in (1..lines.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                lines.swap(i, j);
            }
            let shuffled = lines.join("\n");
            // The format is declaration-order-insensitive, so a shuffle
            // either still reconstructs the *same* model or is rejected
            // (e.g. defect ids no longer dense in file order) — it can
            // never quietly produce a different one.
            match from_cam(&shuffled, &cell) {
                Ok(parsed) => assert_eq!(parsed, model),
                Err(e) => assert!(e.line >= 1),
            }
        }
    }

    #[test]
    fn row_width_violations_are_rejected_with_line_numbers() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let text = to_cam(&model);
        // Truncate the bits of the *second* row line.
        let mutated: Vec<String> = text.lines().map(|l| l.to_string()).collect();
        let second_row_line = mutated
            .iter()
            .position(|l| l.starts_with("row 1 "))
            .expect("document has rows");
        let mut truncated = mutated.clone();
        truncated[second_row_line].truncate("row 1 ".len() + 3);
        let err = from_cam(&truncated.join("\n"), &cell).unwrap_err();
        assert_eq!(err.line, second_row_line + 1, "{err}");
        assert!(err.message.contains("row 1 has 3 bits"), "{err}");

        // Truncate *every* row uniformly: widths agree, but a complete
        // model no longer covers the stimulus set.
        let uniformly_cut: Vec<String> = mutated
            .iter()
            .map(|l| {
                if let Some(rest) = l.strip_prefix("row ") {
                    let (idx, bits) = rest.split_once(' ').expect("row syntax");
                    format!("row {idx} {}", &bits[..4])
                } else {
                    l.clone()
                }
            })
            .collect();
        let err = from_cam(&uniformly_cut.join("\n"), &cell).unwrap_err();
        assert!(err.message.contains("degraded"), "{err}");
    }

    #[test]
    fn out_of_range_injections_are_rejected_with_line_numbers() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let header = "CAM 1\ncell NAND2 inputs 2 transistors 4 sims 0\n";
        for (body, fragment) in [
            (
                "defect 0 open mos 9 D\nend\n",
                "transistor index 9 out of range",
            ),
            (
                "defect 0 short mos 4 D S\nend\n",
                "transistor index 4 out of range",
            ),
            ("defect 0 short mos 0 D D\nend\n", "with itself"),
            ("defect 0 netshort 0 99\nend\n", "net id 99 out of range"),
            ("defect 0 netshort 3 3\nend\n", "shorted to itself"),
        ] {
            let doc = format!("{header}{body}");
            let err = from_cam(&doc, &cell).unwrap_err();
            assert_eq!(err.line, 3, "{err}");
            assert!(err.message.contains(fragment), "{err}");
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let model = CaModel::generate(&cell, GenerateOptions::default());
        let mut text = String::from("# stored model\n\n");
        text.push_str(&to_cam(&model));
        assert_eq!(from_cam(&text, &cell).unwrap(), model);
    }
}
