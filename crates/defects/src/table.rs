//! Detection tables: the bit matrix `defect × stimulus → detected`.
//!
//! This is the raw product of exhaustive defect simulation (the inner loop
//! of the conventional flow, paper Fig. 1) and the source of the training
//! labels of the ML flow.

use crate::universe::{DefectId, DefectUniverse};
use ca_netlist::Cell;
use ca_sim::packed::{detect_mask, PackedSim, PackedStimulus, PhaseOutcomes};
use ca_sim::{
    CellKernel, DetectionPolicy, Injection, LaneOutcome, SimBudget, SimError, Simulator, Stimulus,
    Value,
};

/// A packed bit row (one bit per stimulus).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct BitRow {
    bits: Vec<u64>,
    len: usize,
}

impl BitRow {
    /// An all-zero row of `len` bits.
    pub fn zeros(len: usize) -> BitRow {
        BitRow {
            bits: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the row has zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Gets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&b| b != 0)
    }

    /// Indices of set bits.
    pub fn ones(&self) -> Vec<usize> {
        (0..self.len).filter(|&i| self.get(i)).collect()
    }
}

/// Detection results of a full defect universe under a full stimulus set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DetectionTable {
    stimuli: Vec<Stimulus>,
    rows: Vec<BitRow>,
    policy: DetectionPolicy,
    /// Number of defective-cell simulations performed (for the cost model).
    defect_simulations: usize,
}

impl DetectionTable {
    /// Simulates every defect of `universe` against `stimuli`.
    ///
    /// The golden responses are simulated once and shared across defects.
    /// Uses the bit-parallel packed engine (64 stimuli per solver pass,
    /// DESIGN.md §12) when the `CA_PACKED` switch allows it and the cell
    /// compiles to a [`CellKernel`]; results are bit-identical either way.
    pub fn generate(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        policy: DetectionPolicy,
    ) -> DetectionTable {
        if ca_sim::packed_enabled() {
            if let Some(table) = DetectionTable::generate_packed(cell, universe, stimuli, policy) {
                return table;
            }
        }
        DetectionTable::generate_scalar(cell, universe, stimuli, policy)
    }

    /// The interpreted per-stimulus path of [`DetectionTable::generate`]
    /// — always available, and the reference the packed path is
    /// differentially tested against.
    pub fn generate_scalar(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        policy: DetectionPolicy,
    ) -> DetectionTable {
        let outputs = cell.outputs().to_vec();
        let golden_sim = Simulator::new(cell);
        // Golden response of every output, per stimulus.
        let golden: Vec<Vec<Value>> = stimuli
            .iter()
            .map(|s| {
                let result = golden_sim.run(s);
                outputs.iter().map(|&o| result.final_value(o)).collect()
            })
            .collect();
        let mut rows = Vec::with_capacity(universe.len());
        let mut defect_simulations = 0;
        for defect in universe.defects() {
            let faulty_sim = Simulator::with_injection(cell, defect.injection);
            let mut row = BitRow::zeros(stimuli.len());
            for (i, stimulus) in stimuli.iter().enumerate() {
                let result = faulty_sim.run(stimulus);
                defect_simulations += 1;
                let detected = outputs
                    .iter()
                    .enumerate()
                    .any(|(oi, &o)| policy.detects(golden[i][oi], result.final_value(o)));
                row.set(i, detected);
            }
            rows.push(row);
        }
        DetectionTable {
            stimuli: stimuli.to_vec(),
            rows,
            policy,
            defect_simulations,
        }
    }

    /// The bit-parallel path of [`DetectionTable::generate`]: stimuli are
    /// transposed into 64-lane blocks, the golden blocks solved once, and
    /// every defect evaluated word-parallel with cone restriction for
    /// stuck-opens. Returns `None` when the kernel compiler declines the
    /// cell (the caller falls back to the scalar path).
    ///
    /// `defect_simulations` reports the *logical* simulation count
    /// (defects × stimuli), so the table compares equal to the scalar
    /// one.
    pub fn generate_packed(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        policy: DetectionPolicy,
    ) -> Option<DetectionTable> {
        let kernel = CellKernel::compile(cell)?;
        let packed = PackedStimulus::pack(cell.num_inputs(), stimuli);
        let outputs: Vec<usize> = cell.outputs().iter().map(|o| o.index()).collect();
        let golden_sim = PackedSim::new(&kernel, Injection::None, None);
        let golden: Vec<_> = packed
            .blocks()
            .iter()
            .map(|b| golden_sim.run_block(b))
            .collect();
        let mut rows = Vec::with_capacity(universe.len());
        for defect in universe.defects() {
            let faulty = PackedSim::new(&kernel, defect.injection, None);
            let open_t = match defect.injection {
                Injection::Open { transistor, .. } => Some(transistor.index()),
                _ => None,
            };
            let mut row = BitRow::zeros(stimuli.len());
            let mut base = 0;
            for (block, g) in packed.blocks().iter().zip(&golden) {
                let f = faulty.run_block_against(block, g, open_t);
                let mut mask = detect_mask(g, &f, &outputs, policy);
                while mask != 0 {
                    row.set(base + mask.trailing_zeros() as usize, true);
                    mask &= mask - 1;
                }
                base += block.occupancy();
            }
            rows.push(row);
        }
        Some(DetectionTable {
            stimuli: stimuli.to_vec(),
            rows,
            policy,
            defect_simulations: universe.len() * stimuli.len(),
        })
    }

    /// Like [`DetectionTable::generate`], but under a [`SimBudget`].
    ///
    /// Semantics:
    ///
    /// - golden simulation must converge: an oscillating defect-free
    ///   cell is an error ([`SimError::Oscillated`]), because its truth
    ///   table is meaningless;
    /// - faulty simulation keeps the conservative X-forcing of
    ///   [`Simulator::run`] — an injected defect may legitimately create
    ///   a ring;
    /// - `max_stimuli` / `max_defects` truncate the work and mark the
    ///   result degraded;
    /// - the wall-clock deadline is checked *between* defect-simulation
    ///   stimuli (never mid-solve); expiry is
    ///   [`SimError::BudgetExceeded`].
    ///
    /// On success, the table covers `universe.truncated(degraded
    /// defect count)` — callers align their universe with
    /// [`BudgetedTable::defects_covered`].
    pub fn generate_budgeted(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        policy: DetectionPolicy,
        budget: &SimBudget,
    ) -> Result<BudgetedTable, SimError> {
        let n_stimuli = budget.clamp_stimuli(stimuli.len());
        let n_defects = budget.clamp_defects(universe.len());
        let degraded = n_stimuli < stimuli.len() || n_defects < universe.len();
        let stimuli = &stimuli[..n_stimuli];
        let packed = if ca_sim::packed_enabled() {
            DetectionTable::budgeted_packed(cell, universe, stimuli, n_defects, policy, budget)
        } else {
            None
        };
        let table = match packed {
            Some(result) => result?,
            None => {
                DetectionTable::budgeted_scalar(cell, universe, stimuli, n_defects, policy, budget)?
            }
        };
        Ok(BudgetedTable {
            table,
            degraded,
            defects_covered: n_defects,
        })
    }

    /// Post-clamp scalar body of [`DetectionTable::generate_budgeted`].
    fn budgeted_scalar(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        n_defects: usize,
        policy: DetectionPolicy,
        budget: &SimBudget,
    ) -> Result<DetectionTable, SimError> {
        let clock = budget.start();
        let outputs = cell.outputs().to_vec();
        let golden_sim = Simulator::with_budget(cell, Injection::None, budget);
        let golden: Vec<Vec<Value>> = stimuli
            .iter()
            .map(|s| {
                let result = golden_sim.try_run(s)?;
                Ok(outputs.iter().map(|&o| result.final_value(o)).collect())
            })
            .collect::<Result<_, SimError>>()?;
        let mut rows = Vec::with_capacity(n_defects);
        let mut defect_simulations = 0;
        for defect in &universe.defects()[..n_defects] {
            let faulty_sim = Simulator::with_budget(cell, defect.injection, budget);
            let mut row = BitRow::zeros(stimuli.len());
            for (i, stimulus) in stimuli.iter().enumerate() {
                if clock.expired() {
                    return Err(SimError::BudgetExceeded {
                        resource: "wall clock",
                    });
                }
                let result = faulty_sim.run(stimulus);
                defect_simulations += 1;
                let detected = outputs
                    .iter()
                    .enumerate()
                    .any(|(oi, &o)| policy.detects(golden[i][oi], result.final_value(o)));
                row.set(i, detected);
            }
            rows.push(row);
        }
        Ok(DetectionTable {
            stimuli: stimuli.to_vec(),
            rows,
            policy,
            defect_simulations,
        })
    }

    /// Post-clamp packed body of [`DetectionTable::generate_budgeted`]:
    /// the same semantics lane-by-lane — golden lanes are checked in
    /// stimulus order and the first non-convergent one raises the same
    /// [`SimError`] the scalar `try_run` would (phase-1 failures take
    /// precedence per lane), the wall-clock deadline is checked between
    /// defect blocks, and faulty lanes keep conservative X-forcing.
    /// `None` means the kernel compiler declined the cell.
    fn budgeted_packed(
        cell: &Cell,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        n_defects: usize,
        policy: DetectionPolicy,
        budget: &SimBudget,
    ) -> Option<Result<DetectionTable, SimError>> {
        let kernel = CellKernel::compile(cell)?;
        Some(DetectionTable::budgeted_packed_inner(
            cell, &kernel, universe, stimuli, n_defects, policy, budget,
        ))
    }

    fn budgeted_packed_inner(
        cell: &Cell,
        kernel: &CellKernel,
        universe: &DefectUniverse,
        stimuli: &[Stimulus],
        n_defects: usize,
        policy: DetectionPolicy,
        budget: &SimBudget,
    ) -> Result<DetectionTable, SimError> {
        let clock = budget.start();
        let packed = PackedStimulus::pack(cell.num_inputs(), stimuli);
        let outputs: Vec<usize> = cell.outputs().iter().map(|o| o.index()).collect();
        let golden_sim = PackedSim::new(kernel, Injection::None, budget.max_solver_iterations);
        let mut golden = Vec::with_capacity(packed.blocks().len());
        for block in packed.blocks() {
            let result = golden_sim.run_block(block);
            // Golden simulation must converge: surface the first failing
            // lane, in stimulus order, exactly like the scalar `try_run`
            // (a phase-1 failure wins over a phase-2 one per lane).
            let mut lanes = block.lanes;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                let p1 = result.p1.lane(lane);
                if p1 != LaneOutcome::Converged {
                    return Err(lane_error(cell, &result.p1, p1, lane));
                }
                if block.dynamic & (1u64 << lane) != 0 {
                    let p2 = result.p2.lane(lane);
                    if p2 != LaneOutcome::Converged {
                        return Err(lane_error(cell, &result.p2, p2, lane));
                    }
                }
            }
            golden.push(result);
        }
        let mut rows = Vec::with_capacity(n_defects);
        for defect in &universe.defects()[..n_defects] {
            let faulty = PackedSim::new(kernel, defect.injection, budget.max_solver_iterations);
            let open_t = match defect.injection {
                Injection::Open { transistor, .. } => Some(transistor.index()),
                _ => None,
            };
            let mut row = BitRow::zeros(stimuli.len());
            let mut base = 0;
            for (block, g) in packed.blocks().iter().zip(&golden) {
                // The deadline is checked between blocks, never
                // mid-solve; a zero deadline therefore fails before any
                // faulty work, like the scalar per-stimulus check.
                if clock.expired() {
                    return Err(SimError::BudgetExceeded {
                        resource: "wall clock",
                    });
                }
                let f = faulty.run_block_against(block, g, open_t);
                let mut mask = detect_mask(g, &f, &outputs, policy);
                while mask != 0 {
                    row.set(base + mask.trailing_zeros() as usize, true);
                    mask &= mask - 1;
                }
                base += block.occupancy();
            }
            rows.push(row);
        }
        Ok(DetectionTable {
            stimuli: stimuli.to_vec(),
            rows,
            policy,
            defect_simulations: n_defects * stimuli.len(),
        })
    }

    /// Generates with the canonical full stimulus set
    /// ([`Stimulus::all`]`(n)`).
    pub fn generate_exhaustive(
        cell: &Cell,
        universe: &DefectUniverse,
        policy: DetectionPolicy,
    ) -> DetectionTable {
        let stimuli = Stimulus::all(cell.num_inputs());
        DetectionTable::generate(cell, universe, &stimuli, policy)
    }

    /// The stimuli the table was generated against.
    pub fn stimuli(&self) -> &[Stimulus] {
        &self.stimuli
    }

    /// Detection row of `defect`.
    ///
    /// # Panics
    ///
    /// Panics if `defect` is out of range.
    pub fn row(&self, defect: DefectId) -> &BitRow {
        &self.rows[defect.index()]
    }

    /// All rows in defect-id order.
    pub fn rows(&self) -> &[BitRow] {
        &self.rows
    }

    /// Whether stimulus `stimulus` detects `defect`.
    pub fn detects(&self, defect: DefectId, stimulus: usize) -> bool {
        self.rows[defect.index()].get(stimulus)
    }

    /// The detection policy used.
    pub fn policy(&self) -> DetectionPolicy {
        self.policy
    }

    /// Number of defective-cell simulations that were run.
    pub fn defect_simulations(&self) -> usize {
        self.defect_simulations
    }

    /// Fraction of defects detected by at least one stimulus.
    pub fn coverage(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let detected = self.rows.iter().filter(|r| r.any()).count();
        detected as f64 / self.rows.len() as f64
    }
}

/// A [`DetectionTable`] generated under a [`SimBudget`], with the
/// truncation bookkeeping budgeted callers need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetedTable {
    /// The generated table (rows cover the first
    /// [`defects_covered`](BudgetedTable::defects_covered) defects).
    pub table: DetectionTable,
    /// Whether any budget axis truncated the work (fewer stimuli or
    /// defects than requested).
    pub degraded: bool,
    /// Number of leading universe defects the rows cover.
    pub defects_covered: usize,
}

/// Builds the [`SimError`] a non-convergent golden lane raises, matching
/// the scalar `try_run` error shape: oscillations name the unstable nets
/// in net-index order, budget exhaustion names the solver-iterations
/// resource.
fn lane_error(cell: &Cell, outcomes: &PhaseOutcomes, class: LaneOutcome, lane: usize) -> SimError {
    match class {
        LaneOutcome::Oscillated => SimError::Oscillated {
            nets: (0..cell.nets().len())
                .filter(|&i| outcomes.unstable[i] & (1u64 << lane) != 0)
                .map(|i| cell.nets()[i].name().to_string())
                .collect(),
        },
        _ => SimError::BudgetExceeded {
            resource: "solver iterations",
        },
    }
}

/// Convenience: simulate a single injection against `stimuli` (used by
/// inference comparisons).
pub fn single_defect_row(
    cell: &Cell,
    injection: Injection,
    stimuli: &[Stimulus],
    policy: DetectionPolicy,
) -> BitRow {
    let flags = ca_sim::detection_row(cell, injection, stimuli, policy);
    let mut row = BitRow::zeros(flags.len());
    for (i, &f) in flags.iter().enumerate() {
        row.set(i, f);
    }
    row
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_netlist::spice;

    const NAND2: &str = "\
.SUBCKT NAND2 A B Z VDD VSS
MP0 Z A VDD VDD pch
MP1 Z B VDD VDD pch
MN0 Z A net0 VSS nch
MN1 net0 B VSS VSS nch
.ENDS
";

    #[test]
    fn bitrow_set_get_count() {
        let mut row = BitRow::zeros(100);
        assert_eq!(row.len(), 100);
        row.set(0, true);
        row.set(64, true);
        row.set(99, true);
        assert!(row.get(0) && row.get(64) && row.get(99));
        assert!(!row.get(1));
        assert_eq!(row.count_ones(), 3);
        assert_eq!(row.ones(), vec![0, 64, 99]);
        row.set(64, false);
        assert_eq!(row.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitrow_bounds_checked() {
        let row = BitRow::zeros(10);
        let _ = row.get(10);
    }

    #[test]
    fn nand2_table_has_full_coverage() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let table =
            DetectionTable::generate_exhaustive(&cell, &universe, DetectionPolicy::default());
        assert_eq!(table.rows().len(), 24);
        assert_eq!(table.stimuli().len(), 16);
        // Every intra-transistor defect of a NAND2 is detectable.
        assert!(
            (table.coverage() - 1.0).abs() < 1e-9,
            "{}",
            table.coverage()
        );
        assert_eq!(table.defect_simulations(), 24 * 16);
    }

    #[test]
    fn table_is_deterministic() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let a = DetectionTable::generate_exhaustive(&cell, &universe, DetectionPolicy::default());
        let b = DetectionTable::generate_exhaustive(&cell, &universe, DetectionPolicy::default());
        assert_eq!(a, b);
    }

    #[test]
    fn unlimited_budget_matches_unbudgeted_generation() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let policy = DetectionPolicy::default();
        let stimuli = Stimulus::all(2);
        let plain = DetectionTable::generate(&cell, &universe, &stimuli, policy);
        let budgeted = DetectionTable::generate_budgeted(
            &cell,
            &universe,
            &stimuli,
            policy,
            &SimBudget::unlimited(),
        )
        .expect("NAND2 characterizes");
        assert!(!budgeted.degraded);
        assert_eq!(budgeted.defects_covered, universe.len());
        assert_eq!(budgeted.table, plain);
    }

    #[test]
    fn stimulus_and_defect_caps_truncate_and_degrade() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let stimuli = Stimulus::all(2);
        let budget = SimBudget {
            max_stimuli: Some(4),
            max_defects: Some(10),
            ..SimBudget::unlimited()
        };
        let b = DetectionTable::generate_budgeted(
            &cell,
            &universe,
            &stimuli,
            DetectionPolicy::default(),
            &budget,
        )
        .expect("truncation is not an error");
        assert!(b.degraded);
        assert_eq!(b.defects_covered, 10);
        assert_eq!(b.table.rows().len(), 10);
        assert_eq!(b.table.stimuli().len(), 4);
        assert_eq!(b.table.defect_simulations(), 40);
    }

    #[test]
    fn expired_wall_clock_is_budget_exceeded() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let budget = SimBudget {
            wall_clock: Some(std::time::Duration::ZERO),
            ..SimBudget::unlimited()
        };
        let err = DetectionTable::generate_budgeted(
            &cell,
            &universe,
            &Stimulus::all(2),
            DetectionPolicy::default(),
            &budget,
        )
        .expect_err("zero deadline expires before the first stimulus");
        assert_eq!(
            err,
            SimError::BudgetExceeded {
                resource: "wall clock"
            }
        );
    }

    #[test]
    fn single_row_matches_table() {
        let cell = spice::parse_cell(NAND2).unwrap();
        let universe = DefectUniverse::intra_transistor(&cell);
        let policy = DetectionPolicy::default();
        let table = DetectionTable::generate_exhaustive(&cell, &universe, policy);
        let d = universe.defects()[5];
        let row = single_defect_row(&cell, d.injection, table.stimuli(), policy);
        assert_eq!(&row, table.row(d.id));
    }
}
